"""Concurrency rule-pack tests against deliberately broken fixture classes.

The centrepiece is a scheduler-shaped class with a real discipline:
``self._jobs`` is written under ``self._lock`` everywhere except one
unlocked read, and one method blocks while holding the lock.  Both must
be reported at the exact file:line.
"""

import textwrap

from repro.lint import Baseline, LintConfig, lint_paths

# A deliberately broken class: line numbers below are load-bearing.
BROKEN_SCHEDULER = """\
import threading
import time


class BrokenScheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}

    def submit(self, job_id, job):
        with self._lock:
            self._jobs[job_id] = job

    def has_job(self, job_id):
        return job_id in self._jobs

    def drain(self):
        with self._lock:
            time.sleep(0.1)
            return dict(self._jobs)
"""
UNLOCKED_READ_LINE = 15  # `return job_id in self._jobs`
BLOCKING_CALL_LINE = 19  # `time.sleep(0.1)` under `with self._lock`


def make_project(tmp_path, files):
    root = tmp_path / "proj"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    return LintConfig.for_root(root)


def run_lint(config):
    return lint_paths(config=config, baseline=Baseline())


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


# --------------------------------------------------------- lock-discipline


def test_broken_fixture_reports_both_violations_with_location(tmp_path):
    config = make_project(
        tmp_path, {"src/repro/service/broken.py": BROKEN_SCHEDULER}
    )
    report = run_lint(config)

    (unlocked,) = findings_for(report, "lock-discipline")
    assert unlocked.path.endswith("service/broken.py")
    assert unlocked.line == UNLOCKED_READ_LINE
    assert "_jobs" in unlocked.message
    assert "has_job" in unlocked.message
    assert "self._lock" in unlocked.message

    (blocking,) = findings_for(report, "blocking-under-lock")
    assert blocking.path.endswith("service/broken.py")
    assert blocking.line == BLOCKING_CALL_LINE
    assert "time.sleep" in blocking.message


def test_broken_fixture_gates_cli_exit_code(tmp_path, capsys):
    from repro.cli import main

    config = make_project(
        tmp_path, {"src/repro/service/broken.py": BROKEN_SCHEDULER}
    )
    code = main(
        [
            "lint",
            str(config.src),
            "--root",
            str(config.root),
            "--baseline",
            str(tmp_path / "no-baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "lock-discipline" in out
    assert "blocking-under-lock" in out
    assert f"broken.py:{UNLOCKED_READ_LINE}" in out


def test_unlocked_write_is_reported_too(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/exec/state.py": """
                import threading


                class Tracker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._done = []

                    def finish(self, item):
                        with self._lock:
                            self._done.append(item)

                    def reset(self):
                        self._done = []
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "lock-discipline")
    assert finding.line == 14
    assert "reset" in finding.message


def test_disciplined_class_and_thread_safe_attrs_clean(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/service/good.py": """
                import queue
                import threading


                class GoodScheduler:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cond = threading.Condition(self._lock)
                        self._jobs = {}
                        self._queue = queue.Queue()

                    def submit(self, job_id, job):
                        with self._lock:
                            self._jobs[job_id] = job
                            self._cond.notify_all()
                        # Queue is internally synchronised: unlocked use
                        # of it must not be flagged.
                        self._queue.put(job_id)

                    def wait(self):
                        with self._lock:
                            self._cond.wait(timeout=1.0)
                            return dict(self._jobs)
            """,
        },
    )
    report = run_lint(config)
    assert not findings_for(report, "lock-discipline")
    # Condition.wait releases the held lock — sanctioned, not blocking.
    assert not findings_for(report, "blocking-under-lock")


def test_lock_discipline_only_in_concurrency_dirs(tmp_path):
    config = make_project(
        tmp_path,
        # Same broken class, but netsim/ is single-threaded by design.
        {"src/repro/netsim/broken.py": BROKEN_SCHEDULER},
    )
    report = run_lint(config)
    assert not findings_for(report, "lock-discipline")
    assert not findings_for(report, "blocking-under-lock")


# ------------------------------------------------------ blocking-under-lock


def test_thread_join_under_lock_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/exec/pool.py": """
                import threading


                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._workers = []

                    def shutdown(self):
                        with self._lock:
                            for worker in self._workers:
                                worker.join()
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "blocking-under-lock")
    assert finding.line == 12
    assert "join" in finding.message


def test_blocking_outside_lock_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/exec/pool.py": """
                import threading
                import time


                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._workers = []

                    def shutdown(self):
                        with self._lock:
                            workers = list(self._workers)
                        for worker in workers:
                            worker.join()
                        time.sleep(0.01)
            """,
        },
    )
    assert not findings_for(run_lint(config), "blocking-under-lock")


# ------------------------------------------------------------ sqlite-thread


def test_check_same_thread_false_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/store/db.py": """
                import sqlite3

                def open_db(path):
                    return sqlite3.connect(path, check_same_thread=False)
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "sqlite-thread")
    assert finding.line == 4


def test_connection_passed_to_thread_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/store/worker.py": """
                import sqlite3
                import threading

                def pump(conn):
                    conn.execute("SELECT 1")

                def start(path):
                    conn = sqlite3.connect(path)
                    t = threading.Thread(target=pump, args=(conn,))
                    t.start()
                    return t
            """,
        },
    )
    flagged = findings_for(run_lint(config), "sqlite-thread")
    assert flagged
    assert all(f.line == 9 for f in flagged)


def test_per_thread_connection_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/store/worker.py": """
                import sqlite3
                import threading

                def pump(path):
                    conn = sqlite3.connect(path)
                    conn.execute("SELECT 1")

                def start(path):
                    t = threading.Thread(target=pump, args=(path,))
                    t.start()
                    return t
            """,
        },
    )
    # The connection opened inside pump() belongs to the worker thread:
    # a thread-target binding its own connection is the sanctioned
    # pattern and must not be flagged.
    assert not findings_for(run_lint(config), "sqlite-thread")


# --------------------------------------------------------- raw-sleep-retry


def test_raw_sleep_retry_loop_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/exec/poller.py": """
                import time

                def wait_for(path):
                    for _ in range(5):
                        if path.exists():
                            return True
                        time.sleep(0.5)
                    return False
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "raw-sleep-retry")
    assert finding.line == 7
    assert "RetryPolicy" in finding.message


def test_raw_sleep_from_import_alias_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/service/waiter.py": """
                from time import sleep

                def backoff():
                    sleep(1.0)
            """,
        },
    )
    assert findings_for(run_lint(config), "raw-sleep-retry")


def test_sleep_inside_policy_seam_allowed(tmp_path):
    config = make_project(
        tmp_path,
        {
            # The policy's own default_sleep is the one sanctioned home
            # for time.sleep inside the concurrency dirs.
            "src/repro/faults/retry.py": """
                import time

                def default_sleep(seconds):
                    time.sleep(seconds)
            """,
        },
    )
    assert not findings_for(run_lint(config), "raw-sleep-retry")


def test_sleep_outside_concurrency_dirs_not_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/harness/demo.py": """
                import time

                def pace():
                    time.sleep(0.1)
            """,
        },
    )
    assert not findings_for(run_lint(config), "raw-sleep-retry")
