"""Bottleneck link and drop-tail queue behaviour."""

import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.link import BottleneckLink, DropTailQueue, bdp_bytes
from repro.netsim.packet import Packet


def make_packet(seq=0, size=1000, flow=0):
    return Packet(flow_id=flow, seq=seq, size=size, sent_time=0.0)


def test_bdp_bytes():
    # 20 Mbps * 10 ms = 25 000 bytes.
    assert bdp_bytes(20e6, 0.010) == 25000


class TestDropTailQueue:
    def test_accepts_until_capacity(self):
        q = DropTailQueue(2500)
        assert q.offer(make_packet(size=1000))
        assert q.offer(make_packet(size=1000))
        assert not q.offer(make_packet(size=1000))
        assert q.dropped == 1
        assert q.bytes_queued == 2000

    def test_fifo_order(self):
        q = DropTailQueue(10000)
        for seq in range(3):
            q.offer(make_packet(seq=seq))
        assert [q.pop().seq for _ in range(3)] == [0, 1, 2]
        assert q.pop() is None

    def test_pop_frees_capacity(self):
        q = DropTailQueue(1000)
        q.offer(make_packet(size=1000))
        assert not q.offer(make_packet(size=1000))
        q.pop()
        assert q.offer(make_packet(size=1000))

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestBottleneckLink:
    def _link(self, loop, rate=8e6, capacity=10000):
        delivered = []
        dropped = []
        link = BottleneckLink(
            loop,
            rate,
            DropTailQueue(capacity),
            on_deliver=delivered.append,
            on_drop=dropped.append,
        )
        return link, delivered, dropped

    def test_serialization_delay(self):
        loop = EventLoop()
        link, delivered, _ = self._link(loop, rate=8e6)
        link.send(make_packet(size=1000))  # 1000 B at 1 MB/s = 1 ms
        loop.run(0.0009)
        assert not delivered
        loop.run(0.0011)
        assert len(delivered) == 1

    def test_back_to_back_packets_serialize_sequentially(self):
        loop = EventLoop()
        link, delivered, _ = self._link(loop, rate=8e6)
        link.send(make_packet(seq=0, size=1000))
        link.send(make_packet(seq=1, size=1000))
        loop.run(0.0015)
        assert [p.seq for p in delivered] == [0]
        loop.run(0.0025)
        assert [p.seq for p in delivered] == [0, 1]

    def test_tail_drop_when_queue_full(self):
        loop = EventLoop()
        link, delivered, dropped = self._link(loop, rate=8e6, capacity=1000)
        link.send(make_packet(seq=0, size=1000))  # in service
        link.send(make_packet(seq=1, size=1000))  # queued
        link.send(make_packet(seq=2, size=1000))  # dropped
        loop.run(0.01)
        assert [p.seq for p in delivered] == [0, 1]
        assert [p.seq for p in dropped] == [2]

    def test_utilization_under_saturation(self):
        loop = EventLoop()
        link, delivered, _ = self._link(loop, rate=8e6, capacity=50000)
        # Offer 2 packets per serialization slot for 100 ms: the link must
        # stay fully utilized (1000 B/ms) and drop the excess.
        for i in range(200):
            at = i * 0.0005
            loop.schedule_at(at, lambda s=i: link.send(make_packet(seq=s, size=1000)))
        loop.run(0.1)
        assert sum(p.size for p in delivered) == pytest.approx(100000, rel=0.05)

    def test_queueing_delay_estimate(self):
        loop = EventLoop()
        link, _, _ = self._link(loop, rate=8e6, capacity=100000)
        link.send(make_packet(size=1000))
        link.send(make_packet(size=1000))
        link.send(make_packet(size=1000))
        # Two packets queued behind the one in service: 2 ms drain time.
        assert link.queueing_delay_estimate() == pytest.approx(0.002)

    def test_invalid_bandwidth(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            BottleneckLink(loop, 0, DropTailQueue(1000), on_deliver=lambda p: None)
