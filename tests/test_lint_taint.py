"""Determinism taint pass: seeded source→sink flows + clean fixtures.

Sinks come from ``LintConfig.taint_sinks`` (full qnames like
``repro.harness.runner.trial_identity``) and ``taint_sink_suffixes``
(``.fingerprint``, ``.put_trial``).  The fixture projects define
functions at exactly those dotted paths so the default config applies
unchanged — the same way the real tree is analysed.
"""

import textwrap

from repro.lint import Baseline, LintConfig, lint_paths

TAINT = "taint-identity"

SINK_MODULE = {
    "src/repro/harness/__init__.py": "",
    "src/repro/harness/runner.py": """
        def trial_identity(spec, salt):
            return (spec, salt)
    """,
}


def make_project(tmp_path, files):
    root = tmp_path / "proj"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    return LintConfig.for_root(root)


def taint_findings(config):
    report = lint_paths(config=config, baseline=Baseline(), use_cache=False)
    return [f for f in report.findings if f.rule == TAINT]


# ----------------------------------------------------------------- seeded


def test_clock_directly_into_sink(tmp_path):
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                import time

                from repro.harness.runner import trial_identity

                def run(spec):
                    return trial_identity(spec, time.time())
            """,
        },
    )
    found = taint_findings(config)
    assert len(found) == 1
    f = found[0]
    assert f.path == "src/repro/use.py"
    assert "time.time()" in f.message
    assert "trial_identity" in f.message


def test_clock_through_helper_return(tmp_path):
    """The source is observed in one function, returned, and only then
    passed to the sink — requires the ret_atoms fixpoint."""
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                import time

                from repro.harness.runner import trial_identity

                def stamp():
                    return time.time()

                def run(spec):
                    salt = stamp()
                    return trial_identity(spec, salt)
            """,
        },
    )
    found = taint_findings(config)
    assert len(found) == 1
    assert "time.time()" in found[0].message


def test_source_through_sink_flowing_parameter(tmp_path):
    """The sink call is buried one frame down; the caller's argument
    reaches it through the param_sink fixpoint."""
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                import random

                from repro.harness.runner import trial_identity

                def record(spec, value):
                    return trial_identity(spec, value)

                def run(spec):
                    return record(spec, random.random())
            """,
        },
    )
    found = taint_findings(config)
    assert len(found) == 1
    assert "random.random" in found[0].message


def test_entropy_into_suffix_sink(tmp_path):
    """uuid4 into a ``.fingerprint`` method (suffix-matched sink)."""
    config = make_project(
        tmp_path,
        {
            "src/repro/spec.py": """
                import uuid

                class Spec:
                    def fingerprint(self, payload):
                        return hash(payload)

                def tag(spec: Spec):
                    return spec.fingerprint(uuid.uuid4())
            """,
        },
    )
    found = taint_findings(config)
    assert len(found) == 1
    assert "uuid.uuid4()" in found[0].message
    assert "fingerprint" in found[0].message


def test_tainted_self_attribute(tmp_path):
    """A nondeterministic value stored on self in __init__ and later
    passed to the sink from another method."""
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                import os

                from repro.harness.runner import trial_identity

                class Session:
                    def __init__(self):
                        self._nonce = os.urandom(8)

                    def run(self, spec):
                        return trial_identity(spec, self._nonce)
            """,
        },
    )
    found = taint_findings(config)
    assert len(found) == 1
    assert "os.urandom()" in found[0].message


# ------------------------------------------------------------------ clean


def test_pure_spec_identity_is_clean(tmp_path):
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                from repro.harness.runner import trial_identity

                def run(spec, trial_index):
                    return trial_identity(spec, trial_index)
            """,
        },
    )
    assert taint_findings(config) == []


def test_sorted_launders_set_order(tmp_path):
    """sorted(set) is deterministic; the raw set iteration is not."""
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                from repro.harness.runner import trial_identity

                def run(spec, names):
                    items = set(names)
                    return trial_identity(spec, sorted(items))
            """,
        },
    )
    assert taint_findings(config) == []


def test_clock_into_telemetry_is_clean(tmp_path):
    """Timestamps are fine anywhere that is not an identity sink."""
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                import time

                def log_event(sink, kind):
                    sink.append((kind, time.time()))
            """,
        },
    )
    assert taint_findings(config) == []


def test_suppression_applies_to_taint(tmp_path):
    config = make_project(
        tmp_path,
        {
            **SINK_MODULE,
            "src/repro/use.py": """
                import time

                from repro.harness.runner import trial_identity

                def run(spec):
                    # lint: disable=taint-identity -- migration shim, tracked in #42
                    return trial_identity(spec, time.time())
            """,
        },
    )
    report = lint_paths(config=config, baseline=Baseline(), use_cache=False)
    assert [f for f in report.findings if f.rule == TAINT] == []
    assert any(f.rule == TAINT for f in report.suppressed)
