"""Propagation path and netem impairments."""

import random

import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet
from repro.netsim.path import NetemConfig, Path


def make_packet(seq=0):
    return Packet(flow_id=0, seq=seq, size=1000, sent_time=0.0)


def test_fixed_delay_delivery():
    loop = EventLoop()
    arrived = []
    path = Path(loop, 0.020, deliver=lambda p: arrived.append((loop.now, p.seq)))
    path.send(make_packet(seq=7))
    loop.run(1.0)
    assert arrived == [(0.020, 7)]


def test_order_preserved_without_impairments():
    loop = EventLoop()
    arrived = []
    path = Path(loop, 0.010, deliver=lambda p: arrived.append(p.seq))
    for seq in range(5):
        path.send(make_packet(seq=seq))
    loop.run(1.0)
    assert arrived == [0, 1, 2, 3, 4]


def test_random_loss_rate():
    loop = EventLoop()
    arrived = []
    path = Path(
        loop,
        0.001,
        deliver=lambda p: arrived.append(p),
        netem=NetemConfig(loss_rate=0.3),
        rng=random.Random(42),
    )
    for seq in range(2000):
        path.send(make_packet(seq=seq))
    loop.run(10.0)
    assert 0.62 < len(arrived) / 2000 < 0.78
    assert path.lost + path.delivered == 2000


def test_jitter_bounds_delay():
    loop = EventLoop()
    times = []
    path = Path(
        loop,
        0.010,
        deliver=lambda p: times.append(loop.now),
        netem=NetemConfig(jitter_s=0.002),
        rng=random.Random(1),
    )
    for seq in range(200):
        path.send(make_packet(seq=seq))
    loop.run(1.0)
    assert min(times) >= 0.008 - 1e-9
    assert max(times) <= 0.012 + 1e-9
    assert max(times) > min(times)  # jitter actually applied


def test_reordering_requires_extra_delay():
    with pytest.raises(ValueError):
        NetemConfig(reorder_rate=0.1).validate()


def test_reordering_inverts_some_deliveries():
    loop = EventLoop()
    arrived = []
    path = Path(
        loop,
        0.010,
        deliver=lambda p: arrived.append(p.seq),
        netem=NetemConfig(reorder_rate=0.2, reorder_extra_s=0.005),
        rng=random.Random(3),
    )
    for seq in range(100):
        path.send(make_packet(seq=seq))
        loop.run(loop.now + 0.0005)
    loop.run(2.0)
    assert sorted(arrived) == list(range(100))
    assert arrived != sorted(arrived)


def test_invalid_config_rejected():
    for bad in (
        NetemConfig(jitter_s=-1),
        NetemConfig(loss_rate=1.0),
        NetemConfig(reorder_rate=-0.1),
    ):
        with pytest.raises(ValueError):
            bad.validate()
    with pytest.raises(ValueError):
        Path(EventLoop(), -0.01, deliver=lambda p: None)
