"""Fault plans, rule matching, the injector, and the zero-cost seam."""

import pickle
import sqlite3
import time

import pytest

from repro.faults import inject
from repro.faults.inject import (
    CRASH_EXIT_CODE,
    FaultInjector,
    InjectedDiskError,
    InjectedDisconnect,
    InjectedFault,
    InjectedLocked,
    active_plan,
    fault_point,
    fault_value,
)
from repro.faults.plan import (
    FAULT_CLASSES,
    FAULT_CLOCK_SKEW,
    FAULT_DISK_FULL,
    FAULT_HTTP_DISCONNECT,
    FAULT_JOURNAL_CORRUPT,
    FAULT_JOURNAL_TRUNCATE,
    FAULT_STORE_LOCKED,
    FAULT_WORKER_CRASH,
    FaultPlan,
    MATRIX_CLASSES,
    fault_matrix,
    rule,
    seeded_hits,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    inject.deactivate()


class TestFaultRule:
    def test_exact_site_match(self):
        r = rule(FAULT_STORE_LOCKED, "store.execute")
        assert r.matches_site("store.execute")
        assert not r.matches_site("store.execute.other")

    def test_prefix_site_match(self):
        r = rule(FAULT_STORE_LOCKED, "store.*")
        assert r.matches_site("store.execute")
        assert r.matches_site("store.anything")
        assert not r.matches_site("exec.worker.trial")

    def test_ctx_match(self):
        r = rule(FAULT_WORKER_CRASH, "exec.worker.trial", when={"attempt": 1})
        assert r.matches_ctx({"attempt": 1, "index": 5})
        assert not r.matches_ctx({"attempt": 2})
        assert not r.matches_ctx({})

    def test_unknown_fault_class_rejected(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            rule("made-up", "anywhere")


class TestSeededHits:
    def test_deterministic(self):
        assert seeded_hits(5, 3, 1, 10) == seeded_hits(5, 3, 1, 10)

    def test_seed_sensitivity(self):
        draws = {seeded_hits(s, 3, 1, 20) for s in range(10)}
        assert len(draws) > 1

    def test_sorted_distinct_in_range(self):
        hits = seeded_hits(1, 4, 2, 9)
        assert list(hits) == sorted(set(hits))
        assert all(2 <= h <= 9 for h in hits)

    def test_count_clamped_to_population(self):
        assert len(seeded_hits(0, 99, 1, 3)) == 3


class TestFaultPlan:
    def test_picklable(self):
        plan = fault_matrix("smoke").plans[FAULT_WORKER_CRASH]
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_rules_for_filters_by_site(self):
        plan = FaultPlan(
            name="p",
            rules=(
                rule(FAULT_STORE_LOCKED, "store.execute"),
                rule(FAULT_DISK_FULL, "cache.write"),
            ),
        )
        assert len(plan.rules_for("store.execute")) == 1
        assert plan.rules_for("nowhere") == ()

    def test_describe_names_every_rule(self):
        plan = fault_matrix("smoke").plans[FAULT_STORE_LOCKED]
        text = plan.describe()
        assert FAULT_STORE_LOCKED in text and "store.execute" in text

    def test_matrices_resolve(self):
        smoke = fault_matrix("smoke")
        full = fault_matrix("default")
        assert set(smoke.plans) == set(MATRIX_CLASSES["smoke"])
        assert set(full.plans) == set(FAULT_CLASSES)

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ValueError, match="unknown fault matrix"):
            fault_matrix("nope")

    def test_same_seed_same_schedule(self):
        assert fault_matrix("smoke", seed=3).plans == fault_matrix(
            "smoke", seed=3
        ).plans


class TestInjector:
    def test_hits_select_occurrences(self):
        plan = FaultPlan(
            "p", (rule(FAULT_STORE_LOCKED, "s", hits=(2, 4)),)
        )
        injector = FaultInjector(plan)
        fired = []
        for occurrence in range(1, 6):
            try:
                injector.fire("s", {})
            except InjectedLocked:
                fired.append(occurrence)
        assert fired == [2, 4]
        assert injector.fire_count() == 2
        assert injector.fire_count(FAULT_STORE_LOCKED) == 2

    def test_ctx_mismatch_does_not_advance_counter(self):
        plan = FaultPlan(
            "p",
            (rule(FAULT_STORE_LOCKED, "s", hits=(1,), when={"sql": "insert"}),),
        )
        injector = FaultInjector(plan)
        injector.fire("s", {"sql": "select"})  # not counted
        with pytest.raises(InjectedLocked):
            injector.fire("s", {"sql": "insert"})  # first counted occurrence

    def test_limit_caps_total_fires(self):
        plan = FaultPlan("p", (rule(FAULT_STORE_LOCKED, "s", limit=2),))
        injector = FaultInjector(plan)
        raised = 0
        for _ in range(5):
            try:
                injector.fire("s", {})
            except InjectedLocked:
                raised += 1
        assert raised == 2

    def test_injected_exceptions_are_real_types(self):
        locked = InjectedLocked(FAULT_STORE_LOCKED, "s")
        disk = InjectedDiskError(FAULT_DISK_FULL, "s", 28)
        reset = InjectedDisconnect(FAULT_HTTP_DISCONNECT, "s")
        assert isinstance(locked, sqlite3.OperationalError)
        assert "locked" in str(locked)
        assert isinstance(disk, OSError) and disk.errno == 28
        assert isinstance(reset, ConnectionResetError)
        for exc in (locked, disk, reset):
            assert isinstance(exc, InjectedFault)

    def test_transform_truncates_and_corrupts(self):
        line = '{"event": "job", "index": 3}'
        plan = FaultPlan("p", (rule(FAULT_JOURNAL_TRUNCATE, "j", hits=(1,)),))
        injector = FaultInjector(plan)
        torn = injector.transform("j", line, {})
        assert torn == line[: len(line) // 2]

        plan = FaultPlan("p", (rule(FAULT_JOURNAL_CORRUPT, "j", hits=(1,)),))
        injector = FaultInjector(plan)
        garbled = injector.transform("j", line, {})
        assert garbled != line and "\x00" in garbled

    def test_transform_skews_clock(self):
        plan = FaultPlan("p", (rule(FAULT_CLOCK_SKEW, "c", param=100.0),))
        injector = FaultInjector(plan)
        assert injector.transform("c", 5.0, {}) == 105.0

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 27


class TestModuleSeam:
    def test_noop_without_plan(self):
        inject.deactivate()
        fault_point("anywhere", attempt=1)
        assert fault_value("anywhere", "v") == "v"
        assert inject.active() is None

    def test_active_plan_context(self):
        plan = FaultPlan("p", (rule(FAULT_STORE_LOCKED, "s", hits=(1,)),))
        with active_plan(plan) as injector:
            assert inject.active() is injector
            with pytest.raises(InjectedLocked):
                fault_point("s")
        assert inject.active() is None

    def test_activate_replaces_previous_plan(self):
        first = inject.activate(FaultPlan("a", ()))
        second = inject.activate(FaultPlan("b", ()))
        assert inject.active() is second is not first


class TestZeroCostSeam:
    def test_inactive_fault_point_is_cheap(self):
        """Benchmark guard: the seam must stay a bare None check.

        A loose absolute bound (well above any plausible CI noise for a
        no-op call) rather than a relative one: the contract is "no plan
        active means no work", and regressions that add matching or
        locking to the inactive path blow through this by an order of
        magnitude.
        """
        inject.deactivate()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            fault_point("exec.worker.trial", index=0, attempt=1)
        elapsed = time.perf_counter() - start
        per_call_us = elapsed / n * 1e6
        assert per_call_us < 25.0, f"inactive fault_point: {per_call_us:.2f}us/call"

    def test_inactive_fault_value_is_identity(self):
        inject.deactivate()
        sentinel = object()
        assert fault_value("exec.manifest.clock", sentinel) is sentinel
