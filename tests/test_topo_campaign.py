"""Topology campaigns: store recording, dedup, service round trip, viz."""

import numpy as np
import pytest

from repro.exec import Executor
from repro.harness.cache import ResultCache
from repro.service.specs import execute_campaign, parse_campaign_spec
from repro.store import ResultStore, StoreCache
from repro.topo import campaign as topo_campaign
from repro.topo.spec import chain, dumbbell

SPEC = {
    "kind": "topology",
    "topologies": None,  # filled by payload()
    "duration_s": 4.0,
    "trials": 2,
    "seed": 1,
    "run": "topo-camp",
}


def payload():
    doc = dict(SPEC)
    doc["topologies"] = [dumbbell("cubic").canonical(),
                         chain("cubic").canonical()]
    return doc


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "store.db")) as s:
        yield s


def run_campaign(spec, store, cache_dir):
    with Executor(jobs=1, cache=StoreCache(store, directory=cache_dir),
                  store=store, store_run=spec.run_name()) as executor:
        return execute_campaign(spec, store, executor)


class TestTrialIdentity:
    def test_seed_and_key_stable(self):
        topo = dumbbell("cubic")
        first = topo_campaign.topo_trial_identity(topo, 4.0, 1, 0)
        second = topo_campaign.topo_trial_identity(topo, 4.0, 1, 0)
        assert first == second
        assert first != topo_campaign.topo_trial_identity(topo, 4.0, 1, 1)
        assert first != topo_campaign.topo_trial_identity(topo, 5.0, 1, 0)

    def test_compute_is_cached_and_deterministic(self, tmp_path):
        cache = ResultCache(directory=tmp_path / "c")
        doc = dumbbell("cubic").canonical()
        first = topo_campaign.compute_topology_matrix(doc, 3.0, 0, 0,
                                                      cache=cache)
        assert cache.misses == 1
        again = topo_campaign.compute_topology_matrix(doc, 3.0, 0, 0,
                                                      cache=cache)
        assert cache.hits == 1
        assert np.array_equal(first, again)
        assert first.shape[0] == len(dumbbell("cubic").flows)


class TestCampaignThroughStore:
    def test_metrics_land_and_are_queryable(self, store, tmp_path):
        spec = parse_campaign_spec(payload())
        result = run_campaign(spec, store, tmp_path / "cache")
        assert result["runs"] == ["topo-camp"]
        n_flows = sum(len(t["flows"]) for t in result["topologies"])
        assert result["cells"] == n_flows > 0

        # Per-flow rows: condition string is the topology name, variant
        # is the flow label.
        shares = store.query(run="topo-camp", metric="share")
        assert {r.condition for r in shares} == {
            "dumbbell-cubic", "chain-cubic",
        }
        for row in shares:
            assert row.variant != "default"
            assert 0.0 <= row.value <= 1.0

        # One aggregate row per topology.
        jains = store.query(run="topo-camp", metric="jain")
        assert len(jains) == 2
        assert all(r.stack == "topology" for r in jains)
        assert all(0.0 < r.value <= 1.0 for r in jains)
        utils = store.query(run="topo-camp", metric="utilization")
        assert all(0.0 < r.value <= 1.05 for r in utils)

    def test_identical_resubmission_is_fully_cached(self, store, tmp_path):
        spec = parse_campaign_spec(payload())
        first = run_campaign(spec, store, tmp_path / "c1")
        trials_before = store.counts()["trials"]

        cache = StoreCache(store, directory=tmp_path / "c2")
        with Executor(jobs=1, cache=cache, store=store,
                      store_run=spec.run_name()) as executor:
            second = execute_campaign(spec, store, executor)
            statuses = [r.status for r in executor.last_records]
        assert first == second
        assert store.counts()["trials"] == trials_before
        assert statuses and all(s == "cached" for s in statuses)

    def test_serial_path_equals_executor_path(self, store, tmp_path,
                                              monkeypatch):
        from repro.harness.cache import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "serial-cache"))
        spec = parse_campaign_spec(payload())
        direct = execute_campaign(spec, None, None)
        via_store = run_campaign(spec, store, tmp_path / "exec-cache")
        assert direct["topologies"] == via_store["topologies"]

    def test_parallel_jobs_bit_identical(self, store, tmp_path):
        spec = parse_campaign_spec(payload())
        serial = run_campaign(spec, store, tmp_path / "c1")
        with ResultStore(str(tmp_path / "other.db")) as other:
            with Executor(jobs=2, cache=StoreCache(
                    other, directory=tmp_path / "c3"),
                    store=other, store_run=spec.run_name()) as executor:
                parallel = execute_campaign(spec, other, executor)
        assert serial["topologies"] == parallel["topologies"]


class TestFairnessPanel:
    def test_matrix_and_figure(self, store, tmp_path):
        from repro.viz import fairness_panel_figure, stored_fairness_matrix

        spec = parse_campaign_spec(payload())
        run_campaign(spec, store, tmp_path / "cache")
        rows, cols, values = stored_fairness_matrix(store, "topo-camp")
        assert cols == ["chain-cubic", "dumbbell-cubic"]
        assert values.shape == (len(rows), 2)
        # Shares of each topology sum to ~1 over its flows.
        for j in range(values.shape[1]):
            col = values[:, j]
            assert np.nansum(col) == pytest.approx(1.0, abs=1e-6)
        svg = fairness_panel_figure(store, "topo-camp").to_svg()
        assert svg.lstrip().startswith("<")
        assert "J=" in svg  # per-topology Jain's index in column labels

    def test_missing_run_raises(self, store):
        with pytest.raises(ValueError, match="per-flow"):
            from repro.viz import stored_fairness_matrix

            store.ensure_run("empty")
            stored_fairness_matrix(store, "empty")


class TestServiceRoundTrip:
    def test_http_submission_and_cached_resubmission(self, tmp_path,
                                                     monkeypatch):
        from repro.harness.cache import CACHE_DIR_ENV
        from repro.service import ServiceApp, ServiceClient

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "svc-cache"))
        app = ServiceApp(str(tmp_path / "svc.db"), workers=1)
        app.start()
        try:
            client = ServiceClient(app.url, timeout_s=30.0)
            doc = payload()
            accepted = client.submit(doc)
            final = client.wait(accepted["id"], timeout_s=600)
            assert final["state"] == "done"
            rows = client.metrics("topo-camp")
            by_metric = {}
            for row in rows:
                by_metric.setdefault(row["metric"], []).append(row)
            assert {"dumbbell-cubic", "chain-cubic"} == {
                r["condition"] for r in by_metric["share"]
            }
            assert len(by_metric["jain"]) == 2

            # Identical resubmission: served entirely from the warehouse.
            again = client.submit(doc)
            refinal = client.wait(again["id"], timeout_s=600)
            assert refinal["state"] == "done"
            statuses = refinal["trial_statuses"]
            assert statuses.get("ok", 0) == 0
            assert statuses.get("cached", 0) == refinal["progress"]["total"]
            assert refinal["progress"]["total"] > 0
        finally:
            app.stop(drain=False)
