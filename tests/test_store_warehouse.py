"""repro.store warehouse: round-trip fidelity, dedupe, schema, upserts."""

import sqlite3

import numpy as np
import pytest

from repro.harness.config import NetworkCondition
from repro.store import (
    MEASUREMENT_METRICS,
    QUERY_HEADERS,
    ResultStore,
    SchemaError,
    STORE_SCHEMA_VERSION,
    StoreError,
)
from repro.store.schema import schema_version


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "store.db") as s:
        yield s


COND = NetworkCondition(bandwidth_mbps=20.0, rtt_ms=10.0, buffer_bdp=1.0)


class TestTrials:
    def test_round_trip_is_bit_identical(self, store):
        rng = np.random.default_rng(7)
        payload = rng.standard_normal((17, 2))
        store.put_trial("k1", payload, seed=123, label="demo")
        loaded = store.get_trial("k1")
        assert loaded.dtype == payload.dtype and loaded.shape == payload.shape
        assert loaded.tobytes() == payload.tobytes()

    def test_round_trip_preserves_dtype_and_noncontiguous_input(self, store):
        payload = np.arange(24, dtype=np.float32).reshape(4, 6)[:, ::2]
        store.put_trial("strided", payload)
        loaded = store.get_trial("strided")
        assert loaded.dtype == np.float32
        assert np.array_equal(loaded, payload)

    def test_missing_key_returns_none(self, store):
        assert store.get_trial("nope") is None
        assert not store.has_trial("nope")

    def test_content_addressed_dedupe(self, store):
        payload = np.ones(5)
        assert store.put_trial("k", payload) is True
        assert store.put_trial("k", payload) is False
        assert store.counts()["trials"] == 1

    def test_batch_put_counts_only_new_keys(self, store):
        items = [(f"k{i}", np.full(3, float(i))) for i in range(4)]
        assert store.put_trials(items) == 4
        assert store.put_trials(items + [("k9", np.zeros(1))]) == 1

    def test_run_links_trials(self, store):
        run = store.ensure_run("campaign")
        store.put_trial("a", np.zeros(2), run=run)
        store.put_trial("b", np.ones(2), run=run)
        store.put_trial("c", np.ones(2))
        assert store.trial_keys(run) == ["a", "b"]
        assert store.trial_keys() == ["a", "b", "c"]

    def test_corrupt_payload_raises_store_error_in_strict_mode(
        self, store, tmp_path
    ):
        store.put_trial("bad", np.zeros(4))
        raw = sqlite3.connect(str(tmp_path / "store.db"))
        with raw:
            raw.execute("UPDATE trials SET shape = '[9999]' WHERE key = 'bad'")
        raw.close()
        with pytest.raises(StoreError, match="corrupt"):
            ResultStore(tmp_path / "store.db").get_trial("bad", strict=True)

    def test_corrupt_payload_quarantined_by_default(self, store, tmp_path):
        store.put_trial("bad", np.zeros(4))
        store.put_trial("good", np.ones(3))
        raw = sqlite3.connect(str(tmp_path / "store.db"))
        with raw:
            raw.execute("UPDATE trials SET shape = '[9999]' WHERE key = 'bad'")
        raw.close()
        reopened = ResultStore(tmp_path / "store.db")
        with pytest.warns(UserWarning, match="quarantined"):
            assert reopened.get_trial("bad") is None
        # The healthy remainder still serves, the bad row is gone, and
        # the quarantine is journalled.
        assert reopened.get_trial("good") is not None
        assert not reopened.has_trial("bad")
        events = [e for e in reopened.events() if e["event"] == "trial_quarantined"]
        assert events and events[0]["key"] == "bad"
        # Content-addressed re-insert heals the hole.
        assert reopened.put_trial("bad", np.zeros(4))
        assert reopened.get_trial("bad") is not None


class TestRunsAndMetrics:
    def test_ensure_run_is_get_or_create(self, store):
        a = store.ensure_run("r", note="first")
        b = store.ensure_run("r", note="ignored on re-create")
        assert a.id == b.id and b.note == "first"
        assert store.run(a.id).name == "r" and store.run("r").id == a.id

    def test_unknown_run_raises(self, store):
        with pytest.raises(StoreError, match="unknown run"):
            store.run("ghost")

    def test_record_metrics_upserts_in_place(self, store):
        run = store.ensure_run("r")
        first = store.record_metrics(
            run, stack="quiche", cca="cubic", metrics={"conf": 0.25},
            condition=COND,
        )
        second = store.record_metrics(
            run, stack="quiche", cca="cubic", metrics={"conf": 0.75},
            condition=COND,
        )
        assert first == second
        assert store.counts()["measurements"] == 1
        (row,) = store.query(run=run, metric="conf")
        assert row.value == 0.75

    def test_condition_less_measurements_do_not_duplicate(self, store):
        # SQLite UNIQUE treats NULLs as distinct; the select-first upsert
        # must still collapse repeated condition-less records.
        run = store.ensure_run("r")
        a = store.record_metrics(run, stack="s", cca="c", metrics={"x": 1.0})
        b = store.record_metrics(run, stack="s", cca="c", metrics={"x": 2.0})
        assert a == b and store.counts()["measurements"] == 1

    def test_query_filters_and_order(self, store):
        run = store.ensure_run("r")
        for stack in ("quiche", "mvfst"):
            for cca in ("cubic", "bbr"):
                store.record_metrics(
                    run, stack=stack, cca=cca,
                    metrics={"conf": 0.5, "conf_t": 0.9}, condition=COND,
                )
        rows = store.query(run="r", stack="quiche", metric="conf")
        assert [(r.stack, r.cca, r.metric) for r in rows] == [
            ("quiche", "bbr", "conf"), ("quiche", "cubic", "conf"),
        ]
        assert store.query(condition="nope") == []
        table = store.metric_table("r", "conf_t")
        assert table[("mvfst", "bbr", "default", COND.describe())] == 0.9

    def test_exports_share_header_order(self, store):
        run = store.ensure_run("r")
        store.record_metrics(
            run, stack="s", cca="c", metrics={"conf": 0.125}, condition=COND
        )
        rows = store.query(run=run)
        csv_text = ResultStore.export_csv(rows)
        assert csv_text.splitlines()[0] == ",".join(QUERY_HEADERS)
        assert "0.125" in csv_text
        import json

        (obj,) = json.loads(ResultStore.export_json(rows))
        assert set(obj) == set(QUERY_HEADERS) and obj["value"] == 0.125

    def test_baselines_point_at_runs(self, store):
        run = store.ensure_run("release-1")
        store.set_baseline("anchor", run)
        assert store.baseline_run("anchor").name == "release-1"
        other = store.ensure_run("release-2")
        store.set_baseline("anchor", other)
        assert store.baselines() == {"anchor": "release-2"}
        assert store.baseline_run("missing") is None

    def test_measurement_metric_names_are_stable(self, store):
        # Downstream queries (diff, regression_matrix_from_store, docs)
        # rely on these exact metric names.
        assert MEASUREMENT_METRICS == (
            "conf", "conf_t", "conf_old", "delta_tput_mbps",
            "delta_delay_ms", "k_test", "k_ref",
        )


class TestSchema:
    def test_fresh_store_is_at_current_version(self, store):
        assert schema_version(store._conn) == STORE_SCHEMA_VERSION
        assert store.integrity_ok()

    def test_reopening_existing_file_keeps_data(self, tmp_path):
        path = tmp_path / "w.db"
        with ResultStore(path) as s:
            s.put_trial("k", np.arange(3.0))
        with ResultStore(path) as s:
            assert np.array_equal(s.get_trial("k"), np.arange(3.0))

    def test_file_from_a_newer_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        with ResultStore(path) as s:
            s.put_trial("k", np.zeros(1))
        raw = sqlite3.connect(str(path))
        with raw:
            raw.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 1}")
        raw.close()
        with pytest.raises(SchemaError, match="newer"):
            ResultStore(path)

    def test_empty_legacy_file_migrates_forward(self, tmp_path):
        # A version-0 file (as a pre-store SQLite file would be) goes
        # through the migration ladder on open.
        path = tmp_path / "legacy.db"
        sqlite3.connect(str(path)).close()
        with ResultStore(path) as s:
            assert schema_version(s._conn) == STORE_SCHEMA_VERSION
            s.put_trial("k", np.zeros(2))
            assert s.integrity_ok()


class TestStoreCache:
    def test_write_through_and_read_through(self, store):
        from repro.store import StoreCache

        cache = StoreCache(store)
        value = np.arange(6.0).reshape(2, 3)
        cache.put("k", value)
        assert store.has_trial("k") and cache.store_puts == 1

        # A cold cache on the same store serves the trial from tier 3
        # and promotes it (second get is a memory hit, not a store hit).
        cold = StoreCache(store)
        assert np.array_equal(cold.get("k"), value)
        assert cold.get("k") is not None
        counters = cold.counters()
        assert counters["store_hits"] == 1
        assert counters["hits"] == 2 and counters["misses"] == 0

    def test_miss_everywhere_counts_as_miss(self, store):
        from repro.store import StoreCache

        cache = StoreCache(store)
        assert cache.get("absent") is None
        assert cache.counters()["misses"] == 1

    def test_disabled_cache_bypasses_store(self, store):
        from repro.store import StoreCache

        cache = StoreCache(store, enabled=False)
        cache.put("k", np.zeros(2))
        assert not store.has_trial("k")

    def test_owned_store_from_path(self, tmp_path):
        from repro.store import StoreCache

        cache = StoreCache(tmp_path / "owned.db")
        cache.put("k", np.ones(3))
        cache.close()
        with ResultStore(tmp_path / "owned.db") as reopened:
            assert reopened.has_trial("k")


class TestEvents:
    def test_events_round_trip_payloads(self, store):
        run = store.ensure_run("r")
        store.record_event(
            "job", campaign="c", payload={"status": "ok", "wall_s": 0.5},
            run=run,
        )
        store.record_event("campaign_end", campaign="c")
        events = store.events(campaign="c")
        assert [e["event"] for e in events] == ["job", "campaign_end"]
        assert events[0]["status"] == "ok"
