"""On/off cross-traffic source."""

import random

import pytest

from repro.netsim.crosstraffic import CrossTrafficConfig, OnOffSource
from repro.netsim.engine import EventLoop


def run_source(config, duration=20.0, seed=1):
    loop = EventLoop()
    sent = []
    source = OnOffSource(loop, 9, transmit=sent.append, config=config, rng=random.Random(seed))
    source.start()
    loop.run(duration)
    source.stop()
    return sent


def test_rate_during_on_periods():
    # Always on: mean_off tiny, mean_on huge.
    config = CrossTrafficConfig(rate_bps=2e6, mean_on_s=100.0, mean_off_s=1e-3, packet_size=1000)
    sent = run_source(config, duration=10.0)
    sent_bits = sum(p.size for p in sent) * 8
    assert sent_bits == pytest.approx(2e6 * 10, rel=0.15)


def test_duty_cycle_reduces_volume():
    bursty = CrossTrafficConfig(rate_bps=2e6, mean_on_s=0.5, mean_off_s=2.0)
    steady = CrossTrafficConfig(rate_bps=2e6, mean_on_s=100.0, mean_off_s=1e-3)
    v_bursty = sum(p.size for p in run_source(bursty, 30.0))
    v_steady = sum(p.size for p in run_source(steady, 30.0))
    assert v_bursty < 0.6 * v_steady


def test_deterministic_per_seed():
    config = CrossTrafficConfig()
    a = run_source(config, 10.0, seed=5)
    b = run_source(config, 10.0, seed=5)
    assert len(a) == len(b)


def test_stop_halts_traffic():
    loop = EventLoop()
    sent = []
    config = CrossTrafficConfig(rate_bps=1e6, mean_on_s=100.0, mean_off_s=1e-3)
    source = OnOffSource(loop, 9, transmit=sent.append, config=config, rng=random.Random(1))
    source.start()
    loop.run(5.0)
    source.stop()
    count = len(sent)
    loop.run(10.0)
    assert len(sent) == count


def test_config_validation():
    for bad in (
        CrossTrafficConfig(rate_bps=0),
        CrossTrafficConfig(mean_on_s=0),
        CrossTrafficConfig(packet_size=0),
    ):
        with pytest.raises(ValueError):
            bad.validate()
