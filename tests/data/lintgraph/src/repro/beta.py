"""Golden fixture: helper class with its own lock, annotated factory."""

import threading


class Helper:
    def __init__(self):
        self._lock = threading.Lock()

    def ping(self):
        with self._lock:
            return "pong"


def make_helper() -> Helper:
    return Helper()
