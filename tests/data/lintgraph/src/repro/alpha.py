"""Golden fixture: classes, inheritance, locks, devirtualized calls."""

import threading

from repro.beta import Helper, make_helper

GLOBAL_LOCK = threading.Lock()


class Base:
    def __init__(self):
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._helper = Helper()

    def run(self):
        with self._lock:
            self.step()
            self._helper.ping()

    def step(self):
        return 0


class Child(Base):
    def step(self):
        with GLOBAL_LOCK:
            return 1


def use_var():
    h = make_helper()
    h.ping()
