"""Offline time-series computation and PE sampling."""

import numpy as np
import pytest

from repro.core.sampling import SamplingConfig, sample_points
from repro.core.timeseries import compute_time_series
from repro.netsim.trace import FlowTrace


def uniform_trace(rate_pps=100, duration=10.0, owd=0.03, payload=1000):
    """A constant-rate delivery trace."""
    trace = FlowTrace(0)
    dt = 1.0 / rate_pps
    t = 0.0
    seq = 0
    while t < duration:
        trace.on_delivery(t + owd, t, seq, payload, False)
        seq += 1
        t += dt
    return trace


def test_constant_rate_throughput():
    trace = uniform_trace(rate_pps=100, payload=1000)
    series = compute_time_series(trace, window_s=1.0, reverse_delay_s=0.01)
    # 100 pkt/s * 1000 B = 0.8 Mbps.
    assert np.allclose(series.throughput_mbps, 0.8, rtol=0.05)


def test_delay_is_owd_plus_reverse():
    trace = uniform_trace(owd=0.03)
    series = compute_time_series(trace, window_s=1.0, reverse_delay_s=0.01)
    assert np.allclose(series.delay_ms, 40.0, atol=0.5)


def test_empty_trace():
    series = compute_time_series(FlowTrace(0), window_s=1.0, reverse_delay_s=0.01)
    assert len(series) == 0


def test_silent_window_inherits_delay_and_zero_throughput():
    trace = FlowTrace(0)
    for i in range(10):
        trace.on_delivery(i * 0.01, i * 0.01 - 0.02, i, 1000, False)
    # gap from 0.1 to 3.0, then more records
    for i in range(10):
        t = 3.0 + i * 0.01
        trace.on_delivery(t, t - 0.05, 100 + i, 1000, False)
    series = compute_time_series(trace, window_s=0.5, reverse_delay_s=0.01)
    # A middle window has zero throughput but carries the last delay.
    assert (series.throughput_mbps == 0).any()
    silent = series.delay_ms[series.throughput_mbps == 0]
    assert np.allclose(silent, 30.0, atol=1.0)


def test_truncation_drops_both_ends():
    trace = uniform_trace(duration=10.0)
    series = compute_time_series(trace, window_s=0.5, reverse_delay_s=0.01)
    truncated = series.truncated(0.10)
    assert len(truncated) == len(series) - 2 * int(len(series) * 0.10)
    assert truncated.times[0] > series.times[0]


def test_truncation_validation():
    trace = uniform_trace(duration=5.0)
    series = compute_time_series(trace, window_s=0.5, reverse_delay_s=0.01)
    with pytest.raises(ValueError):
        series.truncated(0.6)


def test_invalid_window():
    with pytest.raises(ValueError):
        compute_time_series(uniform_trace(), window_s=0, reverse_delay_s=0.01)


def test_points_shape_and_axes():
    trace = uniform_trace(duration=10.0, owd=0.03)
    points = sample_points(trace, base_rtt_s=0.02)
    assert points.shape[1] == 2
    # Axis 0 = delay (ms), axis 1 = throughput (Mbps).
    assert np.allclose(points[:, 0], 40.0, atol=1.0)
    assert np.allclose(points[:, 1], 0.8, rtol=0.1)


def test_sampling_period_in_rtts():
    trace = uniform_trace(duration=20.0)
    fine = sample_points(trace, base_rtt_s=0.02, config=SamplingConfig(sample_rtts=10))
    coarse = sample_points(trace, base_rtt_s=0.02, config=SamplingConfig(sample_rtts=50))
    assert len(fine) > len(coarse) * 3


def test_sampling_validation():
    trace = uniform_trace()
    with pytest.raises(ValueError):
        sample_points(trace, base_rtt_s=0)
    with pytest.raises(ValueError):
        sample_points(trace, base_rtt_s=0.02, config=SamplingConfig(sample_rtts=0))
