"""Reference-free peer conformance: matrix, clustering, scores."""

import json

import numpy as np
import pytest

from repro.core.envelope import EnvelopeConfig, build_envelope
from repro.core.peer import (
    cluster_peers,
    evaluate_peer_conformance,
    pairwise_conformance_matrix,
    peer_distance_matrix,
    peer_scores,
)


def blob(center, n=60, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(center, spread, size=(n, 2))


def trials_at(center, seed=0):
    """Three self-competition trials sampling the same behaviour."""
    return [blob(center, seed=seed + t) for t in range(3)]


def make_pe(center, seed=0):
    return build_envelope(trials_at(center, seed=seed), EnvelopeConfig(k=1))


def test_matrix_is_symmetric_with_unit_diagonal():
    envelopes = {
        "a": make_pe((10, 10), seed=1),
        "b": make_pe((10.5, 10.5), seed=2),
        "c": make_pe((100, 100), seed=3),
    }
    names, matrix = pairwise_conformance_matrix(envelopes)
    assert names == ["a", "b", "c"]  # insertion order preserved
    assert np.allclose(matrix, matrix.T)
    assert np.allclose(np.diag(matrix), 1.0)
    assert ((matrix >= 0.0) & (matrix <= 1.0)).all()
    # Nearby behaviours overlap; the distant one does not.
    assert matrix[0, 1] > 0.3
    assert matrix[0, 2] == 0.0


def test_distance_is_one_minus_conformance():
    matrix = np.array([[1.0, 0.4], [0.4, 1.0]])
    dist = peer_distance_matrix(matrix)
    assert np.allclose(dist, [[0.0, 0.6], [0.6, 0.0]])


def test_clustering_separates_distant_peer():
    envelopes = {
        "a": make_pe((10, 10), seed=1),
        "b": make_pe((10, 10), seed=4),
        "far": make_pe((100, 100), seed=5),
    }
    _, matrix = pairwise_conformance_matrix(envelopes)
    labels, selection = cluster_peers(matrix, seed=0)
    assert selection.k == 2
    assert labels[0] == labels[1]
    assert labels[2] != labels[0]
    # R(1) = 1 by construction; the retention curve is non-increasing.
    assert selection.retention[0] == pytest.approx(1.0)
    assert all(
        a >= b - 1e-9
        for a, b in zip(selection.retention, selection.retention[1:])
    )


def test_clustering_rejects_empty_group():
    with pytest.raises(ValueError):
        cluster_peers(np.zeros((0, 0)))


def test_scores_mean_conformance_to_cluster_mates():
    matrix = np.array(
        [
            [1.0, 0.8, 0.1],
            [0.8, 1.0, 0.2],
            [0.1, 0.2, 1.0],
        ]
    )
    labels = np.array([0, 0, 1])
    scores = peer_scores(matrix, labels)
    assert scores[0] == pytest.approx(0.8)
    assert scores[1] == pytest.approx(0.8)
    # The singleton scores its best conformance to ANY peer, so
    # "conforms to nothing" reads low instead of a vacuous 1.0.
    assert scores[2] == pytest.approx(0.2)


def test_single_peer_scores_one():
    assert peer_scores(np.eye(1), np.zeros(1)) == pytest.approx([1.0])


def test_evaluate_end_to_end():
    trials = {
        "a": trials_at((10, 10), seed=1),
        "b": trials_at((10, 10), seed=7),
        "far": trials_at((100, 100), seed=9),
    }
    result = evaluate_peer_conformance(trials, seed=0)
    assert result.peers == ["a", "b", "far"]
    assert result.k == 2
    clusters = result.clusters()
    assert clusters["a"] == clusters["b"] != clusters["far"]
    assert result.score_of("a") > 0.3
    assert result.score_of("far") < result.score_of("a")
    assert result.pair_conformance("a", "b") == result.pair_conformance("b", "a")
    assert np.allclose(result.distance_matrix(), 1.0 - result.matrix)


def test_evaluate_accepts_prebuilt_envelopes():
    envelopes = {"a": make_pe((10, 10), seed=1), "b": make_pe((10, 10), seed=2)}
    result = evaluate_peer_conformance({}, envelopes=envelopes)
    assert result.peers == ["a", "b"]
    assert result.envelopes.keys() == envelopes.keys()


def test_evaluate_empty_group_raises():
    with pytest.raises(ValueError, match="empty"):
        evaluate_peer_conformance({})


def test_summary_is_json_ready_and_faithful():
    trials = {
        "a": trials_at((10, 10), seed=1),
        "b": trials_at((100, 100), seed=2),
    }
    result = evaluate_peer_conformance(trials, seed=0)
    summary = json.loads(json.dumps(result.summary()))
    assert summary["peers"] == ["a", "b"]
    assert summary["k"] == result.k
    assert summary["clusters"] == {
        name: int(label) for name, label in zip(result.peers, result.labels)
    }
    assert summary["matrix"][0][0] == pytest.approx(1.0)
    assert summary["scores"]["a"] == pytest.approx(result.score_of("a"), abs=1e-4)
    assert summary["retention"][0] == pytest.approx(1.0)


def test_determinism_same_seed_same_outcome():
    trials = {
        "a": trials_at((10, 10), seed=1),
        "b": trials_at((11, 11), seed=2),
        "c": trials_at((50, 50), seed=3),
    }
    r1 = evaluate_peer_conformance(trials, seed=0)
    r2 = evaluate_peer_conformance(trials, seed=0)
    assert np.array_equal(r1.matrix, r2.matrix)
    assert np.array_equal(r1.labels, r2.labels)
    assert np.array_equal(r1.scores, r2.scores)
