"""Scheduler: journaling, resume, backpressure, cancellation, drain.

The tiny campaigns here use one (stack, cca) cell at a 3-second protocol
so every test runs in seconds; the cache directory is isolated per test
module so dedup observations come from the warehouse, not a shared disk
cache.
"""

import signal
import threading
import time

import pytest

from repro.harness.cache import CACHE_DIR_ENV
from repro.service import QueueFull, Scheduler, ServiceApp, parse_campaign_spec
from repro.service.scheduler import (
    CANCELLED,
    DONE,
    EVENT_SUBMITTED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
)
from repro.store import ResultStore

TINY = {
    "kind": "conformance",
    "stacks": ["xquic"],
    "ccas": ["cubic"],
    "duration_s": 3,
    "trials": 2,
}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))


def wait_state(scheduler, campaign_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = scheduler.job(campaign_id)
        if job is not None and job.state in TERMINAL_STATES:
            return job
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id} never finished")


def test_campaign_runs_and_journals(tmp_path):
    db = str(tmp_path / "store.db")
    scheduler = Scheduler(db, workers=1)
    job = scheduler.submit(parse_campaign_spec(TINY))
    finished = wait_state(scheduler, job.id)
    assert finished.state == DONE
    assert finished.statuses.get("ok", 0) > 0
    assert finished.done == finished.total > 0
    scheduler.shutdown(drain=True)

    with ResultStore(db) as store:
        names = {r.name for r in store.runs()}
        assert job.spec.run_name() in names
        journal = [
            e["event"] for e in store.events(campaign=job.id)
            if e["event"].startswith("service_")
        ]
        assert journal[0] == "service_submitted"
        assert journal[-1] == "service_done"
        assert "service_started" in journal


def test_second_submission_dedupes_through_the_store(tmp_path, monkeypatch):
    # No disk cache at all: the only reuse path is the warehouse.
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    db = str(tmp_path / "store.db")
    scheduler = Scheduler(db, workers=1)
    spec = parse_campaign_spec(TINY)
    first = wait_state(scheduler, scheduler.submit(spec).id)
    assert first.statuses == {"ok": first.total}
    second = wait_state(scheduler, scheduler.submit(spec).id)
    # Zero new simulations: every trial came back from the warehouse.
    assert second.statuses == {"cached": second.total}
    scheduler.shutdown(drain=True)


def test_backpressure_bounded_queue(tmp_path):
    scheduler = Scheduler(str(tmp_path / "store.db"), workers=0, max_pending=2)
    spec = parse_campaign_spec(TINY)
    scheduler.submit(spec)
    scheduler.submit(spec)
    with pytest.raises(QueueFull) as err:
        scheduler.submit(spec)
    assert err.value.retry_after_s > 0
    assert scheduler.queue_depth() == 2
    scheduler.shutdown(drain=False)


def test_priority_orders_pending_campaigns(tmp_path):
    db = str(tmp_path / "store.db")
    paused = Scheduler(db, workers=0)
    spec = parse_campaign_spec(TINY)
    low = paused.submit(spec, priority=0)
    high = paused.submit(spec, priority=5)
    order = []
    item = paused._queue.get_nowait()
    order.append(item[2])
    item = paused._queue.get_nowait()
    order.append(item[2])
    assert order == [high.id, low.id]
    paused.shutdown(drain=False)


def test_cancel_pending_campaign(tmp_path):
    scheduler = Scheduler(str(tmp_path / "store.db"), workers=0)
    job = scheduler.submit(parse_campaign_spec(TINY))
    assert scheduler.cancel(job.id)
    assert scheduler.job(job.id).state == CANCELLED
    assert not scheduler.cancel(job.id)  # already terminal
    assert not scheduler.cancel("nope")
    scheduler.shutdown(drain=False)

    # A cancelled campaign is not resumed by a fresh scheduler.
    fresh = Scheduler(scheduler.store_path, workers=0)
    assert fresh.resume_pending() == []
    fresh.shutdown(drain=False)


def test_cancel_running_campaign_stops_at_trial_boundary(tmp_path):
    db = str(tmp_path / "store.db")
    scheduler = Scheduler(db, workers=1)
    spec = parse_campaign_spec(dict(TINY, trials=3))
    job = scheduler.submit(spec)
    # Cancel as soon as the first trial lands.
    deadline = time.monotonic() + 120
    while not job.statuses and time.monotonic() < deadline:
        time.sleep(0.02)
    scheduler.cancel(job.id)
    finished = wait_state(scheduler, job.id)
    assert finished.state == CANCELLED
    scheduler.shutdown(drain=True)
    # Trials completed before the cancel are durably stored.
    with ResultStore(db) as store:
        assert store.counts()["trials"] >= 1


def test_drain_false_keeps_pending_journaled_and_resume_completes(tmp_path):
    db = str(tmp_path / "store.db")
    first = Scheduler(db, workers=0)  # nothing drains: both stay pending
    spec = parse_campaign_spec(TINY)
    a = first.submit(spec, priority=1)
    b = first.submit(parse_campaign_spec(dict(TINY, trials=3)))
    assert first.queue_depth() == 2
    first.shutdown(drain=False)

    with ResultStore(db) as store:
        submitted = [
            e for e in store.events() if e["event"] == EVENT_SUBMITTED
        ]
        assert {e["campaign"] for e in submitted} == {a.id, b.id}

    # A restarted scheduler resumes both from the journal and runs them.
    second = Scheduler(db, workers=1)
    resumed = second.resume_pending()
    assert set(resumed) == {a.id, b.id}
    ra = wait_state(second, a.id)
    rb = wait_state(second, b.id)
    assert ra.state == DONE and rb.state == DONE
    # The resumed jobs carry the original priorities from the journal.
    assert second.job(a.id).priority == 1
    second.shutdown(drain=True)

    # Third instance: nothing left to resume.
    third = Scheduler(db, workers=0)
    assert third.resume_pending() == []
    third.shutdown(drain=False)


def test_sigterm_drains_without_losing_trials(tmp_path):
    """kill -TERM: in-flight work survives, pending campaigns resume."""
    db = str(tmp_path / "store.db")
    app = ServiceApp(db, workers=1, max_pending=16)
    app.install_signal_handlers()
    app.start()
    try:
        spec = parse_campaign_spec(TINY)
        running = app.scheduler.submit(spec)
        queued = app.scheduler.submit(
            parse_campaign_spec(dict(TINY, trials=3))
        )
        # SIGTERM while the first campaign is mid-flight: the drain
        # finishes it, and the queued campaign never starts.
        deadline = time.monotonic() + 120
        while running.state == PENDING and time.monotonic() < deadline:
            time.sleep(0.01)
        assert running.state == RUNNING
        signal.raise_signal(signal.SIGTERM)
        assert app.wait(timeout=120.0), "service did not stop on SIGTERM"
        finished_first = app.scheduler.job(running.id)
        assert finished_first.state == DONE
    finally:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)

    with ResultStore(db) as store:
        # No completed trials lost: the finished campaign's run and its
        # trial payloads are all in the warehouse.  (``total`` counts
        # executor jobs; duplicate-key reference trials store once.)
        assert finished_first.total > 0
        assert store.counts()["trials"] >= 1
        assert len(store.trial_keys(spec.run_name())) >= 1
        assert store.has_run(spec.run_name())
        # The queued campaign was never started, only journaled.
        events = [
            e["event"] for e in store.events(campaign=queued.id)
            if e["event"].startswith("service_")
        ]
        assert events == [EVENT_SUBMITTED]

    # Restart: the pending campaign is resumed and completes.
    app2 = ServiceApp(db, workers=1)
    try:
        assert app2.resumed == [queued.id]
        finished = wait_state(app2.scheduler, queued.id)
        assert finished.state == DONE
    finally:
        app2.stop(drain=True)


def test_wait_events_long_poll(tmp_path):
    scheduler = Scheduler(str(tmp_path / "store.db"), workers=0)
    job = scheduler.submit(parse_campaign_spec(TINY))
    first = scheduler.wait_events(job.id, after=0, timeout=1.0)
    assert first and first[0]["event"] == "state"
    assert first[0]["state"] == PENDING

    # A poll past the end blocks until a new event arrives.
    def emit_later():
        time.sleep(0.2)
        scheduler._emit(job, {"event": "poke"})

    threading.Thread(target=emit_later, daemon=True).start()
    start = time.monotonic()
    events = scheduler.wait_events(job.id, after=len(first), timeout=10.0)
    assert events and events[0]["event"] == "poke"
    assert time.monotonic() - start < 5.0
    assert scheduler.wait_events("unknown", timeout=0.1) == []
    scheduler.shutdown(drain=False)
