"""GCC delay-gradient controller: detector, AIMD, loss paths."""

import pytest

from repro.cca.base import AckEvent
from repro.cca.gcc import GccController, GccConfig

MSS = 1200


class Driver:
    """Feeds a GCC instance a synthetic ACK stream."""

    def __init__(self, gcc):
        self.gcc = gcc
        self.now = 0.0

    def ack(self, rtt, rate=125_000.0, dt=0.01):
        self.now += dt
        self.gcc.on_ack(
            AckEvent(
                now=self.now,
                bytes_acked=MSS,
                rtt_sample=rtt,
                delivery_rate=rate,
                is_app_limited=False,
                bytes_in_flight=0,
                round_count=0,
            )
        )


def settle(driver, rtt=0.05, n=30, rate=125_000.0):
    """Establish min_rtt and a flat delay baseline."""
    for _ in range(n):
        driver.ack(rtt, rate=rate)


def test_initial_state():
    gcc = GccController(MSS)
    assert gcc.rate == pytest.approx(125_000.0)
    assert gcc.signal == GccController.NORMAL
    assert gcc.state == GccController.INCREASE
    assert gcc.pacing_rate() == gcc.rate


def test_rising_delay_triggers_overuse_and_decrease():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver)
    rate_before = gcc.rate
    # Queueing delay growing 2 ms per 10 ms tick: slope ~0.2 s/s, far
    # above the 0.015 detector threshold.
    rtt = 0.05
    for _ in range(60):
        rtt += 0.002
        driver.ack(rtt, rate=100_000.0)
    assert gcc.signal == GccController.OVERUSE
    assert gcc.state == GccController.DECREASE
    # The decrease applies beta to the measured delivery rate.
    assert gcc.rate <= 0.85 * 100_000.0 + 1e-6
    assert gcc.rate < rate_before


def test_persistent_overuse_ratchets_rate_down():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver)
    rates = []
    rtt = 0.05
    for _ in range(400):
        rtt += 0.002
        driver.ack(rtt, rate=100_000.0)
        rates.append(gcc.rate)
    # More than one cut happened: the rate keeps stepping down instead
    # of pinning at beta x delivery forever.
    distinct_cuts = {round(r) for r in rates if r < 125_000.0}
    assert len(distinct_cuts) >= 2
    assert gcc.rate < 0.85 * 100_000.0


def test_falling_delay_reads_underuse_and_holds():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver)
    # Build a queue, then let it drain.
    rtt = 0.05
    for _ in range(40):
        rtt += 0.002
        driver.ack(rtt)
    for _ in range(25):
        rtt = max(0.05, rtt - 0.002)
        driver.ack(rtt)
    assert gcc.signal == GccController.UNDERUSE
    assert gcc.state == GccController.HOLD
    rate_at_hold = gcc.rate
    for _ in range(5):
        rtt = max(0.05, rtt - 0.002)
        driver.ack(rtt)
    if gcc.state == GccController.HOLD:
        assert gcc.rate == pytest.approx(rate_at_hold)


def test_flat_delay_increases_rate_multiplicatively():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver, n=200)
    assert gcc.signal == GccController.NORMAL
    assert gcc.state == GccController.INCREASE
    assert gcc.rate > 125_000.0


def test_additive_increase_near_last_decrease():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver)
    # Mark the current rate as the last known-good (post-decrease) rate:
    # the controller is now "near the limit" and must grow additively —
    # about one MSS per RTT — instead of 8 % per RTT.
    before = gcc.rate
    gcc._last_decrease_rate = before
    for _ in range(100):  # 1 s = ~20 RTTs at 50 ms
        driver.ack(0.05)
    grown = gcc.rate - before
    assert grown > 0
    # Multiplicative growth over 20 RTTs would be ~4.6x; additive is a
    # handful of MSS.
    assert grown < 40 * MSS
    assert gcc.rate < before * 1.5


def test_cwnd_derives_from_min_rtt_not_smoothed_rtt():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver, rtt=0.05, n=5)
    # Inflate the smoothed RTT with a standing queue; the window must
    # keep using the 50 ms minimum, or the queue would feed itself.
    for _ in range(30):
        driver.ack(0.25)
    expected = max(int(gcc.config.cwnd_gain * gcc.rate * 0.05), 2 * MSS)
    assert gcc.cwnd == expected


def test_cwnd_floor_is_two_packets():
    gcc = GccController(MSS, GccConfig(initial_rate=8_000.0, min_rate=8_000.0))
    driver = Driver(gcc)
    settle(driver, rtt=0.01, n=5)
    assert gcc.cwnd == 2 * MSS


def test_loss_applies_mild_multiplicative_cut():
    gcc = GccController(MSS)
    before = gcc.rate
    gcc.on_congestion_event(1.0, bytes_in_flight=10 * MSS)
    assert gcc.rate == pytest.approx(0.95 * before)
    # The floor holds under repeated loss.
    for _ in range(200):
        gcc.on_congestion_event(1.0, bytes_in_flight=10 * MSS)
    assert gcc.rate >= gcc.config.min_rate


def test_rto_halves_rate_and_holds():
    gcc = GccController(MSS)
    before = gcc.rate
    gcc.on_rto(1.0)
    assert gcc.rate == pytest.approx(0.5 * before)
    assert gcc.state == GccController.HOLD


def test_rate_respects_configured_ceiling():
    gcc = GccController(MSS, GccConfig(max_rate=150_000.0))
    driver = Driver(gcc)
    settle(driver, n=600)
    assert gcc.rate <= 150_000.0 + 1e-6


def test_threshold_adapts_but_stays_clamped():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver, n=100)
    assert 5e-3 <= gcc._threshold <= 0.1


def test_invalid_configs():
    for bad in (
        GccConfig(initial_rate=0),
        GccConfig(min_rate=-1),
        GccConfig(min_rate=10, max_rate=5),
        GccConfig(gradient_window=1),
        GccConfig(smoothing=0.0),
        GccConfig(smoothing=1.5),
        GccConfig(beta=0.0),
        GccConfig(beta=1.0),
        GccConfig(loss_beta=0.0),
        GccConfig(eta=1.0),
        GccConfig(overuse_samples=0),
    ):
        with pytest.raises(ValueError):
            bad.validate()


def test_debug_state_contents():
    gcc = GccController(MSS)
    driver = Driver(gcc)
    settle(driver, n=10)
    state = gcc.debug_state()
    assert state["rate"] == gcc.rate
    assert state["signal"] == gcc.signal
    assert state["controller_state"] == gcc.state
    assert "gradient" in state and "threshold" in state and "min_rtt" in state
