"""Windowed min/max filters and the RTT estimator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cca.rtt import RttEstimator
from repro.cca.windowed_filter import WindowedMaxFilter, WindowedMinFilter
from repro.faults import inject
from repro.faults.plan import FAULT_CLOCK_SKEW, FaultPlan, rule


class TestWindowedMax:
    def test_tracks_maximum(self):
        f = WindowedMaxFilter(window=10)
        assert f.update(0, 5) == 5
        assert f.update(1, 3) == 5
        assert f.update(2, 8) == 8

    def test_old_maximum_ages_out(self):
        f = WindowedMaxFilter(window=10)
        f.update(0, 100)
        for t in range(1, 25):
            f.update(t, 10)
        assert f.get() == 10

    def test_get_before_samples(self):
        assert WindowedMaxFilter(window=5).get() is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedMaxFilter(window=0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0.1, 1000)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_guarantees(self, samples):
        """Kernel win_minmax guarantees: the estimate is at least the
        current sample, and it is the value of a sample no older than the
        window (like the kernel filter, a hard reset on the oldest
        estimate's expiry may discard a still-valid runner-up, so the
        estimate can momentarily undershoot the exact windowed max)."""
        window = 10.0
        f = WindowedMaxFilter(window=window)
        samples = sorted(samples, key=lambda s: s[0])
        fed = []
        for t, v in samples:
            estimate = f.update(t, v)
            fed.append((t, v))
            assert estimate >= v - 1e-9
            witnesses = [v2 for t2, v2 in fed if t - window <= t2]
            assert any(abs(estimate - w) < 1e-9 for w in witnesses)


class TestWindowedMin:
    def test_tracks_minimum(self):
        f = WindowedMinFilter(window=10)
        assert f.update(0, 5) == 5
        assert f.update(1, 8) == 5
        assert f.update(2, 2) == 2

    def test_old_minimum_ages_out(self):
        f = WindowedMinFilter(window=10)
        f.update(0, 1)
        for t in range(1, 25):
            f.update(t, 50)
        assert f.get() == 50


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.update(0.1)
        assert est.srtt == 0.1
        assert est.rttvar == 0.05
        assert est.min_rtt == 0.1

    def test_ewma_smoothing(self):
        est = RttEstimator()
        est.update(0.1)
        est.update(0.2)
        assert est.srtt == pytest.approx(0.1 * 7 / 8 + 0.2 / 8)

    def test_min_rtt_monotone_nonincreasing(self):
        est = RttEstimator()
        for sample in (0.1, 0.05, 0.2, 0.08):
            est.update(sample)
        assert est.min_rtt == 0.05

    def test_rto_bounds(self):
        est = RttEstimator()
        assert est.rto() >= 0.2
        est.update(0.01)
        assert 0.2 <= est.rto() <= 60.0
        # Large variance raises the RTO.
        est2 = RttEstimator()
        est2.update(0.1)
        est2.update(1.0)
        assert est2.rto() > est.rto()

    def test_loss_time_threshold_is_nine_eighths(self):
        est = RttEstimator()
        est.update(0.08)
        assert est.loss_time_threshold() == pytest.approx(9 / 8 * 0.08)

    def test_rack_threshold_exceeds_quic_threshold(self):
        est = RttEstimator()
        est.update(0.08)
        est.update(0.10)
        assert est.rack_time_threshold() > est.loss_time_threshold()
        # The pad is at least a quarter of the minimum RTT.
        assert est.rack_time_threshold() >= est.latest + 0.08 / 4 - 1e-9

    def test_smoothed_fallback_before_samples(self):
        est = RttEstimator(initial_rtt=0.123)
        assert est.smoothed == 0.123

    def test_rejects_invalid_samples(self):
        est = RttEstimator()
        with pytest.raises(ValueError):
            est.update(0)
        with pytest.raises(ValueError):
            RttEstimator(initial_rtt=0)

    @given(st.lists(st.floats(1e-4, 10), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_srtt_stays_within_sample_range(self, samples):
        est = RttEstimator()
        for s in samples:
            est.update(s)
        assert min(samples) - 1e-9 <= est.srtt <= max(samples) + 1e-9
        assert est.min_rtt == pytest.approx(min(samples))


class TestWindowBoundary:
    """Expiry semantics at exactly one window of distance.

    The kernel filter's reset condition is strictly ``time - best.time >
    window``: a sample landing exactly one window after the best is still
    *inside* the window, one tick beyond it is not.
    """

    def test_sample_at_exact_boundary_keeps_old_best(self):
        f = WindowedMaxFilter(window=10)
        f.update(0, 100)
        assert f.update(10, 5) == 100  # exactly window distance: retained

    def test_sample_just_past_boundary_resets(self):
        f = WindowedMaxFilter(window=10)
        f.update(0, 100)
        assert f.update(10.000001, 5) == 5

    def test_min_filter_same_boundary(self):
        f = WindowedMinFilter(window=10)
        f.update(0, 1)
        assert f.update(10, 50) == 1
        assert f.update(10.000001, 60) == 60


class TestDuplicateTimestamps:
    """Several samples sharing one timestamp must not corrupt the filter."""

    def test_equal_value_at_same_time_resets_cleanly(self):
        # _better uses >= / <=, so an equal-value duplicate takes the
        # hard-reset path; the estimate must not change.
        f = WindowedMaxFilter(window=10)
        f.update(5, 42)
        assert f.update(5, 42) == 42
        assert f.get() == 42

    def test_worse_values_at_same_time_are_absorbed(self):
        f = WindowedMaxFilter(window=10)
        f.update(5, 100)
        for v in (90, 80, 70):
            assert f.update(5, v) == 100
        # Zero elapsed time: no sub-window aging branch fires, so the
        # worse duplicates are dropped and every estimate stays at the
        # best — no slot corruption.
        assert [s.value for s in f._estimates] == [100, 100, 100]

    def test_better_value_at_same_time_wins(self):
        f = WindowedMinFilter(window=10)
        f.update(5, 10)
        assert f.update(5, 3) == 3

    def test_duplicates_then_aging_still_expires(self):
        f = WindowedMaxFilter(window=10)
        for _ in range(5):
            f.update(0, 100)
        for t in range(1, 25):
            f.update(t, 10)
        assert f.get() == 10


class TestClockSkewFault:
    """min-RTT robustness under the repro.faults clock-skew class.

    ``RttEstimator.update`` passes every sample through the
    ``cca.rtt.sample`` transform seam; the ``clock-skew`` fault class
    shifts numeric values by its param, modelling a telemetry clock that
    jumps mid-connection.
    """

    @staticmethod
    def _plan(param, hits=None):
        return FaultPlan(
            name="rtt-skew",
            rules=(
                rule(FAULT_CLOCK_SKEW, "cca.rtt.sample", hits=hits, param=param),
            ),
            seed=0,
        )

    def test_seam_is_identity_without_plan(self):
        assert inject.active() is None
        est = RttEstimator()
        est.update(0.05)
        assert est.latest == 0.05
        assert est.min_rtt == 0.05

    def test_min_rtt_survives_forward_skew(self):
        # Honest samples first, then the clock jumps forward by 500 ms:
        # every later sample reads inflated, but the running minimum
        # keeps the pre-skew floor.
        est = RttEstimator()
        est.update(0.05)
        est.update(0.048)
        with inject.active_plan(self._plan(param=0.5)):
            for _ in range(20):
                est.update(0.05)
        assert est.min_rtt == pytest.approx(0.048)
        # The smoothed estimate does chase the skewed samples — that is
        # the failure mode the running minimum is robust against.
        assert est.srtt > 0.2

    def test_backward_skew_cannot_fake_a_negative_sample(self):
        # A backward jump larger than the sample would produce a
        # non-positive RTT; the estimator rejects it as it rejects any
        # invalid sample, instead of poisoning min_rtt.
        est = RttEstimator()
        est.update(0.05)
        with inject.active_plan(self._plan(param=-1.0)):
            with pytest.raises(ValueError):
                est.update(0.05)
        assert est.min_rtt == pytest.approx(0.05)

    def test_skew_on_selected_hits_only(self):
        # hits=(1,) skews only the second sample seen at the site.
        est = RttEstimator()
        with inject.active_plan(self._plan(param=0.5, hits=(1,))):
            est.update(0.05)
            est.update(0.05)
            est.update(0.04)
        assert est.min_rtt == pytest.approx(0.04)
        assert est.rto() <= 60.0
