"""Application-driven CCA selection (envelope matching)."""

import numpy as np
import pytest

from repro.core.apps import (
    DesiredRegion,
    bulk_transfer_region,
    live_streaming_region,
    match_envelope,
    select_cca,
)
from repro.core.envelope import EnvelopeConfig, build_envelope


def envelope_at(delay_ms, tput_mbps, spread=1.0, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.normal((delay_ms, tput_mbps), spread, size=(80, 2))
    return build_envelope([points], EnvelopeConfig(k=1))


class TestDesiredRegion:
    def test_contains(self):
        region = DesiredRegion(max_delay_ms=50, min_throughput_mbps=5)
        pts = np.array([[40, 10], [60, 10], [40, 2]])
        assert region.contains(pts).tolist() == [True, False, False]

    def test_polygon_clamps_infinities(self):
        region = DesiredRegion(max_delay_ms=50, min_throughput_mbps=5)
        poly = region.polygon()
        assert poly.shape == (4, 2)
        assert poly[:, 0].max() == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            DesiredRegion(min_delay_ms=10, max_delay_ms=5).validate()
        with pytest.raises(ValueError):
            DesiredRegion(min_throughput_mbps=10, max_throughput_mbps=5).validate()

    def test_profiles(self):
        live = live_streaming_region(rtt_budget_ms=60, min_rate_mbps=3)
        bulk = bulk_transfer_region(min_rate_mbps=8)
        assert live.max_delay_ms == 60
        assert bulk.max_delay_ms == float("inf")


def test_match_envelope_inside_region():
    region = DesiredRegion(max_delay_ms=100, min_throughput_mbps=1)
    pe = envelope_at(delay_ms=50, tput_mbps=10)
    point_fraction, area_fraction = match_envelope(region, pe)
    assert point_fraction > 0.95
    assert area_fraction > 0.95


def test_match_envelope_outside_region():
    region = DesiredRegion(max_delay_ms=20)
    pe = envelope_at(delay_ms=80, tput_mbps=10)
    point_fraction, area_fraction = match_envelope(region, pe)
    assert point_fraction < 0.05
    assert area_fraction < 0.05


def test_select_cca_prefers_matching_envelope():
    """A latency-bound app prefers the low-delay envelope (the BBR-ish
    one); a bulk app prefers the high-throughput envelope."""
    low_delay = envelope_at(delay_ms=30, tput_mbps=8, seed=1)     # BBR-like
    high_tput = envelope_at(delay_ms=90, tput_mbps=12, seed=2)    # CUBIC-like
    candidates = {"bbr-like": low_delay, "cubic-like": high_tput}

    live = select_cca(live_streaming_region(60, 3), candidates)
    assert live[0].name == "bbr-like"

    bulk = select_cca(bulk_transfer_region(10), candidates)
    assert bulk[0].name == "cubic-like"


def test_select_cca_scores_ordered():
    candidates = {
        "a": envelope_at(50, 10, seed=1),
        "b": envelope_at(500, 10, seed=2),
    }
    scores = select_cca(DesiredRegion(max_delay_ms=100), candidates)
    assert scores[0].score >= scores[1].score


def test_select_cca_requires_candidates():
    with pytest.raises(ValueError):
        select_cca(DesiredRegion(), {})
