"""TopologySpec parsing, validation, and fingerprint identity."""

import json

import pytest

from repro.service.specs import SpecError, parse_campaign_spec
from repro.topo.spec import (
    SHAPES,
    FlowEntry,
    LinkEntry,
    TopologySpec,
    TopoSpecError,
    chain,
    dumbbell,
    load_topology_spec,
    parking_lot,
    parse_topology_spec,
)


def two_hop_payload(**overrides):
    payload = {
        "name": "two-hop",
        "links": [
            {"name": "access", "bandwidth_mbps": 24, "delay_ms": 5},
            {"name": "core", "bandwidth_mbps": 12, "delay_ms": 15,
             "queue_discipline": "codel"},
        ],
        "flows": [
            {"label": "f1", "stack": "linux", "cca": "cubic"},
            {"label": "f2", "stack": "quiche", "cca": "reno",
             "route": ["core"]},
        ],
        "start_spread_s": 0.25,
    }
    payload.update(overrides)
    return payload


class TestParsing:
    def test_round_trips_through_canonical(self):
        spec = parse_topology_spec(two_hop_payload())
        again = parse_topology_spec(spec.canonical())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_fingerprint_stable_across_key_order(self):
        payload = two_hop_payload()
        # Same document, every mapping's keys in reverse insertion order.
        def reorder(obj):
            if isinstance(obj, dict):
                return {k: reorder(obj[k]) for k in reversed(list(obj))}
            if isinstance(obj, list):
                return [reorder(v) for v in obj]
            return obj
        reordered = json.loads(json.dumps(reorder(payload)))
        assert list(reordered) != list(payload)
        assert (
            parse_topology_spec(reordered).fingerprint()
            == parse_topology_spec(payload).fingerprint()
        )

    def test_fingerprint_changes_with_content(self):
        base = parse_topology_spec(two_hop_payload())
        bumped = parse_topology_spec(
            two_hop_payload(start_spread_s=0.5)
        )
        assert base.fingerprint() != bumped.fingerprint()

    def test_unknown_fields_rejected(self):
        with pytest.raises(TopoSpecError, match="unknown"):
            parse_topology_spec(two_hop_payload(bogus=1))
        payload = two_hop_payload()
        payload["links"][0]["speed"] = 5
        with pytest.raises(TopoSpecError, match="speed"):
            parse_topology_spec(payload)
        payload = two_hop_payload()
        payload["flows"][0]["cwnd"] = 10
        with pytest.raises(TopoSpecError, match="cwnd"):
            parse_topology_spec(payload)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(two_hop_payload()))
        assert load_topology_spec(str(path)).name == "two-hop"
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(TopoSpecError, match="not valid JSON"):
            load_topology_spec(str(bad))


class TestValidation:
    def test_unroutable_route_rejected(self):
        payload = two_hop_payload()
        payload["flows"][1]["route"] = ["nowhere"]
        with pytest.raises(TopoSpecError, match="unroutable"):
            parse_topology_spec(payload)

    def test_cyclic_route_rejected(self):
        payload = two_hop_payload()
        payload["flows"][1]["route"] = ["core", "core"]
        with pytest.raises(TopoSpecError, match="cyclic"):
            parse_topology_spec(payload)
        payload = two_hop_payload()
        payload["flows"][1]["route"] = ["core", "access"]
        with pytest.raises(TopoSpecError, match="cyclic"):
            parse_topology_spec(payload)

    def test_duplicate_names_rejected(self):
        payload = two_hop_payload()
        payload["links"][1]["name"] = "access"
        with pytest.raises(TopoSpecError, match="duplicate"):
            parse_topology_spec(payload)
        payload = two_hop_payload()
        payload["flows"][1]["label"] = "f1"
        with pytest.raises(TopoSpecError, match="duplicate"):
            parse_topology_spec(payload)

    def test_unknown_implementations_rejected(self):
        with pytest.raises(TopoSpecError, match="unknown stack"):
            FlowEntry(label="f", stack="nope").validate(["l"])
        with pytest.raises(TopoSpecError, match="does not"):
            FlowEntry(label="f", stack="quiche", cca="bbr").validate(["l"])

    def test_unknown_discipline_rejected(self):
        with pytest.raises(TopoSpecError, match="queue discipline"):
            LinkEntry(name="l", queue_discipline="wfq").validate()

    def test_flow_lifetime_rejected(self):
        with pytest.raises(TopoSpecError, match="end_s"):
            FlowEntry(label="f", start_s=2.0, end_s=1.0).validate(["l"])

    def test_empty_topology_rejected(self):
        with pytest.raises(TopoSpecError, match="link"):
            TopologySpec(name="x", links=(), flows=(
                FlowEntry(label="f"),
            )).validate()
        with pytest.raises(TopoSpecError, match="flow"):
            TopologySpec(name="x", links=(LinkEntry(name="l"),),
                         flows=()).validate()


class TestBuiltinShapes:
    def test_all_shapes_validate_and_differ(self):
        prints = set()
        for name, builder in SHAPES.items():
            spec = builder("cubic")
            spec.validate()
            prints.add(spec.fingerprint())
        assert len(prints) == len(SHAPES)

    def test_shapes_pick_stacks_supporting_the_cca(self):
        # quiche has no bbr; the builders must substitute, not explode.
        for builder in (dumbbell, chain, parking_lot):
            spec = builder("bbr")
            spec.validate()
            assert all(f.cca == "bbr" for f in spec.flows)

    def test_parking_lot_routes(self):
        spec = parking_lot("cubic")
        long_flow = spec.flows[0]
        assert long_flow.resolved_route(spec.link_names()) == tuple(
            spec.link_names()
        )
        for cross in spec.flows[1:]:
            assert len(cross.route) == 1


class TestCampaignSpecIntegration:
    def test_topology_kind_requires_topologies(self):
        with pytest.raises(SpecError, match="topologies"):
            parse_campaign_spec({"kind": "topology"})

    def test_topology_kind_rejects_matrix_fields(self):
        with pytest.raises(SpecError, match="must be empty"):
            parse_campaign_spec({
                "kind": "topology",
                "stacks": ["linux"],
                "topologies": [dumbbell("cubic").canonical()],
            })

    def test_topologies_rejected_on_other_kinds(self):
        with pytest.raises(SpecError, match="only valid"):
            parse_campaign_spec({
                "kind": "matrix",
                "topologies": [dumbbell("cubic").canonical()],
            })

    def test_invalid_topology_is_a_spec_error(self):
        doc = dumbbell("cubic").canonical()
        doc["links"][0]["queue_discipline"] = "wfq"
        with pytest.raises(SpecError, match=r"topologies\[0\]"):
            parse_campaign_spec({"kind": "topology", "topologies": [doc]})

    def test_campaign_canonical_round_trips(self):
        # The scheduler journals canonical() and resumes by re-parsing it.
        spec = parse_campaign_spec({
            "kind": "topology",
            "topologies": [dumbbell("cubic").canonical(),
                           chain("reno").canonical()],
            "duration_s": 4.0,
            "trials": 2,
            "run": "t",
        })
        again = parse_campaign_spec(spec.canonical())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_existing_kinds_keep_their_fingerprint(self):
        # The topologies field must not leak into non-topology canonical
        # docs, or every journaled campaign would re-fingerprint.
        spec = parse_campaign_spec({
            "kind": "matrix",
            "stacks": ["quiche"],
            "ccas": ["cubic"],
        })
        assert "topologies" not in spec.canonical()
