"""End-to-end CLI: a tiny campaign with --store, then query/diff it back.

This is the workflow the README documents: measure once into a
warehouse, then answer questions from the file without re-simulating.
"""

import json

import pytest

from repro.cli import main
from repro.harness.cache import CACHE_DIR_ENV
from repro.store import ResultStore

CAMPAIGN = [
    "regression", "--stack", "xquic", "--cca", "cubic",
    "--duration", "6", "--trials", "2",
]


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    """One tiny campaign, shared read-only by every test in the module."""
    root = tmp_path_factory.mktemp("cli-store")
    path = str(root / "store.db")
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv(CACHE_DIR_ENV, str(root / "cache"))
        assert main(CAMPAIGN + ["--store", path]) == 0
    return path


def test_campaign_populates_milestone_runs(db):
    with ResultStore(db) as store:
        names = {r.name for r in store.runs()}
        assert {"regression:5.13-stock", "regression:pre-hystart"} <= names
        assert store.counts()["trials"] > 0


def test_store_runs_and_query(db, capsys):
    assert main(["store", "runs", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "regression:5.13-stock" in out and "totals:" in out

    assert main(
        ["store", "query", "--db", db, "--metric", "conf", "--format", "csv"]
    ) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0].startswith("run,stack,cca")
    assert len(lines) == 3  # header + one conf row per milestone
    assert all("xquic,cubic" in line for line in lines[1:])


def test_store_query_json_to_file(db, capsys, tmp_path):
    out_path = tmp_path / "q.json"
    assert main(
        ["store", "query", "--db", db, "--metric", "conf",
         "--format", "json", "--out", str(out_path)]
    ) == 0
    rows = json.loads(out_path.read_text())
    assert {row["metric"] for row in rows} == {"conf"}
    assert {row["stack"] for row in rows} == {"xquic"}


def test_store_diff_reports_the_hystart_flip(db, capsys):
    code = main(
        ["store", "diff", "--db", db,
         "--run-a", "regression:5.13-stock",
         "--run-b", "regression:pre-hystart",
         "--fail-on-flips"]
    )
    out = capsys.readouterr().out
    # xquic's cubic lacks HyStart: non-conformant against the stock
    # kernel, conformant against the pre-HyStart milestone.
    assert "FLIP xquic/cubic" in out
    assert code == 1  # --fail-on-flips makes the flip a CI failure

    code = main(
        ["store", "diff", "--db", db,
         "--run-a", "regression:5.13-stock",
         "--run-b", "regression:5.13-stock"]
    )
    assert code == 0
    assert "no differences" in capsys.readouterr().out


def test_store_baseline_workflow(db, capsys):
    assert main(
        ["store", "baseline", "--db", db,
         "--set", "anchor", "--run", "regression:5.13-stock"]
    ) == 0
    assert main(["store", "baseline", "--db", db]) == 0
    assert "anchor: regression:5.13-stock" in capsys.readouterr().out
    code = main(
        ["store", "diff", "--db", db, "--baseline", "anchor",
         "--run-b", "regression:pre-hystart", "--fail-on-flips"]
    )
    assert code == 1


def test_regression_from_store_skips_recompute(db, capsys):
    # No simulation happens here: the matrix is rebuilt from the
    # warehouse, so the verdict table matches the original campaign.
    assert main(["regression", "--from-store", "--store", db]) == 0
    out = capsys.readouterr().out
    assert "xquic" in out and "FLIPS" in out

    assert main(["regression", "--from-store"]) == 2
    assert "requires --store" in capsys.readouterr().err


def test_store_render_writes_svg(db, tmp_path, capsys):
    svg = tmp_path / "heat.svg"
    assert main(
        ["store", "render", "--db", db,
         "--run", "regression:5.13-stock", "--out", str(svg)]
    ) == 0
    assert svg.read_text().startswith("<svg")


def test_store_ingest_manifest_roundtrip(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    manifest = tmp_path / "run.jsonl"
    db = str(tmp_path / "fresh.db")
    assert main(CAMPAIGN + ["--manifest", str(manifest)]) == 0
    assert main(
        ["store", "ingest", "--db", db,
         "--manifest", str(manifest), "--cache-dir", str(tmp_path / "cache"),
         "--run", "imported"]
    ) == 0
    out = capsys.readouterr().out
    assert "ingested:" in out
    with ResultStore(db) as store:
        assert store.counts()["trials"] > 0
        assert any(r.name.startswith("imported:") for r in store.runs())


def test_store_ingest_with_nothing_to_do_errors(tmp_path, capsys):
    assert main(["store", "ingest", "--db", str(tmp_path / "x.db")]) == 2


def test_diff_requires_a_comparison_anchor(tmp_path, capsys):
    db = str(tmp_path / "empty.db")
    ResultStore(db).close()
    assert main(["store", "diff", "--db", db, "--run-b", "b"]) == 2
    assert "needs --run-a or --baseline" in capsys.readouterr().err


def test_store_gc_dry_run_then_purge(tmp_path, capsys):
    import numpy as np

    db = str(tmp_path / "gc.db")
    with ResultStore(db) as store:
        run = store.ensure_run("kept")
        store.put_trials([("linked", np.arange(4.0))], run=run)
        store.put_trials([("orphan", np.zeros(128))])  # no run links it

    assert main(["store", "gc", "--db", db, "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would purge 1 of 2 trials" in out
    with ResultStore(db) as store:
        assert store.counts()["trials"] == 2  # dry run touched nothing

    assert main(["store", "gc", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "purged 1 of 2 trials" in out
    assert "vacuumed:" in out
    with ResultStore(db) as store:
        assert store.counts()["trials"] == 1
        assert store.get_trial("linked") is not None
