"""CLI extension subcommands (rootcause/regression/select/qlog)."""

import pytest

from repro.cli import build_parser, main


def test_new_subcommands_listed():
    text = build_parser().format_help()
    for sub in ("rootcause", "regression", "select", "qlog"):
        assert sub in text


def test_qlog_export(tmp_path, capsys):
    out = tmp_path / "flow.qlog"
    code = main(
        [
            "qlog", "--stack", "quicgo", "--cca", "cubic", "--out", str(out),
            "--bandwidth", "10", "--rtt", "20", "--duration", "6",
        ]
    )
    assert code == 0
    assert out.exists()
    from repro.netsim.qlog import load_qlog

    summary = load_qlog(str(out))
    assert summary.packets_received > 100


def test_select_command(capsys):
    code = main(
        [
            "select", "--max-delay", "60", "--min-tput", "2",
            "--bandwidth", "10", "--rtt", "20", "--duration", "8", "--trials", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "best match" in out


def test_rootcause_requires_stack():
    with pytest.raises(SystemExit):
        main(["rootcause"])


def test_select_requires_delay_budget():
    with pytest.raises(SystemExit):
        main(["select"])
