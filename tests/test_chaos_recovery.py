"""Crash-recovery integration: real SIGKILLs, bit-identical recovery.

Two process-boundary scenarios the fault injector cannot fully fake:

* a worker process SIGKILLed mid-trial (the OOM-killer scenario) — the
  executor must retry on a fresh worker and the warehouse must end up
  bit-identical to an uninterrupted run;
* the whole service process SIGKILLed mid-campaign — a restarted service
  must ``resume_pending`` from the journal and finish the campaign with
  a store bit-identical to one that was never interrupted.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exec import Executor, Job
from repro.faults.breaker import reset_breakers
from repro.faults.retry import RetryPolicy
from repro.harness.cache import CACHE_DIR_ENV
from repro.service.client import ServiceClient
from repro.store import ResultStore, StoreCache, ingest_manifest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _fresh_breakers():
    reset_breakers()
    yield
    reset_breakers()


# --------------------------------------------------------------- job fns
# Module-level so they pickle under the spawn start method.


def _deterministic_payload(x: float) -> np.ndarray:
    return np.sin(np.arange(64, dtype=np.float64) * x)


def _sigkill_once_then(marker: str, x: float, cache=None) -> np.ndarray:
    """SIGKILL our own process the first time; compute normally after."""
    path = Path(marker)
    if not path.exists():
        path.write_text("killed")
        time.sleep(0.2)  # let the "start" report flush to the parent
        os.kill(os.getpid(), signal.SIGKILL)
    return _deterministic_payload(x)


def _compute(x: float, cache=None) -> np.ndarray:
    return _deterministic_payload(x)


class TestWorkerSigkill:
    def test_sigkilled_worker_recovers_bit_identical(self, tmp_path):
        jobs = 3
        marker = tmp_path / "kill-once"

        def joblist(fn, extra=()):
            out = []
            for n in range(jobs):
                args = tuple(extra) + (0.1 + n,)
                out.append(Job(fn=fn, args=args, key=f"trial-{n}"))
            return out

        # Interrupted run: the first attempt of the first job takes a
        # real SIGKILL mid-trial; the pool replaces the worker and
        # retries.  Results flow into a warehouse via the store sink.
        faulted_db = tmp_path / "faulted.db"
        with ResultStore(faulted_db) as store:
            cache = StoreCache(store, directory=tmp_path / "faulted-cache")
            with Executor(
                jobs=2,
                cache=cache,
                retry=RetryPolicy(max_attempts=3, backoff_s=0.01),
                store=store,
                store_run="recovery",
                manifest_path=tmp_path / "manifest.jsonl",
            ) as executor:
                values = executor.run(
                    joblist(_sigkill_once_then, extra=(str(marker),)),
                    campaign="sigkill-worker",
                )
        assert marker.exists()  # the kill really happened
        assert any(r.retried for r in executor.last_records)
        assert all(r.status == "ok" for r in executor.last_records)

        # Uninterrupted run into a fresh warehouse.
        clean_db = tmp_path / "clean.db"
        with ResultStore(clean_db) as store:
            cache = StoreCache(store, directory=tmp_path / "clean-cache")
            with Executor(jobs=1, cache=cache, store=store,
                          store_run="recovery") as executor:
                clean_values = executor.run(
                    joblist(_compute), campaign="clean"
                )

        for a, b in zip(values, clean_values):
            assert a.tobytes() == b.tobytes()
        with ResultStore(faulted_db) as fa, ResultStore(clean_db) as cl:
            assert fa.trial_keys() == cl.trial_keys()
            for key in cl.trial_keys():
                a = fa.get_trial(key, strict=True)
                b = cl.get_trial(key, strict=True)
                assert a.dtype == b.dtype and a.tobytes() == b.tobytes()

    def test_manifest_of_killed_campaign_ingests(self, tmp_path):
        marker = tmp_path / "kill-once"
        with Executor(
            jobs=2,
            cache=StoreCache(
                ResultStore(tmp_path / "s.db"),
                directory=tmp_path / "cache",
            ),
            retry=RetryPolicy(max_attempts=3, backoff_s=0.01),
            manifest_path=tmp_path / "manifest.jsonl",
        ) as executor:
            executor.run(
                [Job(fn=_sigkill_once_then, args=(str(marker), 0.5), key="k")],
                campaign="killed",
            )
        with ResultStore(tmp_path / "ingest.db") as scratch:
            report = ingest_manifest(scratch, tmp_path / "manifest.jsonl")
        assert report.events >= 3  # start, job, end all readable


# ---------------------------------------------------------------- service


# Sized so the campaign takes several seconds of wall clock: the SIGKILL
# below must land while trials are genuinely in flight, not after the
# campaign already drained.
SPEC = {
    "kind": "matrix",
    "stacks": ["quiche"],
    "ccas": ["cubic"],
    "conditions": [{"bandwidth_mbps": 8, "rtt_ms": 20, "buffer_bdp": 0.6}],
    "duration_s": 60,
    "trials": 2,
    "run": "sigkill-service",
}


def _boot_serve(db: Path, cache_dir: Path):
    env = dict(
        os.environ,
        PYTHONPATH=str(ROOT / "src"),
        PYTHONUNBUFFERED="1",
        **{CACHE_DIR_ENV: str(cache_dir)},
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", str(db),
         "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"serve exited early (code {proc.poll()}) before listening"
            )
        if "listening on " in line:
            return proc, line.split("listening on ", 1)[1].split()[0]
    proc.kill()
    raise RuntimeError("serve never printed its listening line")


def _wait_done(client: ServiceClient, campaign_id: str, timeout_s: float) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        snapshot = client.status(campaign_id)
        if snapshot["state"] in ("done", "failed", "cancelled"):
            return snapshot
        time.sleep(0.25)
    raise AssertionError(f"campaign {campaign_id} never finished")


def _store_snapshot(db: Path) -> dict:
    with ResultStore(db) as store:
        return {
            key: store.get_trial(key, strict=True).tobytes()
            for key in store.trial_keys()
        }


class TestServiceSigkill:
    def test_sigkilled_service_resumes_and_matches_clean_run(self, tmp_path):
        # Clean reference: the same campaign run to completion without
        # interruption, in its own warehouse.
        clean_db = tmp_path / "clean.db"
        proc, url = _boot_serve(clean_db, tmp_path / "clean-cache")
        try:
            client = ServiceClient(url)
            accepted = client.submit(SPEC)
            final = _wait_done(client, accepted["id"], timeout_s=300.0)
            assert final["state"] == "done"
        finally:
            proc.kill()
            proc.wait(timeout=10)
        clean = _store_snapshot(clean_db)
        assert clean  # the campaign stored trials

        # Interrupted run: SIGKILL the whole service while the campaign
        # is running — no drain, no journal flush, nothing graceful.
        db = tmp_path / "killed.db"
        proc, url = _boot_serve(db, tmp_path / "killed-cache")
        killed_mid_flight = False
        try:
            client = ServiceClient(url)
            accepted = client.submit(SPEC)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if client.status(accepted["id"])["state"] == "running":
                    killed_mid_flight = True
                    break
                time.sleep(0.05)
            time.sleep(0.5)  # let trials actually start computing
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        assert killed_mid_flight

        # The campaign must not be done yet: the kill landed mid-run.
        with ResultStore(db) as store:
            events = [
                e["event"] for e in store.events(campaign=accepted["id"])
            ]
        assert "service_submitted" in events
        assert "service_done" not in events

        # Restart on the same warehouse: resume_pending re-queues the
        # journaled campaign and runs it to completion.
        proc, url = _boot_serve(db, tmp_path / "killed-cache")
        try:
            client = ServiceClient(url)
            final = _wait_done(client, accepted["id"], timeout_s=300.0)
            assert final["state"] == "done"
        finally:
            proc.terminate()
            proc.wait(timeout=30)

        recovered = _store_snapshot(db)
        assert recovered == clean  # bit-identical reconstruction
