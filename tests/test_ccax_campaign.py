"""Peer-conformance campaigns: spec wiring, trial identity, cache discipline.

The acceptance bar for the ``peer_conformance`` kind: trials share the
harness's content-addressed identity (so reruns and resubmissions are
fully cache-served), results are bit-identical at any executor job
count, and the spec layer rejects malformed peer groups at submit time.
"""

import numpy as np
import pytest

from repro.ccax.campaign import (
    DEFAULT_HOST_STACK,
    compute_peer_trial,
    evaluate_peer_group,
    peer_trial_identity,
    peer_trial_jobs,
    record_peer_result,
)
from repro.harness import scenarios
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig
from repro.harness.runner import Impl, trial_identity
from repro.service.specs import SpecError, execute_campaign, parse_campaign_spec
from repro.store import ResultStore

#: Small enough to keep the module fast, long enough for distinct PEs.
FAST = {"duration_s": 4, "trials": 2, "seed": 0}
CONDITION = {"bandwidth_mbps": 8, "rtt_ms": 20, "buffer_bdp": 0.6}
PEERS = ["bbr3", "cubic", "gcc"]


def peer_payload(**overrides):
    payload = {
        "kind": "peer_conformance",
        "peers": list(PEERS),
        "conditions": [dict(CONDITION)],
        **FAST,
        "run": "peer-test",
    }
    payload.update(overrides)
    return payload


class TestSpec:
    def test_parse_and_implementations(self):
        spec = parse_campaign_spec(peer_payload())
        assert spec.kind == "peer_conformance"
        assert spec.peers == tuple(PEERS)
        # Each peer is one implementation on the neutral host stack.
        assert spec.implementations() == [
            (DEFAULT_HOST_STACK, peer) for peer in PEERS
        ]
        explicit = parse_campaign_spec(peer_payload(host_stack="linux"))
        assert explicit.host_stack == "linux"

    def test_canonical_round_trip(self):
        spec = parse_campaign_spec(peer_payload(host_stack="linux"))
        again = parse_campaign_spec(spec.canonical())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_old_kinds_unaffected_by_new_fields(self):
        # Fingerprint stability: a spec of any pre-existing kind must
        # not grow peers/host_stack/cca_modules keys in its canonical
        # form, or every journaled fingerprint would shift.
        doc = parse_campaign_spec({"kind": "conformance"}).canonical()
        assert "peers" not in doc
        assert "host_stack" not in doc
        assert "cca_modules" not in doc

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"kind": "matrix", "peers": ["cubic"]}, "only valid for"),
            ({"kind": "conformance", "host_stack": "linux"}, "only valid for"),
            ({"kind": "matrix", "cca_modules": ["x.py"]}, "only valid for"),
            ({"kind": "peer_conformance"}, "non-empty spec.peers"),
            (peer_payload(peers=["bbr3", "bbr3"]), "duplicate"),
            (peer_payload(peers=["bbr3", "vegas"]), "unknown peer cca"),
            (peer_payload(host_stack="nosuch"), "unknown host_stack"),
            (peer_payload(stacks=["quiche"]), "must be empty"),
            (peer_payload(ccas=["cubic"]), "must be empty"),
            (peer_payload(cca_modules=["/does/not/exist.py"]),
             "failed to load"),
        ],
    )
    def test_bad_peer_specs_fail_at_submit_time(self, payload, fragment):
        with pytest.raises(SpecError) as err:
            parse_campaign_spec(payload)
        assert fragment in str(err.value)

    def test_host_must_support_every_peer(self):
        # The kernel trio's hosting decisions are per-stack deviation
        # tables; a registry-fallback-only stack cannot host them unless
        # its own table says so.  Find a stack without cubic support.
        from repro.stacks import registry as stacks

        non_hosts = [
            name
            for name, profile in stacks.STACKS.items()
            if not profile.supports("cubic")
        ]
        if not non_hosts:  # pragma: no cover - registry-dependent
            pytest.skip("every stack hosts cubic")
        with pytest.raises(SpecError, match="does not host"):
            parse_campaign_spec(
                peer_payload(peers=["cubic"], host_stack=non_hosts[0])
            )


class TestTrialIdentity:
    def test_peer_trial_is_a_self_pair_trial(self):
        condition = scenarios.shallow_buffer()
        config = ExperimentConfig(duration_s=4.0, trials=2)
        impl = Impl("linux", "bbr3")
        for trial in range(2):
            assert peer_trial_identity(
                "linux", "bbr3", condition, config, trial
            ) == trial_identity(impl, impl, condition, config, trial)

    def test_jobs_carry_content_addressed_keys(self):
        condition = scenarios.shallow_buffer()
        config = ExperimentConfig(duration_s=4.0, trials=2)
        jobs = peer_trial_jobs(["bbr3", "gcc"], condition, config)
        assert len(jobs) == 4
        keys = [j.key for j in jobs]
        assert len(set(keys)) == 4
        _, expected = peer_trial_identity(
            DEFAULT_HOST_STACK, "bbr3", condition, config, 0
        )
        assert keys[0] == expected


class TestCampaign:
    def test_serial_campaign_records_share_matrix_rows(self, tmp_path):
        spec = parse_campaign_spec(peer_payload())
        with ResultStore(str(tmp_path / "store.db")) as store:
            summary = execute_campaign(spec, store, None)
            rows = list(store.query(run="peer-test"))
        assert summary["runs"] == ["peer-test"]
        # 3 peers: 6 off-diagonal pair cells + 3 aggregate cells.
        assert summary["cells"] == 9
        group = summary["peer_conformance"][0]
        assert sorted(group["peers"]) == sorted(PEERS)
        assert 1 <= group["k"] <= len(PEERS)

        pair_rows = [r for r in rows if r.variant == "peer"]
        agg_rows = [r for r in rows if r.cca == "aggregate"]
        assert {r.metric for r in pair_rows} == {"peer_conf", "peer_distance"}
        assert {r.metric for r in agg_rows} == {"peer_score", "cluster", "k"}
        # Row peer in `stack`, column peer in `cca`, symmetric values.
        conf = {
            (r.stack, r.cca): r.value
            for r in pair_rows
            if r.metric == "peer_conf"
        }
        for (a, b), value in conf.items():
            assert conf[(b, a)] == value
            assert 0.0 <= value <= 1.0

    def test_resubmission_is_fully_cache_served(self, tmp_path, monkeypatch):
        from repro.harness.cache import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        # Unique protocol so no earlier test pre-warmed these keys.
        payload = peer_payload(duration_s=4.5, run="peer-cached")
        spec = parse_campaign_spec(payload)
        with ResultStore(str(tmp_path / "first.db")) as store:
            first = execute_campaign(spec, store, None)

        # Every simulation from here on is a bug: the identical spec
        # must be served entirely by content-addressed cache keys.
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("run_pair called on a cache-served rerun")

        monkeypatch.setattr("repro.harness.runner.run_pair", boom)
        respec = parse_campaign_spec(payload)
        with ResultStore(str(tmp_path / "second.db")) as store:
            second = execute_campaign(respec, store, None)
        assert second["peer_conformance"] == first["peer_conformance"]

    def test_bit_identical_across_job_counts(self, tmp_path):
        spec = parse_campaign_spec(peer_payload(peers=["bbr3", "gcc"]))
        from repro.exec import Executor

        summaries = []
        for jobs in (1, 3):
            cache = ResultCache(directory=tmp_path / f"cache-{jobs}")
            with ResultStore(str(tmp_path / f"store-{jobs}.db")) as store:
                executor = Executor(jobs=jobs, cache=cache)
                try:
                    summaries.append(execute_campaign(spec, store, executor))
                finally:
                    executor.close()
        assert summaries[0]["peer_conformance"] == summaries[1]["peer_conformance"]
        assert summaries[0]["cells"] == summaries[1]["cells"]


class TestEvaluateAndRecord:
    def test_evaluate_peer_group_serial_matches_executor_path(self, tmp_path):
        condition = scenarios.shallow_buffer()
        config = ExperimentConfig(duration_s=4.0, trials=2)
        serial = evaluate_peer_group(
            ["bbr3", "gcc"],
            condition,
            config,
            cache=ResultCache(directory=tmp_path / "serial"),
        )
        from repro.exec import Executor

        executor = Executor(jobs=1, cache=ResultCache(directory=tmp_path / "ex"))
        try:
            pooled = evaluate_peer_group(
                ["bbr3", "gcc"], condition, config, executor=executor
            )
        finally:
            executor.close()
        assert np.array_equal(serial.matrix, pooled.matrix)
        assert np.array_equal(serial.labels, pooled.labels)
        assert serial.summary() == pooled.summary()

    def test_compute_peer_trial_caches(self, tmp_path):
        condition = scenarios.shallow_buffer()
        config = ExperimentConfig(duration_s=4.0, trials=1)
        cache = ResultCache(directory=tmp_path / "cache")
        first = compute_peer_trial(
            "linux", "gcc", condition, config, 0, cache=cache
        )
        hits_before = cache.hits
        again = compute_peer_trial(
            "linux", "gcc", condition, config, 0, cache=cache
        )
        assert cache.hits == hits_before + 1
        assert np.array_equal(first, again)

    def test_record_peer_result_cell_count(self, tmp_path):
        condition = scenarios.shallow_buffer()
        config = ExperimentConfig(duration_s=4.0, trials=2)
        result = evaluate_peer_group(
            ["bbr3", "gcc"],
            condition,
            config,
            cache=ResultCache(directory=tmp_path / "cache"),
        )
        with ResultStore(str(tmp_path / "store.db")) as store:
            run = store.ensure_run("rec")
            cells = record_peer_result(store, run, result, condition)
            rows = list(store.query(run="rec"))
        # n peers: n*(n-1) pair cells + n aggregate cells.
        assert cells == 2 * 1 + 2
        assert len(rows) == 2 * 2 + 3 * 2  # 2 metrics/pair row, 3/agg row
