"""qlog export and AQM queue disciplines."""

import pytest

from repro.netsim.aqm import CoDelQueue, REDQueue, make_queue
from repro.netsim.link import DropTailQueue
from repro.netsim.packet import Packet
from repro.netsim.qlog import load_qlog, trace_to_qlog, write_qlog
from repro.netsim.trace import FlowTrace


def make_trace():
    trace = FlowTrace(0, label="flow")
    for i in range(5):
        trace.on_delivery(0.1 * i, 0.1 * i - 0.02, i, 1200, i == 3)
    trace.on_loss(0.25, 9)
    trace.on_cwnd(0.0, 14480)
    trace.on_cwnd(0.2, 28960)
    trace.on_rate(0.1, 2.5e6)
    return trace


class TestQlog:
    def test_document_structure(self):
        doc = trace_to_qlog(make_trace())
        assert doc["qlog_version"]
        events = doc["traces"][0]["events"]
        names = {e["name"] for e in events}
        assert "transport:packet_received" in names
        assert "recovery:packet_lost" in names
        assert "recovery:metrics_updated" in names
        times = [e["time"] for e in events]
        assert times == sorted(times)

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "flow.qlog")
        write_qlog(make_trace(), path, title="t")
        summary = load_qlog(path)
        assert summary.title == "t"
        assert summary.packets_received == 5
        assert summary.packets_lost == 1
        assert summary.cwnd_updates == 2
        assert 0 < summary.loss_rate < 1

    def test_pacing_rate_in_bits(self):
        doc = trace_to_qlog(make_trace())
        rates = [
            e["data"]["pacing_rate"]
            for e in doc["traces"][0]["events"]
            if "pacing_rate" in e.get("data", {})
        ]
        assert rates == [int(2.5e6 * 8)]

    def test_load_rejects_non_qlog(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_qlog(str(path))


def pkt(seq=0, size=1000):
    return Packet(flow_id=0, seq=seq, size=size, sent_time=0.0)


class TestRED:
    def test_no_early_drops_when_queue_short(self):
        q = REDQueue(100_000)
        for i in range(5):
            assert q.offer(pkt(i))
        assert q.early_drops == 0

    def test_early_drops_appear_under_sustained_load(self):
        q = REDQueue(20_000, max_p=0.5)
        accepted = 0
        for i in range(2000):
            if q.offer(pkt(i)):
                accepted += 1
                if len(q) > 10:
                    q.pop()
        assert q.early_drops > 0
        assert accepted > 0

    def test_hard_drop_at_capacity(self):
        q = REDQueue(2000)
        q.offer(pkt(0))
        q.offer(pkt(1))
        assert not q.offer(pkt(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            REDQueue(0)
        with pytest.raises(ValueError):
            REDQueue(1000, min_thresh_fraction=0.8, max_thresh_fraction=0.5)
        with pytest.raises(ValueError):
            REDQueue(1000, max_p=0)


class TestCoDel:
    def test_passes_packets_under_low_delay(self):
        now = [0.0]
        q = CoDelQueue(100_000, clock=lambda: now[0])
        q.offer(pkt(0))
        now[0] += 0.001  # sojourn below target
        assert q.pop().seq == 0
        assert q.early_drops == 0

    def test_drops_when_sojourn_stays_above_target(self):
        now = [0.0]
        q = CoDelQueue(1_000_000, clock=lambda: now[0])
        # Sustained standing queue: enqueue faster than dequeue.
        seq = 0
        for step in range(400):
            for _ in range(3):
                q.offer(pkt(seq))
                seq += 1
            now[0] += 0.01
            q.pop()
        assert q.early_drops > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoDelQueue(0, clock=lambda: 0.0)
        with pytest.raises(ValueError):
            CoDelQueue(1000, clock=lambda: 0.0, target_s=0)


class TestFactory:
    def test_disciplines(self):
        assert isinstance(make_queue("droptail", 1000, lambda: 0.0), DropTailQueue)
        assert isinstance(make_queue("red", 1000, lambda: 0.0), REDQueue)
        assert isinstance(make_queue("codel", 1000, lambda: 0.0), CoDelQueue)
        with pytest.raises(ValueError):
            make_queue("fq", 1000, lambda: 0.0)

    def test_network_runs_with_each_discipline(self):
        from repro.cca import NewReno
        from repro.netsim.network import FlowSpec, LinkConfig, run_flows

        for discipline in ("droptail", "red", "codel"):
            link = LinkConfig(
                bandwidth_bps=10e6, rtt_s=0.02, buffer_bdp=1.0,
                queue_discipline=discipline,
            )
            results = run_flows(
                link, [FlowSpec(label="a", cca_factory=lambda: NewReno(1448))],
                duration=5.0, seed=1,
            )
            assert results[0].mean_throughput_bps > 5e6, discipline

    def test_invalid_discipline_in_config(self):
        from repro.netsim.network import LinkConfig

        with pytest.raises(ValueError):
            LinkConfig(queue_discipline="fq").validate()
