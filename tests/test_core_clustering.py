"""k-means, cluster matching, and the IOU k-selection rule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import KMeansResult, kmeans, match_clusters, select_k


def two_blobs(n=50, separation=10.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((0, 0), 0.5, size=(n, 2))
    b = rng.normal((separation, separation), 0.5, size=(n, 2))
    return np.vstack([a, b])


class TestKMeans:
    def test_separates_two_blobs(self):
        pts = two_blobs()
        result = kmeans(pts, 2, seed=1)
        labels_a = set(result.labels[:50])
        labels_b = set(result.labels[50:])
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_k_one_groups_everything(self):
        pts = two_blobs()
        result = kmeans(pts, 1)
        assert (result.labels == 0).all()

    def test_labels_partition_points(self):
        pts = two_blobs()
        result = kmeans(pts, 3, seed=2)
        assert len(result.labels) == len(pts)
        assert set(result.labels) <= {0, 1, 2}

    def test_k_capped_at_n(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(pts, 5)
        assert result.k == 2

    def test_deterministic_per_seed(self):
        pts = two_blobs(seed=3)
        a = kmeans(pts, 2, seed=7)
        b = kmeans(pts, 2, seed=7)
        assert (a.labels == b.labels).all()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)
        with pytest.raises(ValueError):
            kmeans(two_blobs(), 0)

    @given(st.integers(1, 5), st.integers(6, 30))
    @settings(max_examples=30, deadline=None)
    def test_inertia_non_increasing_in_k(self, k, n):
        rng = np.random.default_rng(n)
        pts = rng.normal(size=(n, 2))
        inertias = [kmeans(pts, kk, seed=0).inertia for kk in range(1, k + 1)]
        for earlier, later in zip(inertias, inertias[1:]):
            assert later <= earlier + 1e-6

    def test_cluster_points_accessor(self):
        pts = two_blobs()
        result = kmeans(pts, 2, seed=1)
        total = sum(len(result.cluster_points(pts, j)) for j in range(2))
        assert total == len(pts)


class TestMatchClusters:
    def test_identity_match(self):
        cents = np.array([[0.0, 0.0], [10.0, 10.0]])
        mapping = match_clusters(cents, cents)
        assert mapping.tolist() == [0, 1]

    def test_permuted_match(self):
        ref = np.array([[0.0, 0.0], [10.0, 10.0], [20.0, 0.0]])
        other = ref[[2, 0, 1]]
        mapping = match_clusters(ref, other)
        assert mapping.tolist() == [1, 2, 0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            match_clusters(np.zeros((2, 2)), np.zeros((3, 2)))


class TestSelectK:
    def test_steepest_drop_selected(self):
        retention = {1: 0.95, 2: 0.93, 3: 0.50, 4: 0.45, 5: 0.40}
        selection = select_k(lambda k: retention[k], k_max=5)
        assert selection.k == 2  # drop is between 2 and 3

    def test_flat_curve_prefers_one(self):
        selection = select_k(lambda k: 0.9, k_max=5)
        assert selection.k == 1

    def test_min_retention_guard(self):
        retention = {1: 0.9, 2: 0.02, 3: 0.01, 4: 0.0}
        selection = select_k(lambda k: retention[k], k_max=4, min_retention=0.05)
        assert selection.k == 1

    def test_k_max_one(self):
        selection = select_k(lambda k: 0.9, k_max=1)
        assert selection.k == 1
        assert len(selection.retention) == 1

    def test_invalid_k_max(self):
        with pytest.raises(ValueError):
            select_k(lambda k: 1.0, k_max=0)

    def test_retention_curve_recorded(self):
        selection = select_k(lambda k: 1.0 / k, k_max=4)
        assert selection.retention.tolist() == pytest.approx([1.0, 0.5, 1 / 3, 0.25])
