"""Coordinator: distributed campaigns vs the single-process scheduler.

The acceptance bar for the fabric is bit-identity: a campaign routed
through the coordinator and leased workers must land in the store
byte-for-byte equal to the same campaign run by the in-process
scheduler.  These tests prove that, plus the drain/shutdown and
lease-expiry races the distributed path introduces.
"""

import threading
import time

import pytest

from repro.fabric.coordinator import Coordinator
from repro.fabric.queue import QuotaExceeded, WorkQueue
from repro.harness.cache import CACHE_DIR_ENV
from repro.service.scheduler import DONE, TERMINAL_STATES, Scheduler
from repro.service.specs import parse_campaign_spec
from repro.store import ResultStore

TINY = {
    "kind": "conformance",
    "stacks": ["xquic"],
    "ccas": ["cubic"],
    "duration_s": 3,
    "trials": 2,
    "run": "fabric-test",
}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))


def snapshots(path):
    """Every trial payload in the store, as raw comparable bytes."""
    with ResultStore(path) as store:
        return {
            key: store.get_trial(key).tobytes()
            for key in store.trial_keys()
        }


def run_fabric(coordinator, spec, workers=1, timeout=120.0):
    """Submit through the coordinator and drain it with local workers."""
    from repro.fabric.worker import FabricWorker, LocalTransport

    job = coordinator.submit(parse_campaign_spec(spec))
    fleet = [
        FabricWorker(
            LocalTransport(coordinator),
            name=f"test-w{i}",
            store_path=coordinator.store_path,
            poll_s=0.05,
            ttl_s=5.0,
        )
        for i in range(workers)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in fleet]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if coordinator.job(job.id).state in TERMINAL_STATES:
            break
        time.sleep(0.05)
    for worker in fleet:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10.0)
    return coordinator.job(job.id)


def test_fabric_campaign_matches_single_process(tmp_path):
    single = Scheduler(str(tmp_path / "single.db"), workers=1)
    job = single.submit(parse_campaign_spec(TINY))
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if single.job(job.id).state in TERMINAL_STATES:
            break
        time.sleep(0.05)
    single.shutdown(drain=True)
    reference = snapshots(tmp_path / "single.db")
    assert reference

    coordinator = Coordinator(str(tmp_path / "fabric.db"))
    try:
        finished = run_fabric(coordinator, TINY, workers=2)
        assert finished.state == DONE
        assert snapshots(tmp_path / "fabric.db") == reference
    finally:
        coordinator.shutdown(drain=False)


def test_identical_resubmission_dedupes(tmp_path):
    coordinator = Coordinator(str(tmp_path / "fabric.db"))
    try:
        first = run_fabric(coordinator, TINY)
        assert first.state == DONE
        before = snapshots(tmp_path / "fabric.db")
        second = run_fabric(coordinator, TINY)
        assert second.state == DONE
        assert second.id != first.id
        # Content-addressed identity: the rerun adds zero trial rows.
        assert snapshots(tmp_path / "fabric.db") == before
    finally:
        coordinator.shutdown(drain=False)


def test_lease_expiry_hands_campaign_to_next_worker(tmp_path):
    """A worker that leases and dies silently must not wedge the queue:
    the lease expires and a live worker reruns the campaign to done."""
    coordinator = Coordinator(
        str(tmp_path / "fabric.db"), lease_ttl_s=0.3, max_attempts=5
    )
    try:
        job = coordinator.submit(parse_campaign_spec(TINY))
        dead = coordinator.lease_task("doomed-worker", ttl_s=0.3)
        assert dead is not None and dead.attempt == 1
        time.sleep(0.4)  # ... the worker never heartbeats again
        finished = run_fabric(coordinator, dict(TINY, note="second"))
        assert finished.state == DONE
        # The abandoned campaign was swept back and re-run too.
        assert coordinator.job(job.id).state == DONE
        with WorkQueue(coordinator.store_path) as q:
            assert q.task(job.id).attempts >= 2
    finally:
        coordinator.shutdown(drain=False)


def test_drain_shutdown_races_concurrent_submits(tmp_path):
    """shutdown(drain=True) while submitters and workers race: every
    accepted campaign completes, every late submit fails loudly, and
    nothing deadlocks."""
    from repro.fabric.worker import FabricWorker, LocalTransport

    coordinator = Coordinator(str(tmp_path / "fabric.db"))
    fleet = [
        FabricWorker(
            LocalTransport(coordinator),
            name=f"drain-w{i}",
            store_path=coordinator.store_path,
            poll_s=0.05,
            ttl_s=5.0,
        )
        for i in range(2)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in fleet]
    for thread in threads:
        thread.start()

    accepted, rejected = [], []
    lock = threading.Lock()

    def submitter(i):
        spec = dict(TINY, note=f"racer-{i}")
        try:
            job = coordinator.submit(parse_campaign_spec(spec))
        except RuntimeError:
            with lock:
                rejected.append(i)
        else:
            with lock:
                accepted.append(job.id)

    submitters = [
        threading.Thread(target=submitter, args=(i,)) for i in range(4)
    ]
    for i, thread in enumerate(submitters):
        thread.start()
        if i == 1:
            # Drain mid-burst so later submits race the stop flag.
            drainer = threading.Thread(
                target=coordinator.shutdown,
                kwargs={"drain": True, "timeout": 120.0},
            )
            drainer.start()
    for thread in submitters:
        thread.join(timeout=30.0)
        assert not thread.is_alive()
    drainer.join(timeout=150.0)
    assert not drainer.is_alive(), "drain shutdown deadlocked"
    for worker in fleet:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10.0)

    assert accepted, "no submit won the race"
    assert len(accepted) + len(rejected) == 4
    for campaign_id in accepted:
        assert coordinator.job(campaign_id).state == DONE
    with WorkQueue(coordinator.store_path) as q:
        assert q.depth() == 0


def test_tenant_quota_rejects_and_unwinds(tmp_path):
    coordinator = Coordinator(str(tmp_path / "fabric.db"))
    try:
        coordinator.ensure_tenant("capped", max_pending=1)
        first = coordinator.submit(
            parse_campaign_spec(TINY), tenant="capped"
        )
        with pytest.raises(QuotaExceeded):
            coordinator.submit(
                parse_campaign_spec(dict(TINY, note="over")), tenant="capped"
            )
        # The rejected campaign is unwound, not left pending forever.
        jobs = [job.id for job in coordinator.jobs()]
        assert jobs == [first.id]
    finally:
        coordinator.shutdown(drain=False)


def test_metrics_include_fabric_and_tenants(tmp_path):
    coordinator = Coordinator(str(tmp_path / "fabric.db"))
    try:
        coordinator.ensure_tenant("teamA", weight=2)
        finished = run_fabric(coordinator, TINY)
        assert finished.state == DONE
        data = coordinator.metrics()
        assert data["fabric"]["states"].get("done") == 1
        assert "default" in data["fabric"]["tenants"]
        assert "teamA" in data["fabric"]["tenants"]
    finally:
        coordinator.shutdown(drain=False)


def test_resume_settles_task_finished_while_down(tmp_path):
    """A coordinator restart meeting an already-done queue row settles
    the journaled job from the durable row instead of re-queueing it."""
    db = str(tmp_path / "fabric.db")
    coordinator = Coordinator(db)
    job = coordinator.submit(parse_campaign_spec(TINY))
    coordinator.shutdown(drain=False, timeout=0.1)

    # While the coordinator is down, a worker finishes the task at the
    # queue level (its completion commit raced the coordinator's exit).
    with WorkQueue(db) as q:
        lease = q.lease("orphan-worker", ttl_s=30.0)
        assert lease.campaign == job.id
        q.complete(job.id, lease.lease_id, {"cells": 1})

    reborn = Coordinator(db)
    try:
        resumed = reborn.resume_pending()
        assert job.id in resumed
        settled = reborn.job(job.id)
        assert settled is not None and settled.state == DONE
        with WorkQueue(db) as q:
            assert q.depth() == 0
    finally:
        reborn.shutdown(drain=False)
