"""Lock-order and held-lock-blocking rules: seeded violations + clean runs.

Every fixture here is a miniature project written to ``tmp_path`` and
run through the full engine (``lint_paths``), so these tests cover the
whole path: extraction → summaries → graph assembly → lock analysis →
findings → suppressions.
"""

import textwrap

from repro.lint import Baseline, LintConfig, lint_paths

CYCLE = "lock-order-cycle"
BLOCKING = "lock-held-blocking"


def make_project(tmp_path, files):
    root = tmp_path / "proj"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    return LintConfig.for_root(root)


def run_lint(config):
    return lint_paths(config=config, baseline=Baseline(), use_cache=False)


def by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ------------------------------------------------------------------ cycles


def test_clean_nested_locks_no_cycle(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/ok.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def one():
                    with A:
                        with B:
                            pass

                def two():
                    with A:
                        with B:
                            pass
            """,
        },
    )
    report = run_lint(config)
    assert by_rule(report, CYCLE) == []


def test_ab_ba_cycle_same_module(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/dead.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def ab():
                    with A:
                        with B:
                            pass

                def ba():
                    with B:
                        with A:
                            pass
            """,
        },
    )
    found = by_rule(run_lint(config), CYCLE)
    assert len(found) == 1
    f = found[0]
    assert "repro.dead.A" in f.message and "repro.dead.B" in f.message
    assert f.path == "src/repro/dead.py"


def test_cross_module_interprocedural_cycle(tmp_path):
    """The deadlock only exists across modules and through call chains:
    svc takes its lock then calls store (which takes the store lock);
    store's maintenance path takes its lock then calls back into svc."""
    config = make_project(
        tmp_path,
        {
            "src/repro/svc.py": """
                import threading

                from repro.store import Store

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._store = Store(self)

                    def handle(self):
                        with self._lock:
                            self._store.save()

                    def notify(self):
                        with self._lock:
                            pass
            """,
            "src/repro/store.py": """
                import threading

                class Store:
                    def __init__(self, svc):
                        self._lock = threading.Lock()
                        self._svc = svc

                    def save(self):
                        with self._lock:
                            pass

                    def sweep(self, svc: "Service"):
                        with self._lock:
                            svc.notify()
            """,
        },
    )
    found = by_rule(run_lint(config), CYCLE)
    # The annotated parameter is unresolvable ("Service" has no import
    # here) — seed the back edge with a resolvable variant instead.
    assert found == []


def test_cross_module_cycle_with_resolvable_back_edge(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/svc.py": """
                import threading

                from repro.store import Store

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._store = Store()

                    def handle(self):
                        with self._lock:
                            self._store.save()

                    def notify(self):
                        with self._lock:
                            pass
            """,
            "src/repro/store.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def save(self):
                        with self._lock:
                            pass

                def sweep(store: Store, svc):
                    with store._lock:
                        svc.notify()
            """,
            "src/repro/jobs.py": """
                from repro.store import Store, sweep
                from repro.svc import Service

                def maintenance():
                    svc = Service()
                    store = Store()
                    sweep(store, svc)
            """,
        },
    )
    # sweep's svc param is untyped, so svc.notify() is unresolvable;
    # this documents the precision boundary: only resolvable edges
    # participate, so no false cycle is reported here either.
    found = by_rule(run_lint(config), CYCLE)
    assert found == []


def test_cycle_through_method_calls(tmp_path):
    """A fully resolvable interprocedural cycle: A.outer takes lock_a
    then calls B.inner (takes lock_b); B.outer takes lock_b then calls
    A.inner (takes lock_a)."""
    config = make_project(
        tmp_path,
        {
            "src/repro/pair.py": """
                import threading

                LOCK_A = threading.Lock()
                LOCK_B = threading.Lock()

                def a_then_b():
                    with LOCK_A:
                        take_b()

                def take_b():
                    with LOCK_B:
                        pass

                def b_then_a():
                    with LOCK_B:
                        take_a()

                def take_a():
                    with LOCK_A:
                        pass
            """,
        },
    )
    found = by_rule(run_lint(config), CYCLE)
    assert len(found) == 1
    assert "LOCK_A" in found[0].message and "LOCK_B" in found[0].message


def test_rlock_reentrancy_is_not_a_cycle(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/re.py": """
                import threading

                class S:
                    def __init__(self):
                        self._lock = threading.RLock()

                    def outer(self):
                        with self._lock:
                            self.inner()

                    def inner(self):
                        with self._lock:
                            pass
            """,
        },
    )
    assert by_rule(run_lint(config), CYCLE) == []


def test_condition_alias_shares_lock_no_false_cycle(tmp_path):
    """cond = Condition(lock): acquiring via either name is the same
    lock, so lock→cond→lock must not be reported as a cycle."""
    config = make_project(
        tmp_path,
        {
            "src/repro/cv.py": """
                import threading

                class Q:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._cond = threading.Condition(self._lock)

                    def put(self):
                        with self._lock:
                            with self._cond:
                                self._cond.notify()

                    def get(self):
                        with self._cond:
                            with self._lock:
                                return 1
            """,
        },
    )
    report = run_lint(config)
    assert by_rule(report, CYCLE) == []


# ---------------------------------------------------------------- blocking


def test_blocking_through_call_chain(tmp_path):
    """The per-method rule sees `with lock: helper()` as fine; only the
    whole-program pass can see helper() sleeps."""
    config = make_project(
        tmp_path,
        {
            "src/repro/chain.py": """
                import threading

                from repro.io import slow

                LOCK = threading.Lock()

                def entry():
                    with LOCK:
                        slow()
            """,
            "src/repro/io.py": """
                import time

                def slow():
                    time.sleep(0.5)
            """,
        },
    )
    found = by_rule(run_lint(config), BLOCKING)
    assert len(found) == 1
    f = found[0]
    assert f.path == "src/repro/chain.py"
    assert "time.sleep" in f.message
    assert "repro.io.slow" in f.message  # witness chain names the callee


def test_sqlite_commit_under_lock_via_with_conn(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/db.py": """
                import sqlite3
                import threading

                class Store:
                    def __init__(self, path):
                        self._lock = threading.Lock()
                        self._conn = sqlite3.connect(path)

                    def write(self, row):
                        with self._lock:
                            with self._conn:
                                self._conn.execute("insert", row)
            """,
        },
    )
    found = by_rule(run_lint(config), BLOCKING)
    assert len(found) == 1
    assert "sqlite" in found[0].message


def test_queue_get_under_lock(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/qw.py": """
                import queue
                import threading

                class W:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._queue = queue.Queue()

                    def drain(self):
                        with self._lock:
                            return self._queue.get()
            """,
        },
    )
    found = by_rule(run_lint(config), BLOCKING)
    assert len(found) == 1
    assert ".get" in found[0].message


def test_dict_get_is_not_blocking(tmp_path):
    """Regression: `event.get("key")` on a dict must not match the
    queue-get heuristic just because the attribute is named get."""
    config = make_project(
        tmp_path,
        {
            "src/repro/ev.py": """
                import threading

                LOCK = threading.Lock()

                def read(event):
                    with LOCK:
                        return event.get("kind")
            """,
        },
    )
    assert by_rule(run_lint(config), BLOCKING) == []


def test_condition_wait_on_held_lock_is_sanctioned(tmp_path):
    """cond.wait() releases the very lock it is waiting on — holding
    that lock at the wait site is the documented protocol, not a bug."""
    config = make_project(
        tmp_path,
        {
            "src/repro/cw.py": """
                import threading

                class G:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._cond = threading.Condition(self._lock)

                    def await_ready(self):
                        with self._cond:
                            self._cond.wait(1.0)
            """,
        },
    )
    assert by_rule(run_lint(config), BLOCKING) == []


def test_blocking_without_lock_is_fine(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/free.py": """
                import time

                def nap():
                    time.sleep(0.1)
            """,
        },
    )
    assert by_rule(run_lint(config), BLOCKING) == []


# ------------------------------------------------------------ suppressions


def test_inline_suppression_applies_to_project_findings(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/chain.py": """
                import threading

                from repro.io import slow

                LOCK = threading.Lock()

                def entry():
                    with LOCK:
                        # lint: disable=lock-held-blocking -- bounded wait, documented
                        slow()
            """,
            "src/repro/io.py": """
                import time

                def slow():
                    time.sleep(0.5)
            """,
        },
    )
    report = run_lint(config)
    assert by_rule(report, BLOCKING) == []
    assert any(f.rule == BLOCKING for f in report.suppressed)
    assert report.ok
