"""The injectable clock seam: every wall-clock stamp in repro.exec /
repro.service flows through one ``clock`` callable defaulting to
:func:`repro.exec.telemetry.default_clock`.  These tests inject a fake
clock and pin the timestamps exactly — no sleeping, no racing.
"""

import json

import pytest

from repro.exec.telemetry import JobRecord, RunManifest, default_clock
from repro.service.scheduler import Scheduler
from repro.service.specs import parse_campaign_spec

TINY = {
    "kind": "conformance",
    "stacks": ["xquic"],
    "ccas": ["cubic"],
    "duration_s": 3,
    "trials": 2,
}


class FakeClock:
    """Monotonic fake: returns ``start`` and advances ``step`` per call."""

    def __init__(self, start=1000.0, step=1.0):
        self.now = start
        self.step = step
        self.calls = 0

    def __call__(self):
        value = self.now
        self.now += self.step
        self.calls += 1
        return value


def test_default_clock_is_wall_clock():
    import time

    before = time.time()
    stamped = default_clock()
    after = time.time()
    assert before <= stamped <= after


def test_run_manifest_stamps_through_injected_clock(tmp_path):
    clock = FakeClock(start=5000.0, step=7.0)
    path = tmp_path / "manifest.jsonl"
    with RunManifest(path, clock=clock) as manifest:
        manifest.campaign_start("camp", jobs=2, workers=1, mode="serial")
        manifest.job("camp", JobRecord(index=0, status="ok"))
        manifest.campaign_end(
            "camp", [JobRecord(index=0, status="ok")], wall_s=1.5, cache={}
        )
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["event"] for r in rows] == [
        "campaign_start",
        "job",
        "campaign_end",
    ]
    # Exactly two clock reads: the start and end stamps; job rows carry
    # executor wall time, not a clock read.
    assert rows[0]["time"] == 5000.0
    assert rows[2]["time"] == 5007.0
    assert clock.calls == 2


def test_scheduler_timestamps_come_from_injected_clock(tmp_path):
    clock = FakeClock(start=100.0, step=1.0)
    scheduler = Scheduler(
        str(tmp_path / "store.db"), workers=0, clock=clock
    )
    assert scheduler.started_at == 100.0

    job = scheduler.submit(parse_campaign_spec(TINY))
    assert job.submitted_at == 101.0
    # The queued-state event was stamped by the same clock.
    (event,) = scheduler.events_since(job.id)
    assert event["time"] == 102.0

    scheduler.shutdown(drain=False)


def test_scheduler_metrics_uptime_uses_injected_clock(tmp_path):
    clock = FakeClock(start=0.0, step=0.0)
    scheduler = Scheduler(
        str(tmp_path / "store.db"), workers=0, clock=clock
    )
    clock.now = 50.0
    assert scheduler.metrics()["uptime_s"] == pytest.approx(50.0)
    clock.now = 200.0
    assert scheduler.metrics()["uptime_s"] == pytest.approx(200.0)
    scheduler.shutdown(drain=False)


def test_wait_events_deadline_respects_injected_clock(tmp_path):
    # A clock that jumps far past the deadline between reads: the
    # long-poll must return immediately instead of blocking on real time.
    clock = FakeClock(start=0.0, step=100.0)
    scheduler = Scheduler(
        str(tmp_path / "store.db"), workers=0, clock=clock
    )
    job = scheduler.submit(parse_campaign_spec(TINY))
    already = len(scheduler.events_since(job.id))
    assert (
        scheduler.wait_events(job.id, after=already, timeout=5.0) == []
    )
    scheduler.shutdown(drain=False)
