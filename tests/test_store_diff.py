"""Diff engine + the regression acceptance path.

The load-bearing test: running ``regression_matrix`` with a store
attached and then ``diff_runs`` between the two milestone runs must
report exactly the verdict flips the in-memory matrix computes — and the
stored metric values must equal the in-memory ones bit-for-bit.
"""

import numpy as np
import pytest

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import measure_conformance
from repro.harness.regression import (
    MILESTONES,
    flipped_verdicts,
    milestone_run_name,
    regression_matrix,
    regression_matrix_from_store,
)
from repro.harness.reporting import format_run_diff
from repro.store import (
    ResultStore,
    StoreError,
    diff_against_baseline,
    diff_runs,
)

QUICK = ExperimentConfig(duration_s=6.0, trials=2)
COND = NetworkCondition(bandwidth_mbps=20.0, rtt_ms=10.0, buffer_bdp=1.0)


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "diff.db") as s:
        yield s


def _seed_run(store, name, values):
    """values: {(stack, cca): conf}"""
    run = store.ensure_run(name)
    for (stack, cca), conf in values.items():
        store.record_metrics(
            run, stack=stack, cca=cca, metrics={"conf": conf}, condition=COND
        )
    return run


class TestDiffRuns:
    def test_identical_runs_are_clean(self, store):
        values = {("quiche", "cubic"): 0.8, ("mvfst", "bbr"): 0.3}
        _seed_run(store, "a", values)
        _seed_run(store, "b", values)
        diff = diff_runs(store, "a", "b")
        assert diff.clean and diff.compared == 2
        assert "no differences" in format_run_diff(diff)

    def test_moves_flips_added_removed(self, store):
        _seed_run(store, "a", {
            ("quiche", "cubic"): 0.8,   # stays conformant, value moves
            ("xquic", "cubic"): 0.3,    # flips to conformant
            ("quicgo", "reno"): 0.9,    # disappears
        })
        _seed_run(store, "b", {
            ("quiche", "cubic"): 0.7,
            ("xquic", "cubic"): 0.75,
            ("mvfst", "bbr"): 0.5,      # appears
        })
        diff = diff_runs(store, "a", "b")
        assert diff.compared == 2
        assert [d.label() for d in diff.changed] == [
            f"quiche/cubic @ {COND.describe()}",
            f"xquic/cubic @ {COND.describe()}",
        ]
        (flip,) = diff.flips
        assert flip.label().startswith("xquic/cubic")
        assert not flip.before_verdict and flip.after_verdict
        assert diff.added == [("mvfst", "bbr", "default", COND.describe())]
        assert diff.removed == [("quicgo", "reno", "default", COND.describe())]
        text = format_run_diff(diff)
        assert "FLIP xquic/cubic" in text and "+1 new, -1 gone" in text

    def test_atol_suppresses_noise_but_not_flips(self, store):
        _seed_run(store, "a", {("s", "c"): 0.499})
        _seed_run(store, "b", {("s", "c"): 0.501})
        diff = diff_runs(store, "a", "b", atol=0.01)
        assert diff.changed == [] and len(diff.flips) == 1

    def test_threshold_is_configurable(self, store):
        _seed_run(store, "a", {("s", "c"): 0.55})
        _seed_run(store, "b", {("s", "c"): 0.65})
        assert diff_runs(store, "a", "b", threshold=0.6).flips
        assert not diff_runs(store, "a", "b", threshold=0.5).flips

    def test_baseline_diff_and_unknown_baseline(self, store):
        _seed_run(store, "anchor-run", {("s", "c"): 0.8})
        _seed_run(store, "new", {("s", "c"): 0.2})
        store.set_baseline("anchor", store.run("anchor-run"))
        diff = diff_against_baseline(store, "new", "anchor")
        assert diff.run_a == "anchor-run" and len(diff.flips) == 1
        with pytest.raises(StoreError, match="unknown baseline"):
            diff_against_baseline(store, "new", "ghost")


class TestRegressionAcceptance:
    """ISSUE acceptance: store diff == in-memory verdict flips, and
    stored metrics == in-memory results at full precision."""

    def test_store_diff_reports_exactly_the_matrix_flips(self, store):
        # xquic/cubic is the natural flip case: its missing HyStart makes
        # it non-conformant against the stock kernel but conformant
        # against the pre-HyStart milestone.
        impls = [("xquic", "cubic"), ("quicgo", "reno")]
        rows = regression_matrix(
            milestones=MILESTONES,
            implementations=impls,
            condition=COND,
            config=QUICK,
            cache=ResultCache(directory=None),
            store=store,
        )
        flips_memory = {(r.stack, r.cca) for r in flipped_verdicts(rows)}
        assert flips_memory == {("xquic", "cubic")}

        diff = diff_runs(
            store,
            milestone_run_name(MILESTONES[0]),
            milestone_run_name(MILESTONES[1]),
        )
        flips_store = {(f.subject[0], f.subject[1]) for f in diff.flips}
        assert flips_store == flips_memory
        assert diff.compared == len(impls)

    def test_stored_metrics_bit_identical_to_memory(self, store):
        cache = ResultCache(directory=None)
        run = store.ensure_run("one-off")
        measurement = measure_conformance(
            "quicgo", "reno", COND, QUICK, cache=cache,
            store=store, store_run="one-off",
        )
        table = {
            row.metric: row.value for row in store.query(run=run)
        }
        result = measurement.result
        assert table["conf"] == result.conformance
        assert table["conf_t"] == result.conformance_t
        assert table["conf_old"] == result.conformance_legacy
        assert table["delta_tput_mbps"] == result.delta_throughput_mbps
        assert table["delta_delay_ms"] == result.delta_delay_ms
        assert table["k_test"] == float(result.test_envelope.k)
        assert table["k_ref"] == float(result.reference_envelope.k)

    def test_matrix_rebuilt_from_store_matches_memory(self, store):
        impls = [("xquic", "cubic")]
        rows = regression_matrix(
            milestones=MILESTONES,
            implementations=impls,
            condition=COND,
            config=QUICK,
            cache=ResultCache(directory=None),
            store=store,
        )
        rebuilt = regression_matrix_from_store(store, MILESTONES)
        assert len(rebuilt) == 1
        assert rebuilt[0].stack == "xquic" and rebuilt[0].cca == "cubic"
        assert rebuilt[0].conformance == rows[0].conformance
        assert rebuilt[0].verdict_flips == rows[0].verdict_flips

    def test_trial_payloads_round_trip_through_store_cache(self, store):
        # The executor's store sink keeps trial arrays; pulling them back
        # through the warehouse must be bit-identical to recomputing.
        from repro.harness.conformance import gather_trials
        from repro.harness.runner import Impl, trial_identity
        from repro.store import StoreCache

        test, ref = Impl("quicgo", "reno"), Impl("linux", "reno")
        trials = gather_trials(test, ref, COND, QUICK, cache=ResultCache(directory=None))
        keys = [
            trial_identity(test, ref, COND, QUICK, t)[1]
            for t in range(QUICK.trials)
        ]
        store.put_trials(zip(keys, trials))
        cache = StoreCache(store)
        for key, expected in zip(keys, trials):
            loaded = cache.get(key)
            assert loaded is not None
            assert loaded.tobytes() == np.ascontiguousarray(expected).tobytes()
        assert cache.store_hits == QUICK.trials
