"""Conformance, Conformance-T and the translation hints."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conformance import (
    conformance,
    conformance_legacy,
    conformance_post_translation,
    evaluate_conformance,
)
from repro.core.envelope import EnvelopeConfig, build_envelope


def blob(center, n=60, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(center, spread, size=(n, 2))


def make_pe(centers, seed=0, k=None):
    trials = [
        np.vstack([blob(c, seed=seed + 10 * t + i) for i, c in enumerate(centers)])
        for t in range(3)
    ]
    return build_envelope(trials, EnvelopeConfig(k=k or len(centers)))


def test_identical_envelopes_score_near_one():
    a = make_pe([(10, 10)], seed=1)
    assert conformance(a, a) == pytest.approx(1.0)


def test_disjoint_envelopes_score_zero():
    a = make_pe([(0, 0)], seed=1)
    b = make_pe([(100, 100)], seed=2)
    assert conformance(a, b) == 0.0


def test_same_distribution_scores_high():
    a = make_pe([(10, 10)], seed=1)
    b = make_pe([(10, 10)], seed=5)
    assert conformance(a, b) > 0.6


def test_partial_overlap_scores_between():
    a = make_pe([(0, 0)], seed=1)
    b = make_pe([(0.8, 0.8)], seed=2)
    value = conformance(a, b)
    assert 0.0 < value < 0.9


def test_conformance_bounded():
    for offset in (0.0, 0.5, 1.5, 5.0):
        a = make_pe([(0, 0)], seed=1)
        b = make_pe([(offset, offset)], seed=2)
        assert 0.0 <= conformance(a, b) <= 1.0


class TestConformanceT:
    def test_translation_recovers_shifted_clone(self):
        a = make_pe([(0, 0)], seed=1)
        shifted = a.translated((7.0, -3.0))
        result = conformance_post_translation(shifted, a)
        assert result.conformance_t == pytest.approx(1.0)
        # Applied translation undoes the shift; deltas report test - ref.
        assert result.delta_delay_ms == pytest.approx(7.0, abs=0.3)
        assert result.delta_throughput_mbps == pytest.approx(-3.0, abs=0.3)

    def test_conformance_t_at_least_conformance(self):
        a = make_pe([(0, 0)], seed=1)
        b = make_pe([(1.0, 1.0)], seed=2)
        base = conformance(a, b)
        result = conformance_post_translation(a, b)
        assert result.conformance_t >= base - 1e-9

    def test_multi_cluster_translation(self):
        a = make_pe([(0, 0), (20, 20)], seed=1)
        b_trials = [
            np.vstack([blob((5, 5), seed=30 + t), blob((25, 25), seed=60 + t)])
            for t in range(3)
        ]
        b = build_envelope(b_trials, EnvelopeConfig(k=2))
        result = conformance_post_translation(b, a)
        assert result.conformance_t > conformance(b, a)
        assert result.delta_delay_ms == pytest.approx(5.0, abs=1.5)

    @given(st.floats(-20, 20), st.floats(-20, 20))
    @settings(max_examples=25, deadline=None)
    def test_translation_invariance(self, dx, dy):
        """Conformance-T of a rigidly translated cloud equals the original's."""
        a = make_pe([(0, 0)], seed=3)
        b = make_pe([(0.5, 0.5)], seed=4)
        moved = b.translated((dx, dy))
        base = conformance_post_translation(b, a).conformance_t
        shifted = conformance_post_translation(moved, a).conformance_t
        assert shifted == pytest.approx(base, abs=0.12)


class TestLegacyConformance:
    def test_identical_clouds(self):
        pts = blob((10, 10), n=100, seed=1)
        assert conformance_legacy(pts, pts) == pytest.approx(1.0)

    def test_disjoint_clouds(self):
        assert (
            conformance_legacy(blob((0, 0), seed=1), blob((100, 100), seed=2)) == 0.0
        )

    def test_single_hull_overestimates_bimodal(self):
        """The paper's Fig. 1 argument: one hull inflates conformance for
        clustered clouds compared to the clustered definition."""
        ref_centers = [(0, 0), (20, 20)]
        test_centers = [(8, 8), (14, 14)]  # sits in the ref's empty middle
        ref_pts = np.vstack([blob(c, seed=i) for i, c in enumerate(ref_centers)])
        test_pts = np.vstack([blob(c, seed=9 + i) for i, c in enumerate(test_centers)])
        legacy = conformance_legacy(test_pts, ref_pts)
        ref_pe = make_pe(ref_centers, seed=0, k=2)
        test_pe = make_pe(test_centers, seed=9, k=2)
        clustered = conformance(test_pe, ref_pe)
        assert legacy > clustered + 0.2

    def test_trimming_ignores_extreme_outliers(self):
        pts = blob((0, 0), n=100, seed=1)
        with_outliers = np.vstack([pts, [[500, 500], [600, -300]]])
        assert conformance_legacy(with_outliers, pts) > 0.85


def test_evaluate_conformance_end_to_end():
    test_trials = [blob((0.3, 0.3), seed=t) for t in range(3)]
    ref_trials = [blob((0, 0), seed=10 + t) for t in range(3)]
    result = evaluate_conformance(test_trials, ref_trials)
    assert 0 <= result.conformance <= 1
    assert result.conformance_t >= result.conformance
    row = result.summary_row()
    assert set(row) >= {"conf", "conf_t", "conf_old", "delta_tput_mbps", "delta_delay_ms"}
