"""Text reporting helpers."""

import numpy as np

from repro.harness import reporting


def test_format_table_alignment():
    out = reporting.format_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", 22.25]],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.50" in out and "22.25" in out


def test_format_table_empty_rows():
    out = reporting.format_table(["a", "b"], [])
    assert "a" in out


def test_format_heatmap_shading_and_nan():
    values = np.array([[0.0, 1.0], [np.nan, 0.5]])
    out = reporting.format_heatmap(["r1", "r2"], ["c1", "c2"], values)
    assert "1.00█" in out
    assert "." in out.splitlines()[2]


def test_format_conformance_bars_sorted_and_flagged():
    items = {("a", "cubic"): 0.9, ("b", "cubic"): 0.2}
    out = reporting.format_conformance_bars(items, title="Fig6")
    lines = out.splitlines()
    assert lines[0] == "Fig6"
    # Ascending order: the low-conformance one first, flagged.
    assert "b/cubic" in lines[1] and "low conformance" in lines[1]
    assert "a/cubic" in lines[2] and "low conformance" not in lines[2]


def test_to_csv():
    out = reporting.to_csv(["x", "y"], [[1, 2], [3, 4]])
    assert out.splitlines()[0] == "x,y"
    assert out.splitlines()[2] == "3,4"


def test_envelope_ascii_plot():
    points = np.array([[1.0, 1.0], [2.0, 5.0], [3.0, 2.0]])
    hulls = [np.array([[1.0, 1.0], [2.0, 5.0], [3.0, 2.0]])]
    out = reporting.format_envelope_ascii(hulls, points, width=20, height=8, title="pe")
    assert out.splitlines()[0] == "pe"
    assert "o" in out and "." in out or "o" in out


def test_envelope_ascii_empty():
    assert "empty" in reporting.format_envelope_ascii([], np.empty((0, 2)))
