"""The unified RetryPolicy: backoff math, deadlines, injectable time."""

import pytest

from repro.faults.retry import RetryPolicy, default_monotonic, default_sleep


class FakeTime:
    """Paired fake sleep/clock: sleeping advances the clock."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds

    def clock(self):
        return self.now


def policy(**kwargs):
    fake = FakeTime()
    kwargs.setdefault("sleep", fake.sleep)
    kwargs.setdefault("clock", fake.clock)
    return RetryPolicy(**kwargs), fake


class TestBackoff:
    def test_exponential_doubling(self):
        p = RetryPolicy(backoff_s=0.1, backoff_cap_s=100.0)
        assert p.backoff(1) == pytest.approx(0.1)
        assert p.backoff(2) == pytest.approx(0.2)
        assert p.backoff(3) == pytest.approx(0.4)
        assert p.backoff(4) == pytest.approx(0.8)

    def test_cap(self):
        p = RetryPolicy(backoff_s=1.0, backoff_cap_s=3.0)
        assert p.backoff(10) == 3.0

    def test_jitter_is_deterministic_per_seed_and_attempt(self):
        a = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=7)
        b = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=7)
        c = RetryPolicy(backoff_s=1.0, jitter=0.5, seed=8)
        assert a.backoff(3) == b.backoff(3)  # replayable
        assert a.backoff(3) != c.backoff(3)  # de-synchronised across seeds
        assert a.backoff(2) != a.backoff(3)  # varies across attempts

    def test_jitter_bounded(self):
        p = RetryPolicy(backoff_s=1.0, backoff_cap_s=1.0, jitter=0.25, seed=3)
        for attempt in range(1, 20):
            assert 1.0 <= p.backoff(attempt) <= 1.25


class TestCall:
    def test_success_first_try_never_sleeps(self):
        p, fake = policy()
        assert p.call(lambda: 42) == 42
        assert fake.sleeps == []

    def test_retries_until_success(self):
        p, fake = policy(max_attempts=5, backoff_s=0.1, backoff_cap_s=10.0)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        assert p.call(flaky) == "ok"
        assert len(calls) == 3
        assert fake.sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_exhaustion_reraises_original_exception(self):
        p, _ = policy(max_attempts=2, backoff_s=0.01)
        with pytest.raises(ValueError, match="always"):
            p.call(lambda: (_ for _ in ()).throw(ValueError("always")))

    def test_non_retryable_escapes_immediately(self):
        p, fake = policy(max_attempts=10)
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("fatal")

        with pytest.raises(KeyError):
            p.call(boom, retryable=lambda exc: isinstance(exc, ValueError))
        assert len(calls) == 1
        assert fake.sleeps == []

    def test_deadline_bounds_unlimited_attempts(self):
        p, fake = policy(
            max_attempts=None, backoff_s=1.0, backoff_cap_s=1.0,
            deadline_s=3.5,
        )
        calls = []

        def always_fails():
            calls.append(1)
            raise ValueError("down")

        with pytest.raises(ValueError):
            p.call(always_fails)
        # Pauses at 1s each: attempts at t=0,1,2,3; the pause after the
        # 4th would land at t=4 >= 3.5, so it gives up there.
        assert len(calls) == 4
        assert fake.now < p.deadline_s + 1.0

    def test_delay_override_wins_over_backoff(self):
        p, fake = policy(max_attempts=3, backoff_s=50.0)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("x")
            return "ok"

        assert p.call(flaky, delay=lambda attempt, exc: 0.5) == "ok"
        assert fake.sleeps == [0.5]

    def test_on_retry_observes_each_retry(self):
        p, _ = policy(max_attempts=3, backoff_s=0.1)
        seen = []

        def flaky():
            if len(seen) < 2:
                raise ValueError("x")
            return "ok"

        p.call(flaky, on_retry=lambda a, exc, pause: seen.append((a, pause)))
        assert [a for a, _ in seen] == [1, 2]

    def test_give_up_respects_max_attempts(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.give_up(0.0, 2, 0.1)
        assert p.give_up(0.0, 3, 0.1)


class TestSanctionedSeams:
    def test_defaults_are_the_module_seams(self):
        p = RetryPolicy()
        assert p.sleep is default_sleep
        assert p.clock is default_monotonic

    def test_default_monotonic_advances(self):
        a = default_monotonic()
        assert default_monotonic() >= a

    def test_policy_is_frozen_and_hashable(self):
        p = RetryPolicy()
        with pytest.raises(Exception):
            p.max_attempts = 5
        hash(p)
