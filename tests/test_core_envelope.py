"""Performance Envelope construction."""

import numpy as np
import pytest

from repro.core.envelope import EnvelopeConfig, PerformanceEnvelope, build_envelope


def blob(center, n=60, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(center, spread, size=(n, 2))


def trials_around(centers, n_trials=3, seed=0):
    """Each trial has one blob per center, slightly perturbed."""
    trials = []
    for t in range(n_trials):
        parts = [
            blob(np.asarray(c) + 0.05 * t, seed=seed + 10 * t + i)
            for i, c in enumerate(centers)
        ]
        trials.append(np.vstack(parts))
    return trials


def test_single_cluster_envelope():
    trials = trials_around([(10, 10)])
    pe = build_envelope(trials, EnvelopeConfig())
    assert pe.k == 1
    assert len(pe.hulls) == 1
    assert pe.retained_fraction() > 0.7


def test_two_cluster_envelope_detected():
    trials = trials_around([(0, 0), (30, 30)])
    pe = build_envelope(trials, EnvelopeConfig())
    assert pe.k == 2
    assert len(pe.hulls) == 2


def test_fixed_k_overrides_selection():
    trials = trials_around([(0, 0), (30, 30)])
    pe = build_envelope(trials, EnvelopeConfig(k=1))
    assert pe.k == 1
    assert pe.retention_curve is None


def test_single_hull_mode():
    trials = trials_around([(0, 0), (30, 30)])
    pe = build_envelope(trials, EnvelopeConfig(single_hull=True))
    assert pe.k == 1
    # A single hull spans both blobs including the empty middle.
    assert pe.contains(np.array([[15.0, 15.0]]))[0]


def test_intersection_removes_nonrecurring_region():
    # Trial 2 has an extra far-away blob that other trials lack; the
    # per-cluster intersection must not grant that region to the PE.
    base = trials_around([(0, 0)], n_trials=2)
    outlier_trial = np.vstack([blob((0, 0), seed=99), blob((50, 50), n=5, seed=98)])
    pe = build_envelope(base + [outlier_trial], EnvelopeConfig(k=1))
    assert not pe.contains(np.array([[50.0, 50.0]]))[0]


def test_outlier_removal_rate_is_modest():
    # The paper reports the trial intersection removes ~5 % of points.
    trials = trials_around([(10, 10)], n_trials=3)
    pe = build_envelope(trials)
    retained = pe.retained_fraction()
    assert 0.6 < retained < 1.0


def test_translated_envelope_moves_everything():
    trials = trials_around([(0, 0)])
    pe = build_envelope(trials, EnvelopeConfig(k=1))
    moved = pe.translated((5.0, -2.0))
    assert np.allclose(moved.all_points, pe.all_points + [5.0, -2.0])
    assert moved.contains(np.array([[5.0, -2.0]]))[0]
    assert pe.contains(np.array([[0.0, 0.0]]))[0]


def test_contains_empty_input():
    trials = trials_around([(0, 0)])
    pe = build_envelope(trials, EnvelopeConfig(k=1))
    assert pe.contains(np.empty((0, 2))).shape == (0,)


def test_total_area_positive():
    trials = trials_around([(0, 0)])
    pe = build_envelope(trials, EnvelopeConfig(k=1))
    assert pe.total_area() > 0


def test_empty_trials_rejected():
    with pytest.raises(ValueError):
        build_envelope([])
    with pytest.raises(ValueError):
        build_envelope([np.empty((0, 2))])


def test_config_validation():
    with pytest.raises(ValueError):
        EnvelopeConfig(k=0).validate()
    with pytest.raises(ValueError):
        EnvelopeConfig(k_max=0).validate()


def test_single_trial_envelope_is_its_hulls():
    trial = blob((5, 5), n=80)
    pe = build_envelope([trial], EnvelopeConfig(k=1))
    assert pe.retained_fraction() == pytest.approx(1.0)
