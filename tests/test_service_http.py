"""End-to-end HTTP tests: ServiceApp + ServiceClient over a real socket.

The acceptance test of the service: a campaign submitted through the
HTTP API must produce metrics *bit-identical* to the same campaign run
directly through :func:`repro.harness.matrix.run_matrix`, and a second
identical submission must complete with zero new simulations (every
trial served from the warehouse by its content-addressed key).
"""

import time

import pytest

from repro.harness.cache import CACHE_DIR_ENV, ResultCache
from repro.harness.matrix import run_matrix
from repro.service import ServiceApp, ServiceClient, ServiceError
from repro.service.specs import parse_campaign_spec
from repro.store import ResultStore

#: Two stacks, one condition, short protocol: a few seconds of simulation.
E2E_SPEC = {
    "kind": "matrix",
    "stacks": ["quiche", "xquic"],
    "ccas": ["cubic"],
    "conditions": [{"bandwidth_mbps": 8, "rtt_ms": 20, "buffer_bdp": 0.6}],
    "duration_s": 3,
    "trials": 2,
    "run": "svc-e2e",
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One app + client shared by the module (campaigns accumulate)."""
    root = tmp_path_factory.mktemp("service")
    import os

    before = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(root / "cache")
    app = ServiceApp(str(root / "store.db"), workers=1, max_pending=16)
    app.start()
    client = ServiceClient(app.url, timeout_s=30.0)
    try:
        yield app, client
    finally:
        app.stop(drain=False)
        if before is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = before


def metric_map(rows):
    """(stack, cca, variant, condition, metric) -> value, from JSON rows."""
    out = {}
    for row in rows:
        key = (row["stack"], row["cca"], row["variant"], row["condition"],
               row["metric"])
        assert key not in out, f"duplicate metric row {key}"
        out[key] = row["value"]
    return out


def test_healthz(service):
    _, client = service
    health = client.health()
    assert health["status"] == "ok"
    assert "queue_depth" in health


def test_e2e_metrics_bit_identical_and_second_submission_cached(
    service, tmp_path
):
    app, client = service
    accepted = client.submit(E2E_SPEC)
    assert accepted["state"] in ("pending", "running")
    final = client.wait(accepted["id"], timeout_s=600)
    assert final["state"] == "done"
    assert final["progress"]["done"] == final["progress"]["total"] > 0

    via_service = metric_map(client.metrics("svc-e2e"))
    assert via_service

    # The same campaign, run directly through the harness with a private
    # cache that has never seen the service's results.
    spec = parse_campaign_spec(E2E_SPEC)
    direct_dir = tmp_path / "direct-cache"
    with ResultStore(str(tmp_path / "direct.db")) as direct_store:
        run_matrix(
            conditions=spec.resolved_conditions(),
            implementations=spec.implementations(),
            config=spec.experiment_config(),
            cache=ResultCache(directory=direct_dir),
            store=direct_store,
            store_run="direct",
        )
        direct_rows = [
            {
                "stack": r.stack, "cca": r.cca, "variant": r.variant,
                "condition": r.condition, "metric": r.metric,
                "value": r.value,
            }
            for r in direct_store.query(run="direct")
        ]
    direct = metric_map(direct_rows)
    assert via_service == direct  # bit-identical floats, key for key

    # Second identical submission: every trial is served from the
    # warehouse by its content-addressed key — zero new simulations.
    again = client.submit(E2E_SPEC)
    refinal = client.wait(again["id"], timeout_s=600)
    assert refinal["state"] == "done"
    statuses = refinal["trial_statuses"]
    assert statuses.get("ok", 0) == 0
    assert statuses.get("cached", 0) == refinal["progress"]["total"] > 0


def test_event_stream_tells_the_whole_story(service):
    _, client = service
    campaigns = client.campaigns()
    done = [c for c in campaigns if c["state"] == "done"]
    assert done, "expected a finished campaign from the e2e test"
    events = list(client.stream(done[0]["id"]))
    kinds = [e["event"] for e in events]
    assert kinds.count("state") >= 3  # pending -> running -> done
    assert any(e["event"] == "trial" for e in events)
    assert events[-1]["event"] == "state"
    assert events[-1]["state"] == "done"
    # Every event carries a monotonically increasing sequence number.
    assert [e["seq"] for e in events] == list(range(len(events)))


def test_sse_stream(service):
    import urllib.request

    app, client = service
    done = [c for c in client.campaigns() if c["state"] == "done"][0]
    with urllib.request.urlopen(
        f"{app.url}/campaigns/{done['id']}/events?stream=1", timeout=30
    ) as response:
        assert "text/event-stream" in response.headers["Content-Type"]
        body = response.read().decode()
    assert "data: " in body
    assert "event: end" in body  # terminal frame carries the snapshot


def test_run_endpoints(service):
    _, client = service
    runs = {r["name"]: r for r in client.runs()}
    assert "svc-e2e" in runs
    assert runs["svc-e2e"]["metrics"] > 0
    assert runs["svc-e2e"]["trials"] > 0

    csv_text = client.metrics("svc-e2e", fmt="csv")
    header, *rows = csv_text.strip().splitlines()
    assert header.split(",")[:4] == ["run", "stack", "cca", "variant"]
    assert rows

    filtered = client.metrics("svc-e2e", metric="conf", stack="quiche")
    assert filtered and all(
        r["metric"] == "conf" and r["stack"] == "quiche" for r in filtered
    )

    diff = client.diff("svc-e2e", "svc-e2e")
    assert diff["clean"] is True and diff["compared"] > 0

    svg = client.heatmap_svg("svc-e2e")
    assert svg.lstrip().startswith("<")
    assert "svg" in svg[:200]


def test_prometheus_exposition(service):
    _, client = service
    text = client.metrics_text()
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_campaigns_running" in text
    assert 'repro_campaigns_total{state="done"}' in text
    assert "repro_trials_per_second" in text
    assert "repro_cache_hit_rate" in text
    assert 'repro_store_rows{table="trials"}' in text


def test_invalid_spec_is_400(service):
    _, client = service
    with pytest.raises(ServiceError) as err:
        client.submit({"kind": "matrix", "stacks": ["nosuch"]})
    assert err.value.status == 400
    assert "unknown stack" in str(err.value)
    with pytest.raises(ServiceError) as err:
        client.submit({"kind": "matrix", "priority": "high"})
    assert err.value.status == 400


def test_unknown_resources_are_404(service):
    _, client = service
    for call in (
        lambda: client.status("nope"),
        lambda: client.events("nope"),
        lambda: client.metrics("no-such-run"),
        lambda: client.diff("no-such-run", "svc-e2e"),
        lambda: client.heatmap_svg("no-such-run"),
        lambda: client.cancel("nope"),
        lambda: client._request("GET", "/not/a/resource"),
    ):
        with pytest.raises(ServiceError) as err:
            call()
        assert err.value.status == 404


def test_cancel_terminal_campaign_is_409(service):
    _, client = service
    done = [c for c in client.campaigns() if c["state"] == "done"][0]
    with pytest.raises(ServiceError) as err:
        client.cancel(done["id"])
    assert err.value.status == 409


def test_backpressure_429_with_retry_after(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    # workers=0: nothing drains, so the bounded queue fills immediately.
    app = ServiceApp(
        str(tmp_path / "store.db"), workers=0, max_pending=1, resume=False
    )
    app.start()
    try:
        client = ServiceClient(app.url)
        client.submit(E2E_SPEC)
        with pytest.raises(ServiceError) as err:
            client.submit(E2E_SPEC)
        assert err.value.status == 429
        assert err.value.retry_after_s >= 1
        # submit_blocking gives up once the deadline passes.
        start = time.monotonic()
        with pytest.raises(ServiceError):
            client.submit_blocking(E2E_SPEC, give_up_after_s=0.1)
        assert time.monotonic() - start < 30
    finally:
        app.stop(drain=False)
