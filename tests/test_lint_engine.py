"""Engine-level lint tests: suppressions, baseline workflow, reporters,
CLI exit codes — and the acceptance check that the repo at HEAD is clean.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    Finding,
    LintConfig,
    find_repo_root,
    lint_paths,
    render_findings,
)

BAD_NETSIM = """\
import time

def stamp():
    return time.time()
"""


def make_project(tmp_path, files):
    root = tmp_path / "proj"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    return LintConfig.for_root(root)


def run_lint(config, **kwargs):
    return lint_paths(config=config, baseline=Baseline(), **kwargs)


# ------------------------------------------------------------ suppressions


def test_trailing_suppression_with_justification(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/a.py": """
                import time

                def stamp():
                    return time.time()  # lint: disable=wall-clock -- fixture clock
            """,
        },
    )
    report = run_lint(config)
    assert not report.findings
    assert [f.rule for f in report.suppressed] == ["wall-clock"]


def test_comment_line_suppresses_next_line(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/a.py": """
                import time

                def stamp():
                    # lint: disable=wall-clock -- fixture clock
                    return time.time()
            """,
        },
    )
    report = run_lint(config)
    assert not report.findings
    assert len(report.suppressed) == 1


def test_suppression_without_justification_is_itself_a_finding(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/a.py": """
                import time

                def stamp():
                    return time.time()  # lint: disable=wall-clock
            """,
        },
    )
    report = run_lint(config)
    rules = sorted(f.rule for f in report.findings)
    # The suppression is void (no justification), so the original
    # finding stays active *and* the silent disable is reported.
    assert rules == ["suppression-justification", "wall-clock"]


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/a.py": """
                import time

                def stamp():
                    return time.time()  # lint: disable=set-iteration -- wrong rule
            """,
        },
    )
    report = run_lint(config)
    assert [f.rule for f in report.findings] == ["wall-clock"]


# ---------------------------------------------------------------- baseline


def test_baseline_grandfathers_then_catches_new_findings(tmp_path):
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD_NETSIM})
    first = run_lint(config)
    assert len(first.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings).save(baseline_path)

    # Same violation, now grandfathered: gate passes.
    second = lint_paths(config=config, baseline=Baseline.load(baseline_path))
    assert not second.findings
    assert len(second.baselined) == 1

    # A *new* violation on top of the baselined one fails again.
    (config.src / "netsim" / "b.py").write_text(
        "import random\nX = random.random()\n"
    )
    third = lint_paths(config=config, baseline=Baseline.load(baseline_path))
    assert [f.rule for f in third.findings] == ["unseeded-random"]
    assert len(third.baselined) == 1


def test_baseline_matching_is_count_aware(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/a.py": """
                import time

                def one():
                    return time.time()
            """,
        },
    )
    report = run_lint(config)
    baseline = Baseline.from_findings(report.findings)

    # Duplicate the identical line: one occurrence is absorbed by the
    # baseline entry (count=1), the second is new.
    (config.src / "netsim" / "a.py").write_text(
        "import time\n\ndef one():\n    return time.time()\n\n"
        "def two():\n    return time.time()\n"
    )
    again = lint_paths(config=config, baseline=baseline)
    assert len(again.findings) == 1
    assert len(again.baselined) == 1


def test_baseline_survives_line_drift(tmp_path):
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD_NETSIM})
    baseline = Baseline.from_findings(run_lint(config).findings)

    # Shift the violation down three lines; identity (rule, path,
    # snippet) still matches.
    (config.src / "netsim" / "a.py").write_text(
        "import time\n\n\n\n\ndef stamp():\n    return time.time()\n"
    )
    report = lint_paths(config=config, baseline=baseline)
    assert not report.findings
    assert len(report.baselined) == 1


def test_baseline_roundtrip(tmp_path):
    findings = [
        Finding("wall-clock", "netsim/a.py", 4, "msg", "return time.time()"),
        Finding("wall-clock", "netsim/a.py", 9, "msg", "return time.time()"),
    ]
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert data["findings"][0]["count"] == 2
    assert len(Baseline.load(path)) == 2


def test_missing_baseline_file_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "nope.json")) == 0


# --------------------------------------------------------------- reporters


@pytest.fixture()
def sample_finding():
    return Finding(
        rule="wall-clock",
        path="src/repro/netsim/a.py",
        line=4,
        message="time.time() is wall-clock",
        snippet="return time.time()",
    )


def test_text_format(sample_finding):
    out = render_findings([sample_finding], "text")
    assert out == (
        "src/repro/netsim/a.py:4: wall-clock: time.time() is wall-clock"
    )


def test_json_format(sample_finding):
    rows = json.loads(render_findings([sample_finding], "json"))
    assert rows == [
        {
            "rule": "wall-clock",
            "path": "src/repro/netsim/a.py",
            "line": 4,
            "message": "time.time() is wall-clock",
            "snippet": "return time.time()",
        }
    ]


def test_github_format_escapes_percent(sample_finding):
    out = render_findings([sample_finding], "github")
    assert out.startswith("::error file=src/repro/netsim/a.py,line=4::")
    weird = Finding("r", "p.py", 1, "100% broken\nnext", "")
    escaped = render_findings([weird], "github")
    assert "100%25 broken%0Anext" in escaped


def test_unknown_format_raises(sample_finding):
    with pytest.raises(ValueError):
        render_findings([sample_finding], "yaml")


# -------------------------------------------------------------------- CLI


def lint_cli(config, *extra, baseline=None):
    argv = ["lint", str(config.src), "--root", str(config.root)]
    if baseline is not None:
        argv += ["--baseline", str(baseline)]
    argv += list(extra)
    return main(argv)


def test_cli_exit_one_on_findings_zero_when_clean(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD_NETSIM})
    assert lint_cli(config, baseline=tmp_path / "none.json") == 1
    out, err = capsys.readouterr()
    assert "wall-clock" in out
    assert "suppress with" in err

    (config.src / "netsim" / "a.py").write_text("X = 1\n")
    assert lint_cli(config, baseline=tmp_path / "none.json") == 0
    out, _ = capsys.readouterr()
    assert "lint: clean" in out


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD_NETSIM})
    baseline = tmp_path / "baseline.json"
    assert lint_cli(config, "--write-baseline", baseline=baseline) == 0
    assert "wrote 1 finding(s)" in capsys.readouterr().out
    assert lint_cli(config, baseline=baseline) == 0


def test_cli_stats_prints_per_rule_counts(tmp_path, capsys):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/a.py": """
                import time
                import random

                X = random.random()

                def stamp():
                    return time.time()  # lint: disable=wall-clock -- fixture
            """,
        },
    )
    code = lint_cli(config, "--stats", baseline=tmp_path / "none.json")
    out = capsys.readouterr().out
    assert code == 1
    assert "unseeded-random" in out
    assert "totals: 1 active, 1 suppressed, 0 baselined" in out


def test_cli_rules_filter_and_unknown_rule(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD_NETSIM})
    # Filtered to an unrelated rule: the wall-clock violation is unseen.
    assert (
        lint_cli(
            config,
            "--rules",
            "set-iteration",
            baseline=tmp_path / "none.json",
        )
        == 0
    )
    capsys.readouterr()
    assert lint_cli(config, "--rules", "no-such-rule") == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "wall-clock",
        "unseeded-random",
        "set-iteration",
        "id-keyed-dict",
        "environ-read",
        "lock-discipline",
        "sqlite-thread",
        "blocking-under-lock",
        "stack-profile-fields",
        "cca-hook-surface",
        "cli-doc-coverage",
        "lock-order-cycle",
        "lock-held-blocking",
        "taint-identity",
    ):
        assert rule_id in out


def test_cli_github_format(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD_NETSIM})
    code = lint_cli(
        config, "--format", "github", baseline=tmp_path / "none.json"
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "::error file=" in out


def test_parse_error_gates(tmp_path, capsys):
    config = make_project(
        tmp_path, {"src/repro/netsim/a.py": "def broken(:\n"}
    )
    assert lint_cli(config, baseline=tmp_path / "none.json") == 1
    assert "parse-error" in capsys.readouterr().out


# ------------------------------------------------- acceptance: repo clean


def test_repo_at_head_is_clean():
    """The CI gate itself: src/repro at HEAD lints clean."""
    root = find_repo_root(Path(__file__).resolve().parent)
    config = LintConfig.for_root(root)
    report = lint_paths(config=config)
    assert report.ok, render_findings(
        report.findings + report.parse_errors, "text"
    )
    # Every inline suppression in the tree carries a justification and
    # is actually used (dead suppressions would rot silently).
    assert all(f.rule != "suppression-justification" for f in report.findings)


def test_repo_lint_runs_fast_enough():
    """The CI job budget is 30s; the lint itself must be well inside it."""
    import time as _time

    root = find_repo_root(Path(__file__).resolve().parent)
    config = LintConfig.for_root(root)
    start = _time.perf_counter()
    lint_paths(config=config)
    assert _time.perf_counter() - start < 30.0
