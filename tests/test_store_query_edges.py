"""Edge cases of ResultStore.query / export and the gc sweep."""

import json
import math

import numpy as np
import pytest

from repro.harness.config import NetworkCondition
from repro.store import ResultStore, StoreError

COND = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1.0)


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "edge.db")) as s:
        yield s


class TestQueryEdges:
    def test_empty_run_queries_to_nothing(self, store):
        store.ensure_run("empty")
        assert store.query(run="empty") == []
        assert ResultStore.export_json(store.query(run="empty")) == "[]"
        csv_text = ResultStore.export_csv(store.query(run="empty"))
        assert csv_text.strip().splitlines()[0].startswith("run,")
        assert len(csv_text.strip().splitlines()) == 1  # header only

    def test_unknown_run_raises_store_error(self, store):
        with pytest.raises(StoreError) as err:
            store.query(run="never-recorded")
        assert "unknown run" in str(err.value)
        with pytest.raises(StoreError):
            store.query(run=999)

    def test_nan_round_trips_as_null(self, store):
        # SQLite has no NaN: it stores as NULL, query returns None, and
        # JSON export says null (never the invalid bare `NaN` token).
        store.ensure_run("nan")
        store.record_metrics(
            "nan", "quiche", "cubic",
            {"conf": float("nan"), "conf_t": 0.5}, condition=COND,
        )
        values = {r.metric: r.value for r in store.query(run="nan")}
        assert values["conf"] is None
        assert values["conf_t"] == 0.5
        exported = ResultStore.export_json(store.query(run="nan"))
        parsed = {r["metric"]: r["value"] for r in json.loads(exported)}
        assert parsed["conf"] is None

    def test_infinities_round_trip_exactly(self, store):
        store.ensure_run("inf")
        store.record_metrics(
            "inf", "quiche", "cubic",
            {"up": math.inf, "down": -math.inf}, condition=COND,
        )
        values = {r.metric: r.value for r in store.query(run="inf")}
        assert values["up"] == math.inf
        assert values["down"] == -math.inf

    def test_conjunctive_filters(self, store):
        store.ensure_run("multi")
        store.record_metrics("multi", "quiche", "cubic", {"conf": 1.0},
                             condition=COND)
        store.record_metrics("multi", "xquic", "cubic", {"conf": 2.0},
                             condition=COND)
        rows = store.query(run="multi", stack="quiche", metric="conf")
        assert [r.value for r in rows] == [1.0]
        assert store.query(run="multi", stack="quiche", cca="bbr") == []


class TestGc:
    def _populate(self, store):
        run = store.ensure_run("kept")
        store.put_trials([("linked", np.arange(8.0))], run=run)
        store.put_trials(
            [("orphan-a", np.zeros(256)), ("orphan-b", np.ones(64))]
        )

    def test_dry_run_reports_without_deleting(self, store):
        self._populate(store)
        report = store.gc(dry_run=True)
        assert report["trials_total"] == 3
        assert report["unlinked"] == 2
        assert report["unlinked_bytes"] > 0
        assert report["purged"] == 0
        assert store.counts()["trials"] == 3  # nothing touched

    def test_gc_purges_only_unlinked_and_vacuums(self, store):
        self._populate(store)
        report = store.gc()
        assert report["unlinked"] == 2
        assert report["purged"] == 2
        assert store.counts()["trials"] == 1
        assert store.get_trial("linked") is not None
        assert store.get_trial("orphan-a") is None
        assert report["size_after"] > 0
        # A second sweep finds nothing.
        assert store.gc()["unlinked"] == 0

    def test_gc_on_empty_store(self, store):
        report = store.gc()
        assert report["trials_total"] == 0
        assert report["purged"] == 0
