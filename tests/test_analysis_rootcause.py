"""The §6 automatic root-cause classifier."""

import pytest

from repro.analysis.rootcause import (
    RootCauseHint,
    Suspect,
    classify,
    diagnose_stack,
)
from repro.core.conformance import ConformanceResult
from repro.core.envelope import EnvelopeConfig, build_envelope
from repro.harness.config import NetworkCondition
from repro.harness.conformance import ConformanceMeasurement
from repro.harness.runner import Impl

import numpy as np


def make_result(conf, conf_t, dtput, ddelay):
    pe = build_envelope([np.random.default_rng(0).normal((10, 10), 1, (20, 2))],
                        EnvelopeConfig(k=1))
    return ConformanceResult(
        conformance=conf,
        conformance_t=conf_t,
        conformance_legacy=conf,
        delta_throughput_mbps=dtput,
        delta_delay_ms=ddelay,
        test_envelope=pe,
        reference_envelope=pe,
    )


def test_conformant_case():
    hint = classify(make_result(0.8, 0.85, 0.2, 0.1))
    assert hint.suspect is Suspect.CONFORMANT


def test_pacing_overshoot_signature():
    """mvfst BBR's Table 3 row: (0, 0.7, +9, 0)."""
    hint = classify(make_result(0.0, 0.7, 9.0, 0.0))
    assert hint.suspect is Suspect.SENDING_RATE


def test_cwnd_overshoot_signature():
    """Fig 5's cwnd-gain pattern: both deltas positive."""
    hint = classify(make_result(0.2, 0.7, 5.0, 4.0))
    assert hint.suspect is Suspect.CWND_OVERSHOOT


def test_stack_deficit_signature():
    """xquic Reno's Table 3 row: (0.38, 0.81, -4, -3)."""
    hint = classify(make_result(0.38, 0.81, -4.0, -3.0))
    assert hint.suspect is Suspect.STACK_DEFICIT


def test_algorithmic_difference_when_translation_does_not_help():
    hint = classify(make_result(0.1, 0.15, 0.5, 0.2))
    assert hint.suspect is Suspect.ALGORITHMIC


def test_delay_only_shift():
    hint = classify(make_result(0.3, 0.6, 0.0, -5.0))
    assert hint.suspect is Suspect.DELAY_SHIFT


def test_hint_renders():
    hint = classify(make_result(0.0, 0.7, 9.0, 0.0))
    assert "pacing" in str(hint)
    assert 0 <= hint.confidence <= 1


def _measurement(stack, cca, conf, conf_t, dtput, ddelay):
    return ConformanceMeasurement(
        impl=Impl(stack, cca),
        condition=NetworkCondition(20, 10, 1),
        result=make_result(conf, conf_t, dtput, ddelay),
    )


class TestStackDiagnosis:
    def test_common_direction_blames_stack(self):
        """§6: all CCAs of one stack deviating the same way -> stack issue."""
        measurements = [
            _measurement("xquic", "cubic", 0.3, 0.7, -3.0, -2.0),
            _measurement("xquic", "reno", 0.38, 0.81, -4.0, -3.0),
        ]
        diagnosis = diagnose_stack("xquic", measurements)
        assert diagnosis.stack_level_suspected
        assert "stack" in diagnosis.rationale

    def test_mixed_directions_blame_ccas(self):
        measurements = [
            _measurement("mvfst", "cubic", 0.8, 0.85, 0.0, 0.0),
            _measurement("mvfst", "bbr", 0.0, 0.7, 9.0, 0.0),
        ]
        diagnosis = diagnose_stack("mvfst", measurements)
        assert not diagnosis.stack_level_suspected
        assert diagnosis.per_cca["bbr"].suspect is Suspect.SENDING_RATE

    def test_wrong_stack_rejected(self):
        with pytest.raises(ValueError):
            diagnose_stack("xquic", [_measurement("neqo", "cubic", 0.1, 0.6, -5, -4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            diagnose_stack("xquic", [])
