"""FabricFrontDoor: the asyncio front door over a real socket.

Same route table as the threaded ``ServiceApp`` (both consume
``ServiceRouter``), so the assertions here mirror the service HTTP
suite: submit/long-poll/SSE and the fabric worker protocol must all
work against the event-loop transport, including malformed requests
and connection reuse.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.fabric.coordinator import Coordinator
from repro.fabric.frontdoor import FabricFrontDoor
from repro.fabric.worker import FabricWorker, LocalTransport
from repro.faults.retry import RetryPolicy
from repro.harness.cache import CACHE_DIR_ENV
from repro.service import ServiceClient, ServiceError

TINY = {
    "kind": "conformance",
    "stacks": ["xquic"],
    "ccas": ["cubic"],
    "duration_s": 3,
    "trials": 2,
    "run": "frontdoor-test",
}


@pytest.fixture(scope="module")
def frontdoor(tmp_path_factory):
    """Front door + coordinator + one local worker draining the queue."""
    import os

    root = tmp_path_factory.mktemp("frontdoor")
    before = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(root / "cache")
    coordinator = Coordinator(str(root / "store.db"), lease_ttl_s=5.0)
    coordinator.ensure_tenant("teamA", weight=2)
    door = FabricFrontDoor(str(root / "store.db"), scheduler=coordinator)
    door.start()
    worker = FabricWorker(
        LocalTransport(coordinator),
        name="door-worker",
        store_path=coordinator.store_path,
        poll_s=0.05,
        ttl_s=5.0,
    )
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    client = ServiceClient(door.url, timeout_s=30.0)
    try:
        yield door, client, coordinator
    finally:
        worker.stop()
        thread.join(timeout=10.0)
        door.stop(drain=False)
        if before is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = before


def test_healthz_and_keepalive(frontdoor):
    door, client, _ = frontdoor
    assert client.health()["status"] == "ok"
    # Two requests down one kept-alive connection.
    host, port = door.address
    conn = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        for _ in range(2):
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
    finally:
        conn.close()


def test_submit_longpoll_and_wait(frontdoor):
    _, client, _ = frontdoor
    accepted = client.submit(TINY, tenant="teamA")
    assert accepted["state"] in ("pending", "running")
    page = client.events(accepted["id"], after=0, timeout_s=5.0)
    assert page["events"], "long-poll returned no events"
    assert page["next"] >= len(page["events"])
    final = client.wait(accepted["id"], timeout_s=120.0)
    assert final["state"] == "done"
    assert final["progress"]["done"] == final["progress"]["total"] > 0
    rows = client.metrics("frontdoor-test")
    assert rows


def test_sse_stream_ends_with_final_snapshot(frontdoor):
    door, client, _ = frontdoor
    accepted = client.submit(dict(TINY, note="sse"))
    host, port = door.address
    conn = http.client.HTTPConnection(host, port, timeout=60.0)
    try:
        conn.request(
            "GET",
            f"/campaigns/{accepted['id']}/events?stream=1",
            headers={"Accept": "text/event-stream"},
        )
        response = conn.getresponse()
        assert response.status == 200
        assert "text/event-stream" in response.getheader("Content-Type")
        body = b""
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            chunk = response.read(256)
            if not chunk:
                break
            body += chunk
            tail = body.split(b"event: end")
            if len(tail) > 1 and b"\n\n" in tail[-1]:
                break  # the final frame arrived in full
        text = body.decode()
        assert "event: end" in text
        assert '"state": "done"' in text.split("event: end")[-1]
    finally:
        conn.close()


def test_fabric_worker_protocol_over_http(frontdoor):
    _, client, _ = frontdoor
    status = client.fabric_status()
    assert "depth" in status and "tenants" in status
    accepted = client.submit(dict(TINY, note="protocol"))
    lease = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and lease is None:
        lease = client.fabric_lease("http-probe", ttl_s=30.0)
        if lease is not None and lease["campaign"] != accepted["id"]:
            # Raced another test's campaign: give it back untouched.
            client.fabric_fail(
                lease["campaign"], lease["lease_id"], "probe", retryable=True
            )
            lease = None
        time.sleep(0.05)
    assert lease is not None, "the probe never won the lease"
    beat = client.fabric_heartbeat(
        lease["campaign"],
        lease["lease_id"],
        ttl_s=30.0,
        progress=[{"event": "trial", "status": "ok", "done": 1, "total": 4}],
    )
    assert beat["ok"] is True
    # Hand the campaign back; the resident worker finishes it for real.
    outcome = client.fabric_fail(
        lease["campaign"], lease["lease_id"], "probe done", retryable=True
    )
    assert outcome["outcome"] == "retried"
    final = client.wait(accepted["id"], timeout_s=120.0)
    assert final["state"] == "done"


def test_prometheus_exposes_fabric_series(frontdoor):
    _, client, _ = frontdoor
    text = client.metrics_text()
    assert "repro_fabric_queue_depth" in text
    assert 'repro_fabric_tenant_backlog{tenant="teamA"}' in text


def test_unknown_routes_and_campaigns_404(frontdoor):
    _, client, _ = frontdoor
    with pytest.raises(ServiceError) as err:
        client.request("GET", "/no/such/route")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.status("c9999-missing")
    assert err.value.status == 404


def test_malformed_json_body_is_400(frontdoor):
    door, _, _ = frontdoor
    host, port = door.address
    with socket.create_connection((host, port), timeout=10.0) as sock:
        payload = b"not-json!"
        sock.sendall(
            b"POST /campaigns HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(payload)).encode() + b"\r\n\r\n"
            + payload
        )
        head = sock.recv(4096).decode()
    assert head.startswith("HTTP/1.1 400")


def test_client_reconnects_through_retry_policy(frontdoor):
    """Satellite contract: dropped long-polls (status 0) reconnect via
    the unified RetryPolicy with the cursor intact — no event lost."""
    door, _, _ = frontdoor
    client = ServiceClient(
        door.url,
        timeout_s=30.0,
        reconnect=RetryPolicy(
            max_attempts=10, backoff_s=0.01, backoff_cap_s=0.01,
            sleep=lambda s: None,
        ),
    )
    accepted = client.submit(dict(TINY, note="reconnect"))
    real_request = client._request
    drops = {"left": 2}

    def flaky(method, path, **kwargs):
        if "/events" in path and drops["left"] > 0:
            drops["left"] -= 1
            raise ServiceError(0, "connection failed: injected reset")
        return real_request(method, path, **kwargs)

    client._request = flaky
    events = list(client.stream(accepted["id"]))
    assert drops["left"] == 0, "the injected drops were never exercised"
    assert any(e.get("event") == "state" for e in events)
    seqs = [e["seq"] for e in events if "seq" in e]
    assert seqs == sorted(set(seqs)), "reconnect lost or duplicated events"
    assert client.status(accepted["id"])["state"] == "done"
