"""pcap export and the full-matrix driver."""

import struct

import pytest

from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.matrix import CSV_HEADERS, run_matrix
from repro.netsim.pcap import PCAP_MAGIC, read_pcap_summary, write_pcap
from repro.netsim.trace import FlowTrace

QUICK = ExperimentConfig(duration_s=10.0, trials=2)
CONDITION = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)


def make_trace(n=20):
    trace = FlowTrace(3, label="x")
    for i in range(n):
        trace.on_delivery(1.0 + i * 0.01, 1.0 + i * 0.01 - 0.02, i, 1200, i == 5)
    return trace


class TestPcap:
    def test_round_trip_summary(self, tmp_path):
        path = str(tmp_path / "flow.pcap")
        count = write_pcap(make_trace(), path)
        assert count == 20
        summary = read_pcap_summary(path)
        assert summary["packets"] == 20
        assert summary["retransmissions"] == 1
        assert summary["duration_s"] == pytest.approx(0.19, abs=0.01)
        assert summary["throughput_bps"] > 0

    def test_global_header_magic_and_linktype(self, tmp_path):
        path = str(tmp_path / "flow.pcap")
        write_pcap(make_trace(2), path)
        with open(path, "rb") as f:
            header = f.read(24)
        magic, major, minor, _, _, snaplen, linktype = struct.unpack(
            "!IHHiIII", header
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert linktype == 1  # Ethernet

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.pcap")
        assert write_pcap(FlowTrace(0), path) == 0
        summary = read_pcap_summary(path)
        assert summary["packets"] == 0

    def test_rejects_non_pcap(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(ValueError):
            read_pcap_summary(str(path))

    def test_ipv4_checksum_valid(self, tmp_path):
        path = str(tmp_path / "flow.pcap")
        write_pcap(make_trace(1), path)
        with open(path, "rb") as f:
            f.read(24 + 16)  # headers
            frame = f.read(14 + 20)
        ip_header = frame[14:]
        # Recomputing the checksum over the header must give zero.
        total = 0
        for i in range(0, 20, 2):
            total += (ip_header[i] << 8) + ip_header[i + 1]
        while total > 0xFFFF:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF

    def test_simulated_flow_exports(self, tmp_path):
        from repro.harness.runner import Impl, reference_impl, run_pair

        result = run_pair(
            Impl("quicgo", "cubic"), reference_impl("cubic"), CONDITION, 5.0, seed=1
        )
        path = str(tmp_path / "sim.pcap")
        count = write_pcap(result.first.trace, path)
        assert count > 100
        summary = read_pcap_summary(path)
        assert summary["throughput_bps"] == pytest.approx(
            result.first.trace.mean_throughput_bps(), rel=0.05
        )


class TestMatrix:
    def test_small_matrix(self, fresh_cache):
        conditions = [
            NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1),
            NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=3),
        ]
        seen = []
        result = run_matrix(
            conditions=conditions,
            implementations=[("quicgo", "cubic"), ("quicgo", "reno")],
            config=QUICK,
            cache=fresh_cache,
            progress=seen.append,
        )
        assert len(result.measurements) == 4
        assert len(seen) == 4
        rows = result.rows()
        assert len(rows) == 4 and len(rows[0]) == len(CSV_HEADERS)

    def test_csv_export(self, tmp_path, fresh_cache):
        result = run_matrix(
            conditions=[CONDITION],
            implementations=[("quicgo", "reno")],
            config=QUICK,
            cache=fresh_cache,
        )
        path = tmp_path / "matrix.csv"
        result.save_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",")[:3] == ["stack", "cca", "variant"]
        assert len(lines) == 2

    def test_cell_lookup_and_worst(self, fresh_cache):
        result = run_matrix(
            conditions=[CONDITION],
            implementations=[("quicgo", "reno"), ("neqo", "cubic")],
            config=QUICK,
            cache=fresh_cache,
        )
        cell = result.cell("quicgo", "reno", CONDITION)
        assert cell is not None and cell.impl.stack == "quicgo"
        assert result.cell("quicgo", "reno", NetworkCondition(99, 1, 1)) is None
        worst = result.worst_cells(1)[0]
        assert worst.conformance == min(m.conformance for m in result.measurements)
