"""Harness configuration, scenarios and the result cache."""

import numpy as np
import pytest

from repro.harness import scenarios
from repro.harness.cache import ResultCache, cache_key
from repro.harness.config import (
    ExperimentConfig,
    NetworkCondition,
    paper_experiment_config,
    quick_experiment_config,
)


class TestNetworkCondition:
    def test_unit_conversions(self):
        cond = NetworkCondition(bandwidth_mbps=20, rtt_ms=10, buffer_bdp=1)
        assert cond.bandwidth_bps == 20e6
        assert cond.rtt_s == 0.01
        link = cond.link_config()
        assert link.bandwidth_bps == 20e6
        assert link.queue_capacity() == 25000

    def test_jitter_capped_below_serialization(self):
        slow = NetworkCondition(bandwidth_mbps=20, rtt_ms=10, buffer_bdp=1)
        fast = NetworkCondition(bandwidth_mbps=100, rtt_ms=10, buffer_bdp=1)
        assert slow.jitter_s() <= 0.25e-3
        # At 100 Mbps the packet time is ~0.116 ms: jitter must shrink so
        # it cannot reorder past the loss-detection threshold.
        assert fast.jitter_s() < slow.jitter_s()
        assert fast.jitter_s() <= 1448 * 8 / 100e6

    def test_describe(self):
        assert NetworkCondition(20, 10, 1).describe() == "20mbps-10ms-1bdp"
        assert NetworkCondition(20, 10, 1, label="x").describe() == "x"

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkCondition(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            NetworkCondition(rtt_ms=-1)
        with pytest.raises(ValueError):
            NetworkCondition(buffer_bdp=0)


class TestExperimentConfig:
    def test_defaults_and_paper_profile(self):
        default = ExperimentConfig()
        paper = paper_experiment_config()
        quick = quick_experiment_config()
        assert paper.duration_s == 120.0 and paper.trials == 5
        assert quick.duration_s < default.duration_s <= paper.duration_s

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(duration_s=0)
        with pytest.raises(ValueError):
            ExperimentConfig(trials=0)


class TestScenarios:
    def test_full_matrix_is_sixteen_conditions(self):
        matrix = scenarios.full_matrix()
        assert len(matrix) == 16
        assert len({c.describe() for c in matrix}) == 16

    def test_buffer_sweep_axis(self):
        sweep = scenarios.buffer_sweep()
        assert [c.buffer_bdp for c in sweep] == [0.5, 1.0, 3.0, 5.0]

    def test_named_conditions(self):
        assert scenarios.shallow_buffer().buffer_bdp == 1.0
        assert scenarios.deep_buffer().buffer_bdp == 5.0
        assert scenarios.fairness_condition().rtt_ms == 50.0
        assert scenarios.inter_cca_deep().buffer_bdp == 5.0


class TestResultCache:
    def test_memoizes(self):
        cache = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return np.array([1.0, 2.0])

        a = cache.get_or_compute("k", compute)
        b = cache.get_or_compute("k", compute)
        assert len(calls) == 1
        assert (a == b).all()
        assert cache.hits == 1 and cache.misses == 1

    def test_disabled_cache_always_computes(self):
        cache = ResultCache(enabled=False)
        calls = []
        cache.get_or_compute("k", lambda: calls.append(1) or np.zeros(1))
        cache.get_or_compute("k", lambda: calls.append(1) or np.zeros(1))
        assert len(calls) == 2

    def test_disk_persistence(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        value = np.arange(5.0)
        cache.get_or_compute("key1", lambda: value)
        # A fresh cache instance reads from disk.
        cache2 = ResultCache(directory=tmp_path)
        loaded = cache2.get_or_compute("key1", lambda: pytest.fail("should hit disk"))
        assert (loaded == value).all()

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.get_or_compute("key1", lambda: np.ones(3))
        cache.clear_memory()
        loaded = cache.get_or_compute("key1", lambda: pytest.fail("should hit disk"))
        assert loaded.shape == (3,)

    def test_env_directory_resolved_lazily(self, tmp_path, monkeypatch):
        monkeypatch.delenv("QUICBENCH_CACHE_DIR", raising=False)
        cache = ResultCache()  # constructed while the env var is unset
        assert cache.directory is None
        monkeypatch.setenv("QUICBENCH_CACHE_DIR", str(tmp_path))
        assert cache.directory == tmp_path
        cache.put("lazy", np.ones(2))
        assert (tmp_path / "lazy.npy").exists()

    def test_explicit_directory_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("QUICBENCH_CACHE_DIR", str(tmp_path / "env"))
        cache = ResultCache(directory=tmp_path / "explicit")
        assert cache.directory == tmp_path / "explicit"

    def test_lru_eviction_bounds_memory(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.zeros(1))
        cache.get("a")  # touch: "b" is now the least recently used
        cache.put("c", np.zeros(1))
        assert cache.evictions == 1
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None and cache.get("c") is not None
        assert len(cache._memory) == 2

    def test_max_entries_env_override(self, monkeypatch):
        monkeypatch.setenv("QUICBENCH_CACHE_MAX_ENTRIES", "7")
        assert ResultCache().max_entries == 7

    def test_counters_snapshot(self):
        cache = ResultCache(max_entries=1)
        cache.get("absent")
        cache.put("a", np.zeros(1))
        cache.put("b", np.zeros(1))
        cache.get("b")
        assert cache.counters() == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "disk_errors": 0,
            "entries": 1,
        }

    def test_tmp_names_unique_across_calls(self, tmp_path):
        from repro.harness.cache import _tmp_path

        target = tmp_path / "deadbeef.npy"
        names = {_tmp_path(target).name for _ in range(32)}
        assert len(names) == 32  # per-process counter: no collisions
        assert all(name.endswith(".tmp.npy") for name in names)


class TestCacheKey:
    def test_stable_and_sensitive(self):
        a = cache_key(x=1, y="z")
        assert a == cache_key(y="z", x=1)  # order-insensitive
        assert a != cache_key(x=2, y="z")
        assert len(a) == 32

    def test_handles_nested_structures(self):
        key = cache_key(cfg={"a": [1, 2], "b": (3, 4)})
        assert isinstance(key, str)
