"""Documentation consistency: DESIGN.md's claims match the repository.

These meta-tests keep the paper-reproduction index honest: every bench
module DESIGN.md names must exist, every stack deviation documented in
DESIGN.md §3 must be encoded in the registry, and the examples README
advertises must be present.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_design_mentions_existing_bench_files():
    design = (REPO / "DESIGN.md").read_text()
    referenced = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design))
    assert referenced, "DESIGN.md should reference bench modules"
    for name in referenced:
        assert (REPO / "benchmarks" / name).exists(), f"missing {name}"


def test_every_bench_file_has_a_purpose_docstring():
    for path in (REPO / "benchmarks").glob("test_bench_*.py"):
        text = path.read_text()
        assert text.lstrip().startswith('"""'), f"{path.name} lacks a docstring"


def test_readme_examples_exist():
    readme = (REPO / "README.md").read_text()
    for name in re.findall(r"`(\w+\.py)`", readme):
        assert (REPO / "examples" / name).exists(), f"README references missing {name}"


def test_examples_are_runnable_scripts():
    for path in (REPO / "examples").glob("*.py"):
        text = path.read_text()
        assert '__name__ == "__main__"' in text, f"{path.name} is not runnable"
        assert text.lstrip("#!/usr/bin env python3\n").strip().startswith('"""') or '"""' in text.split("\n", 3)[1] or '"""' in text, (
            f"{path.name} lacks a module docstring"
        )


def test_design_stack_deviations_match_registry():
    from repro.stacks import registry

    design = (REPO / "DESIGN.md").read_text()
    # Every studied stack name appears in DESIGN.md.
    for profile in registry.quic_stacks():
        assert profile.name in design, f"{profile.name} undocumented in DESIGN.md"


def test_experiments_covers_every_table_and_figure():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for anchor in (
        "Table 1", "Table 3", "Figure 1", "Figure 2", "Figure 4",
        "Figure 5", "Figure 6", "Figure 11", "Figure 12", "Figure 13",
        "Table 4", "transitivity",
    ):
        assert anchor.lower() in experiments.lower(), f"EXPERIMENTS.md misses {anchor}"


def test_cache_schema_documented_in_extending_guide():
    guide = (REPO / "docs" / "extending.md").read_text()
    assert "CACHE_SCHEMA_VERSION" in guide
