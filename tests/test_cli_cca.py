"""The ``repro cca`` command group: list, describe, peer-matrix."""

import json

import pytest

from repro.cli import build_parser, main

EXTERNAL_MODULE = """\
from repro.cca.reno import NewReno
from repro.ccax import CCACapabilities, register_congestion_control


def make(mss):
    return NewReno(mss)


register_congestion_control(
    'clidemo', make,
    CCACapabilities(family='loss-based', description='cli test cca'),
    replace=True,
)
"""


@pytest.fixture
def external_module(tmp_path):
    module = tmp_path / "cli_cca.py"
    module.write_text(EXTERNAL_MODULE)
    try:
        yield module
    finally:
        from repro.ccax import registry

        registry.unregister("clidemo")


def test_cca_group_listed():
    text = build_parser().format_help()
    assert "cca" in text


def test_cca_list(capsys):
    assert main(["cca", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("cubic", "bbr", "reno", "bbr2", "bbr3", "gcc"):
        assert name in out
    assert "kernel-ref" in out
    assert "model-based" in out


def test_cca_list_includes_loaded_modules(external_module, capsys):
    assert main(["cca", "list", "--modules", str(external_module)]) == 0
    out = capsys.readouterr().out
    assert "clidemo" in out
    assert "user" in out  # origin column distinguishes external CCAs


def test_cca_describe(capsys):
    assert main(["cca", "describe", "bbr3"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["name"] == "bbr3"
    assert doc["origin"] == "builtin"
    assert doc["family"] == "model-based"


def test_cca_describe_unknown_fails(capsys):
    assert main(["cca", "describe", "vegas"]) == 1
    err = capsys.readouterr().err
    assert "unknown cca" in err


def test_cca_peer_matrix(tmp_path, capsys):
    store = tmp_path / "store.db"
    svg = tmp_path / "matrix.svg"
    code = main(
        [
            "cca", "peer-matrix",
            "--peers", "bbr3", "gcc",
            "--duration", "4", "--trials", "2",
            "--store", str(store), "--run", "cli-peer",
            "--svg", str(svg),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "bbr3" in out and "gcc" in out
    assert "peer-score" in out or "peer_score" in out or "score" in out
    assert "cells recorded" in out
    assert svg.exists() and "<svg" in svg.read_text()[:200]

    from repro.store import ResultStore

    with ResultStore(str(store)) as result_store:
        rows = list(result_store.query(run="cli-peer"))
    assert any(r.metric == "peer_conf" for r in rows)
    assert any(r.metric == "peer_score" for r in rows)


def test_cca_peer_matrix_with_external_peer(external_module, tmp_path, capsys):
    code = main(
        [
            "cca", "peer-matrix",
            "--peers", "clidemo", "cubic",
            "--modules", str(external_module),
            "--duration", "4", "--trials", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "clidemo" in out


def test_cca_peer_matrix_rejects_unknown_peer(capsys):
    code = main(["cca", "peer-matrix", "--peers", "vegas", "--duration", "4"])
    assert code != 0
