"""BBR v1 unit behaviour: state machine, model, gains."""

import pytest

from repro.cca.base import AckEvent
from repro.cca.bbr import BBR, BBRConfig, PACING_GAIN_CYCLE, STARTUP_GAIN

MSS = 1000


class Driver:
    """Feeds a BBR instance a synthetic steady ACK stream."""

    def __init__(self, bbr, rtt=0.05):
        self.bbr = bbr
        self.rtt = rtt
        self.now = 0.0
        self.round = 0

    def ack(self, rate_bytes_s, inflight=0, dt=0.01, rtt=None):
        self.now += dt
        self.bbr.on_ack(
            AckEvent(
                now=self.now,
                bytes_acked=MSS,
                rtt_sample=rtt if rtt is not None else self.rtt,
                delivery_rate=rate_bytes_s,
                is_app_limited=False,
                bytes_in_flight=inflight,
                round_count=self.round,
            )
        )

    def run_rounds(self, n, rate, inflight=0, acks_per_round=5, rtt=None):
        for _ in range(n):
            self.round += 1
            for _ in range(acks_per_round):
                self.ack(rate, inflight=inflight, rtt=rtt)


def test_startup_gains():
    bbr = BBR(MSS)
    assert bbr.state == BBR.STARTUP
    assert bbr.pacing_gain == pytest.approx(STARTUP_GAIN)
    assert bbr.in_slow_start


def test_startup_exits_on_bandwidth_plateau():
    bbr = BBR(MSS)
    driver = Driver(bbr)
    driver.run_rounds(3, rate=1e6)
    driver.run_rounds(2, rate=2e6)
    assert bbr.state == BBR.STARTUP
    # Plateau: three rounds without 25 % growth.
    driver.run_rounds(4, rate=2e6, inflight=100 * MSS)
    assert bbr.state in (BBR.DRAIN, BBR.PROBE_BW)


def test_drain_transitions_to_probe_bw_when_inflight_drops():
    bbr = BBR(MSS)
    driver = Driver(bbr)
    driver.run_rounds(3, rate=2e6)
    driver.run_rounds(4, rate=2e6, inflight=1000 * MSS)  # stay in drain
    assert bbr.state == BBR.DRAIN
    driver.run_rounds(1, rate=2e6, inflight=0)
    assert bbr.state == BBR.PROBE_BW
    assert bbr.cwnd_gain == pytest.approx(2.0)


def make_probe_bw_bbr(cwnd_gain=2.0, rate=2e6):
    bbr = BBR(MSS, BBRConfig(cwnd_gain=cwnd_gain))
    driver = Driver(bbr)
    driver.run_rounds(3, rate=rate)
    driver.run_rounds(4, rate=rate, inflight=1000 * MSS)
    driver.run_rounds(1, rate=rate, inflight=0)
    assert bbr.state == BBR.PROBE_BW
    return bbr, driver


def test_model_estimates():
    bbr, driver = make_probe_bw_bbr()
    assert bbr.btl_bw == pytest.approx(2e6)
    assert bbr.min_rtt == pytest.approx(0.05)
    assert bbr.bdp() == pytest.approx(2e6 * 0.05, rel=0.01)


def test_cwnd_converges_to_gain_times_bdp():
    bbr, driver = make_probe_bw_bbr(cwnd_gain=2.0)
    driver.run_rounds(30, rate=2e6, inflight=0)
    assert bbr.cwnd == pytest.approx(2.0 * 2e6 * 0.05, rel=0.05)


def test_higher_cwnd_gain_raises_target():
    default, d1 = make_probe_bw_bbr(cwnd_gain=2.0)
    xquic, d2 = make_probe_bw_bbr(cwnd_gain=2.5)
    # Enough acked bytes for both windows to converge to their targets.
    d1.run_rounds(80, rate=2e6, inflight=0)
    d2.run_rounds(80, rate=2e6, inflight=0)
    assert xquic.cwnd == pytest.approx(1.25 * default.cwnd, rel=0.05)


def test_pacing_rate_scale_applies():
    vanilla, _ = make_probe_bw_bbr()
    scaled = BBR(MSS, BBRConfig(pacing_rate_scale=1.25))
    driver = Driver(scaled)
    driver.run_rounds(3, rate=2e6)
    driver.run_rounds(4, rate=2e6, inflight=1000 * MSS)
    driver.run_rounds(1, rate=2e6, inflight=0)
    assert scaled.pacing_rate() == pytest.approx(1.25 * vanilla.pacing_rate(), rel=0.01)


def test_pacing_gain_cycles_in_probe_bw():
    bbr, driver = make_probe_bw_bbr()
    gains = set()
    for _ in range(400):
        driver.ack(2e6, inflight=int(0.8 * bbr.bdp()), dt=0.01)
        gains.add(round(bbr.pacing_gain, 3))
    assert 1.25 in gains
    assert 0.75 in gains
    assert 1.0 in gains


def test_probe_rtt_entered_after_min_rtt_expiry():
    bbr, driver = make_probe_bw_bbr()
    # 11 s with RTT strictly above the 50 ms min: window expires.
    for _ in range(1100):
        driver.ack(2e6, inflight=10 * MSS, dt=0.01, rtt=0.08)
    assert bbr.min_rtt == pytest.approx(0.08, rel=0.01)


def test_probe_rtt_caps_cwnd_and_exits():
    bbr, driver = make_probe_bw_bbr()
    saw_probe_rtt = False
    saw_small_cwnd = False
    for i in range(2500):
        driver.round += 1 if i % 5 == 0 else 0
        driver.ack(2e6, inflight=3 * MSS, dt=0.01, rtt=0.08)
        if bbr.state == BBR.PROBE_RTT:
            saw_probe_rtt = True
            saw_small_cwnd = saw_small_cwnd or bbr.cwnd <= 4 * MSS
    assert saw_probe_rtt
    assert saw_small_cwnd
    assert bbr.state == BBR.PROBE_BW  # exited again


def test_loss_packet_conservation_and_restore():
    bbr, driver = make_probe_bw_bbr()
    driver.run_rounds(30, rate=2e6, inflight=0)
    before = bbr.cwnd
    bbr.on_congestion_event(driver.now, bytes_in_flight=5 * MSS)
    assert bbr.cwnd == 5 * MSS
    bbr.on_recovery_exit(driver.now)
    assert bbr.cwnd == before


def test_rto_collapses_to_min_cwnd():
    bbr, _ = make_probe_bw_bbr()
    bbr.on_rto(1.0)
    assert bbr.cwnd == 4 * MSS


def test_min_rtt_not_postponed_by_standing_queue():
    """Observing the standing minimum must not defer PROBE_RTT forever."""
    bbr, driver = make_probe_bw_bbr()
    stamp_before = bbr._min_rtt_timestamp
    for _ in range(50):
        driver.ack(2e6, inflight=10 * MSS, dt=0.01, rtt=0.08)  # above min
    assert bbr._min_rtt_timestamp == stamp_before


def test_app_limited_samples_do_not_raise_bw():
    bbr, driver = make_probe_bw_bbr()
    bw = bbr.btl_bw
    driver.now += 0.01
    bbr.on_ack(
        AckEvent(
            now=driver.now,
            bytes_acked=MSS,
            rtt_sample=0.05,
            delivery_rate=10e6,
            is_app_limited=True,
            bytes_in_flight=0,
            round_count=driver.round,
        )
    )
    # An app-limited sample above the estimate IS taken (per BBR), but an
    # app-limited sample below it must be ignored.
    bbr2, driver2 = make_probe_bw_bbr()
    bw2 = bbr2.btl_bw
    driver2.now += 0.01
    bbr2.on_ack(
        AckEvent(
            now=driver2.now,
            bytes_acked=MSS,
            rtt_sample=0.05,
            delivery_rate=0.1e6,
            is_app_limited=True,
            bytes_in_flight=0,
            round_count=driver2.round + 1,
        )
    )
    assert bbr2.btl_bw == pytest.approx(bw2)


def test_invalid_config():
    for bad in (
        BBRConfig(initial_cwnd_packets=0),
        BBRConfig(cwnd_gain=0),
        BBRConfig(pacing_rate_scale=0),
        BBRConfig(bw_window_rounds=0),
    ):
        with pytest.raises(ValueError):
            bad.validate()


def test_debug_state_contents():
    bbr = BBR(MSS)
    state = bbr.debug_state()
    assert state["state"] == BBR.STARTUP
    assert "btl_bw" in state and "min_rtt" in state
