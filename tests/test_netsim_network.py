"""Dumbbell wiring: flows, cross traffic, determinism."""

import pytest

from repro.cca import NewReno
from repro.netsim import (
    CrossTrafficConfig,
    FlowSpec,
    LinkConfig,
    Network,
    run_flows,
)


def reno_flow(label, **kwargs):
    return FlowSpec(label=label, cca_factory=lambda: NewReno(1448), **kwargs)


LINK = LinkConfig(bandwidth_bps=10e6, rtt_s=0.02, buffer_bdp=1.0)


def test_single_flow_fills_link():
    results = run_flows(LINK, [reno_flow("solo")], duration=10.0, seed=1)
    assert results[0].mean_throughput_bps == pytest.approx(10e6, rel=0.08)


def test_two_flows_share_link():
    results = run_flows(
        LINK,
        [reno_flow("a"), reno_flow("b")],
        duration=15.0,
        seed=1,
        base_jitter_s=0.0004,
    )
    total = sum(r.mean_throughput_bps for r in results)
    assert total == pytest.approx(10e6, rel=0.10)
    shares = [r.mean_throughput_bps / total for r in results]
    assert 0.25 < shares[0] < 0.75


def test_same_seed_is_deterministic():
    a = run_flows(LINK, [reno_flow("a"), reno_flow("b")], duration=5.0, seed=7)
    b = run_flows(LINK, [reno_flow("a"), reno_flow("b")], duration=5.0, seed=7)
    assert a[0].mean_throughput_bps == b[0].mean_throughput_bps
    assert a[0].packets_sent == b[0].packets_sent


def test_different_seeds_differ_with_jitter():
    a = run_flows(
        LINK, [reno_flow("a"), reno_flow("b")], duration=5.0, seed=1, base_jitter_s=0.0004
    )
    b = run_flows(
        LINK, [reno_flow("a"), reno_flow("b")], duration=5.0, seed=2, base_jitter_s=0.0004
    )
    assert a[0].packets_sent != b[0].packets_sent


def test_flow_rtt_matches_configuration():
    results = run_flows(LINK, [reno_flow("solo")], duration=5.0, seed=1)
    trace = results[0].trace
    min_owd = min(r.one_way_delay for r in trace.records)
    # One-way delay >= propagation (10 ms) and bounded by queue (+20 ms).
    assert 0.009 < min_owd < 0.013


def test_extra_delay_applies_per_flow():
    flows = [reno_flow("near"), reno_flow("far", extra_delay_s=0.02)]
    results = run_flows(LINK, flows, duration=5.0, seed=1)
    near = min(r.one_way_delay for r in results[0].trace.records)
    far = min(r.one_way_delay for r in results[1].trace.records)
    assert far - near == pytest.approx(0.02, abs=0.005)


def test_start_time_honored():
    flows = [reno_flow("early"), reno_flow("late", start_time=3.0)]
    results = run_flows(LINK, flows, duration=6.0, seed=1)
    first_late = results[1].trace.records[0].arrival_time
    assert first_late >= 3.0


def test_start_spread_randomizes_starts():
    flows = [reno_flow("a"), reno_flow("b")]
    results = run_flows(LINK, flows, duration=5.0, seed=9, start_spread_s=0.5)
    starts = [r.trace.records[0].sent_time for r in results]
    assert starts[0] != starts[1]


def test_cross_traffic_takes_bandwidth():
    cross = CrossTrafficConfig(rate_bps=4e6, mean_on_s=10.0, mean_off_s=0.001)
    solo = run_flows(LINK, [reno_flow("solo")], duration=10.0, seed=3)
    with_cross = run_flows(
        LINK, [reno_flow("solo")], duration=10.0, seed=3, cross_traffic=cross
    )
    assert (
        with_cross[0].mean_throughput_bps
        < solo[0].mean_throughput_bps - 1e6
    )


def test_drop_accounting_per_flow():
    net = Network(
        LinkConfig(bandwidth_bps=5e6, rtt_s=0.02, buffer_bdp=0.5),
        [reno_flow("a"), reno_flow("b")],
        seed=1,
        base_jitter_s=0.0004,
    )
    net.run(10.0)
    assert sum(net.drops_by_flow.values()) > 0


def test_requires_at_least_one_flow():
    with pytest.raises(ValueError):
        Network(LINK, [])


def test_link_config_validation():
    with pytest.raises(ValueError):
        LinkConfig(bandwidth_bps=0).validate()
    with pytest.raises(ValueError):
        LinkConfig(rtt_s=0).validate()
    assert LinkConfig(buffer_bytes=5000).queue_capacity() == 5000
    # Tiny BDP fractions still fit a few packets.
    tiny = LinkConfig(bandwidth_bps=1e6, rtt_s=0.001, buffer_bdp=0.5)
    assert tiny.queue_capacity() >= 3 * 1500
