"""Multi-process safety: a spawn pool hammering one warehouse file.

Worker functions are module-level so they pickle under the ``spawn``
start method (the same start method ``repro.exec`` uses).
"""

import multiprocessing as mp

import numpy as np

from repro.harness.config import NetworkCondition
from repro.store import ResultStore

COND = NetworkCondition(bandwidth_mbps=20.0, rtt_ms=10.0, buffer_bdp=1.0)

WORKERS = 4
WRITES_PER_WORKER = 25


def _hammer(args):
    """One worker: its own connection, many small write transactions."""
    path, worker = args
    with ResultStore(path) as store:
        run = store.ensure_run(f"run-{worker}")
        shared_run = store.ensure_run("shared")
        for i in range(WRITES_PER_WORKER):
            # Every worker also writes the same shared keys — the
            # content-addressed dedupe has to survive the race.
            store.put_trial(f"shared-{i}", np.full(8, float(i)), run=shared_run)
            store.put_trial(f"w{worker}-{i}", np.full(4, float(worker)), run=run)
            store.record_metrics(
                run, stack=f"stack{worker}", cca="cubic",
                metrics={"conf": i / WRITES_PER_WORKER}, condition=COND,
            )
        store.record_event("campaign_end", campaign=f"run-{worker}")
    return worker


def test_spawn_pool_hammering_one_database(tmp_path):
    path = str(tmp_path / "contested.db")
    ResultStore(path).close()  # bootstrap once so workers race only on writes
    ctx = mp.get_context("spawn")
    with ctx.Pool(WORKERS) as pool:
        done = pool.map(_hammer, [(path, w) for w in range(WORKERS)])
    assert sorted(done) == list(range(WORKERS))

    with ResultStore(path) as store:
        assert store.integrity_ok()
        counts = store.counts()
        # Shared keys deduped to one row each; private keys all distinct.
        assert counts["trials"] == WRITES_PER_WORKER * (WORKERS + 1)
        assert counts["runs"] == WORKERS + 1
        # Each worker's metric upserts collapsed onto one measurement.
        assert counts["measurements"] == WORKERS
        assert counts["events"] == WORKERS
        for i in range(WRITES_PER_WORKER):
            assert np.array_equal(
                store.get_trial(f"shared-{i}"), np.full(8, float(i))
            )
        assert len(store.trial_keys("shared")) == WRITES_PER_WORKER
        for worker in range(WORKERS):
            (row,) = store.query(run=f"run-{worker}", metric="conf")
            assert row.value == (WRITES_PER_WORKER - 1) / WRITES_PER_WORKER


def test_two_connections_see_each_others_commits(tmp_path):
    path = tmp_path / "pair.db"
    a, b = ResultStore(path), ResultStore(path)
    try:
        a.put_trial("k", np.arange(4.0))
        assert b.has_trial("k")
        run = b.ensure_run("r")
        b.record_metrics(run, stack="s", cca="c", metrics={"conf": 0.5})
        (row,) = a.query(run="r")
        assert row.value == 0.5
    finally:
        a.close()
        b.close()
