"""Behavioural smoke test: every studied implementation actually runs.

Every (stack, cca) pair of Table 1 — plus each "fixed" variant — must
drive traffic through the simulator against the kernel reference without
errors and with sane accounting.
"""

import pytest

from repro.harness.config import NetworkCondition
from repro.harness.runner import Impl, reference_impl, run_pair
from repro.stacks import registry

CONDITION = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)

ALL_IMPLS = [
    (profile.name, cca) for profile, cca in registry.iter_implementations()
]


@pytest.mark.parametrize("stack,cca", ALL_IMPLS)
def test_implementation_moves_traffic(stack, cca):
    result = run_pair(Impl(stack, cca), reference_impl(cca), CONDITION, 6.0, seed=3)
    test_flow, ref_flow = result.first, result.second
    # Both flows deliver something and the link is not overcommitted.
    assert test_flow.mean_throughput_bps > 1e5
    assert ref_flow.mean_throughput_bps > 1e5
    total = test_flow.mean_throughput_bps + ref_flow.mean_throughput_bps
    assert total < 11e6
    # Trace accounting is internally consistent.
    assert test_flow.trace.total_bytes > 0
    assert test_flow.packets_sent >= len(test_flow.trace.records)


FIXED_VARIANTS = [
    ("chromium", "cubic"),
    ("mvfst", "bbr"),
    ("xquic", "bbr"),
    ("quiche", "cubic"),
]


@pytest.mark.parametrize("stack,cca", FIXED_VARIANTS)
def test_fixed_variant_moves_traffic(stack, cca):
    result = run_pair(
        Impl(stack, cca, "fixed"), reference_impl(cca), CONDITION, 6.0, seed=3
    )
    assert result.first.mean_throughput_bps > 1e5


def test_reference_nohystart_variant_runs():
    result = run_pair(
        Impl("linux", "cubic", "nohystart"), reference_impl("cubic"),
        CONDITION, 6.0, seed=3,
    )
    assert result.first.mean_throughput_bps > 1e5
