"""WorkQueue: lease lifecycle, expiry, DRR fairness, quotas, idempotence.

Everything here drives the queue with a fake clock, so lease expiry and
attempt accounting are exact — no sleeps, no wall-clock flake.
"""

import pytest

from repro.fabric.queue import (
    CANCELLED,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    QueueError,
    QuotaExceeded,
    WorkQueue,
)

SPEC = {"kind": "conformance", "stacks": ["quiche"], "ccas": ["cubic"]}


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def q(tmp_path, clock):
    with WorkQueue(str(tmp_path / "store.db"), clock=clock) as queue:
        yield queue


def test_lease_lifecycle(q):
    task = q.enqueue("c1", SPEC)
    assert task.state == PENDING and task.attempts == 0
    lease = q.lease("w1", ttl_s=30.0)
    assert lease.campaign == "c1"
    assert lease.attempt == 1
    assert q.task("c1").state == LEASED
    beat = q.heartbeat("c1", lease.lease_id, ttl_s=30.0)
    assert beat == {"ok": True, "cancel": False, "drain": False}
    assert q.complete("c1", lease.lease_id, {"cells": 1}) == "done"
    done = q.task("c1")
    assert done.state == DONE
    assert done.result == {"cells": 1}
    assert done.lease_id is None


def test_enqueue_is_idempotent_by_campaign(q):
    first = q.enqueue("c1", SPEC, priority=3)
    again = q.enqueue("c1", {"different": "spec"}, priority=9)
    assert again.spec == first.spec
    assert again.priority == first.priority == 3
    assert q.depth() == 1


def test_complete_twice_is_duplicate_not_error(q):
    q.enqueue("c1", SPEC)
    lease = q.lease("w1")
    assert q.complete("c1", lease.lease_id) == "done"
    assert q.complete("c1", lease.lease_id) == "duplicate"
    with pytest.raises(QueueError):
        q.complete("no-such-campaign", "L000000.1")


def test_expired_lease_returns_to_pending(q, clock):
    q.enqueue("c1", SPEC)
    first = q.lease("w1", ttl_s=10.0)
    clock.advance(10.1)
    assert q.sweep() == ["c1"]
    assert q.task("c1").state == PENDING
    second = q.lease("w2", ttl_s=10.0)
    assert second.attempt == 2
    assert second.lease_id != first.lease_id


def test_heartbeat_on_lost_lease_reports_not_ok(q, clock):
    q.enqueue("c1", SPEC)
    stale = q.lease("w1", ttl_s=5.0)
    clock.advance(6.0)
    q.lease("w2", ttl_s=30.0)  # sweeps, then re-leases to w2
    beat = q.heartbeat("c1", stale.lease_id)
    assert beat["ok"] is False
    # ... and the stale owner's completion must not clobber w2's lease.
    assert q.task("c1").lease_owner == "w2"


def test_heartbeat_extends_expiry(q, clock):
    q.enqueue("c1", SPEC)
    lease = q.lease("w1", ttl_s=10.0)
    clock.advance(8.0)
    q.heartbeat("c1", lease.lease_id, ttl_s=10.0)
    clock.advance(8.0)  # 16s after lease, but only 8s after the beat
    assert q.sweep() == []
    assert q.task("c1").state == LEASED


def test_attempt_cap_fails_task(tmp_path, clock):
    with WorkQueue(str(tmp_path / "s.db"), max_attempts=2, clock=clock) as q:
        q.enqueue("c1", SPEC)
        q.lease("w1", ttl_s=1.0)
        clock.advance(1.1)
        q.sweep()  # attempt 1 expired, under cap: back to pending
        q.lease("w1", ttl_s=1.0)
        clock.advance(1.1)
        q.sweep()  # attempt 2 expired at the cap: failed
        task = q.task("c1")
        assert task.state == FAILED
        assert "max_attempts=2" in task.error


def test_fail_retryable_requeues_then_terminal(q):
    q.enqueue("c1", SPEC)
    lease = q.lease("w1")
    assert q.fail("c1", lease.lease_id, "transient", retryable=True) == "retried"
    assert q.task("c1").state == PENDING
    lease = q.lease("w1")
    assert q.fail("c1", lease.lease_id, "fatal", retryable=False) == "failed"
    assert q.task("c1").error == "fatal"
    # A stale lease id is acknowledged, never applied.
    assert q.fail("c1", "L999999.9", "late", retryable=True) == "duplicate"


def test_cancel_pending_and_leased(q):
    q.enqueue("c1", SPEC)
    assert q.cancel("c1") == CANCELLED
    q.enqueue("c2", SPEC)
    lease = q.lease("w1")
    assert lease.campaign == "c2"
    assert q.cancel("c2") == "cancel-requested"
    beat = q.heartbeat("c2", lease.lease_id)
    assert beat == {"ok": True, "cancel": True, "drain": False}
    assert q.complete("c1", "any") == "cancelled"


def test_tenant_max_pending_quota(q):
    q.ensure_tenant("t", max_pending=1)
    q.enqueue("c1", SPEC, tenant="t")
    with pytest.raises(QuotaExceeded):
        q.enqueue("c2", SPEC, tenant="t")
    # Re-submitting an existing campaign never trips the quota.
    q.enqueue("c1", SPEC, tenant="t")
    lease = q.lease("w1")
    q.complete("c1", lease.lease_id)
    q.enqueue("c2", SPEC, tenant="t")  # slot freed


def test_tenant_max_active_blocks_leasing(q):
    q.ensure_tenant("t", max_active=1)
    q.enqueue("c1", SPEC, tenant="t")
    q.enqueue("c2", SPEC, tenant="t")
    first = q.lease("w1")
    assert first is not None
    assert q.lease("w2") is None  # tenant at its lease quota
    q.complete(first.campaign, first.lease_id)
    assert q.lease("w2") is not None


def test_deficit_round_robin_honours_weights(q):
    q.ensure_tenant("heavy", weight=2)
    q.ensure_tenant("light", weight=1)
    for i in range(6):
        q.enqueue(f"h{i}", SPEC, tenant="heavy")
        q.enqueue(f"l{i}", SPEC, tenant="light")
    order = []
    for _ in range(6):
        lease = q.lease("w", ttl_s=1000.0)
        order.append(lease.tenant)
        q.complete(lease.campaign, lease.lease_id)
    # Weight 2 drains twice per DRR round: heavy, heavy, light, repeat.
    assert order == ["heavy", "heavy", "light"] * 2


def test_priority_orders_within_tenant(q):
    q.enqueue("low", SPEC, priority=0)
    q.enqueue("high", SPEC, priority=5)
    assert q.lease("w1").campaign == "high"
    assert q.lease("w2").campaign == "low"


def test_status_snapshot(q, clock):
    q.ensure_tenant("t", weight=2)
    q.enqueue("c1", SPEC, tenant="t")
    q.enqueue("c2", SPEC, tenant="t")
    lease = q.lease("w1", ttl_s=30.0)
    status = q.status()
    assert status["depth"] == 2
    assert status["states"] == {PENDING: 1, LEASED: 1}
    tenant = status["tenants"]["t"]
    assert tenant["pending"] == 1 and tenant["leased"] == 1
    (live,) = status["leases"]
    assert live["campaign"] == lease.campaign
    assert live["owner"] == "w1"
    assert 0 < live["expires_in_s"] <= 30.0


# ----------------------------------------------------------- fleet registry


def test_lease_touch_registers_worker(q, clock):
    q.enqueue("c1", SPEC)
    q.lease("w1", ttl_s=30.0)
    (worker,) = q.workers()
    assert worker["name"] == "w1"
    assert worker["state"] == "active"
    assert worker["heartbeat_age_s"] == 0.0
    assert worker["leases"] == 1
    assert worker["leases_total"] == 1


def test_heartbeat_age_tracks_fake_clock(q, clock):
    q.register_worker("w1")
    clock.advance(12.5)
    assert q.worker_info("w1")["heartbeat_age_s"] == 12.5
    q.enqueue("c1", SPEC)
    lease = q.lease("w1", ttl_s=30.0)
    assert q.worker_info("w1")["heartbeat_age_s"] == 0.0
    clock.advance(5.0)
    q.heartbeat("c1", lease.lease_id, ttl_s=30.0)
    assert q.worker_info("w1")["heartbeat_age_s"] == 0.0


def test_drain_directive_surfaces_on_heartbeat(q):
    q.enqueue("c1", SPEC)
    lease = q.lease("w1", ttl_s=30.0)
    q.drain_worker("w1")
    beat = q.heartbeat("c1", lease.lease_id, ttl_s=30.0)
    assert beat == {"ok": True, "cancel": False, "drain": True}
    # The directive never revokes the lease: the worker finishes it.
    assert q.complete("c1", lease.lease_id, {"cells": 1}) == "done"


def test_draining_worker_gets_exit_order_instead_of_work(q):
    q.enqueue("c1", SPEC)
    q.drain_worker("w1")
    assert q.lease("w1", ttl_s=30.0) == {"drain": True}
    # The task is untouched, and another worker picks it up.
    assert q.task("c1").state == PENDING
    lease = q.lease("w2", ttl_s=30.0)
    assert lease.campaign == "c1"


def test_drain_is_sticky_against_concurrent_heartbeat(q):
    """The race audit: a heartbeat arriving after the drain directive
    must not flip the worker back to active."""
    q.enqueue("c1", SPEC)
    lease = q.lease("w1", ttl_s=30.0)
    q.drain_worker("w1")
    for _ in range(3):
        beat = q.heartbeat("c1", lease.lease_id, ttl_s=30.0)
        assert beat["drain"] is True
    assert q.worker_info("w1")["state"] == "draining"


def test_register_clears_drain_for_replacement(q):
    """Re-registering is the new code version taking over: the restarted
    process starts active even if the old row said draining."""
    q.drain_worker("w1")
    info = q.register_worker("w1", version="v2")
    assert info["state"] == "active"
    assert info["version"] == "v2"


def test_drain_before_first_heartbeat_is_durable(q):
    q.drain_worker("w-unborn")
    assert q.worker_info("w-unborn")["state"] == "draining"
    assert q.lease("w-unborn", ttl_s=30.0) == {"drain": True}


def test_deregister_keeps_history_but_hides_worker(q):
    q.register_worker("w1")
    q.deregister_worker("w1")
    assert q.workers() == []
    info = q.worker_info("w1")
    assert info is not None and info["state"] == "exited"


def test_exited_worker_reactivates_on_new_lease(q, clock):
    q.register_worker("w1")
    q.deregister_worker("w1")
    q.enqueue("c1", SPEC)
    q.lease("w1", ttl_s=30.0)
    assert q.worker_info("w1")["state"] == "active"


def test_heartbeat_after_expiry_sweeps_first(q, clock):
    """Regression for the heartbeat/expiry race: a heartbeat landing at
    (or after) the expiry instant must observe the sweep, not resurrect
    the lease it lost."""
    q.enqueue("c1", SPEC)
    lease = q.lease("w1", ttl_s=30.0)
    clock.advance(30.0)  # expiry is inclusive: lease_expires_at <= now
    beat = q.heartbeat("c1", lease.lease_id, ttl_s=30.0)
    assert beat["ok"] is False
    task = q.task("c1")
    assert task.state == PENDING and task.lease_id is None
    # The next lease is attempt 2 under a fresh lease id.
    release = q.lease("w2", ttl_s=30.0)
    assert release.attempt == 2
    assert release.lease_id != lease.lease_id


def test_expired_worker_lease_count_drops(q, clock):
    q.enqueue("c1", SPEC)
    q.lease("w1", ttl_s=30.0)
    assert q.worker_info("w1")["leases"] == 1
    clock.advance(31.0)
    q.sweep()
    assert q.worker_info("w1")["leases"] == 0


def test_status_includes_fleet_registry(q, clock):
    q.enqueue("c1", SPEC)
    q.lease("w1", ttl_s=30.0)
    q.drain_worker("w2")
    status = q.status()
    by_name = {w["name"]: w for w in status["workers"]}
    assert by_name["w1"]["state"] == "active"
    assert by_name["w1"]["leases"] == 1
    assert by_name["w2"]["state"] == "draining"
