"""Sharded warehouses: routing, degraded reads, recovery, merge, gc.

The contract under test is the honest-degradation one: losing a shard
never silently narrows a result set — reads of lost payloads raise a
typed :class:`ShardLostError`, per-run reports carry a ``partial`` flag
with the exact missing keys, and recovery (``recover_shard`` plus a
re-run or merge) restores the store bit-identically.
"""

import json

import numpy as np
import pytest

from repro.store import (
    ResultStore,
    ShardLostError,
    ShardedResultStore,
    StoreError,
    open_store,
    shard_index,
)

SHARDS = 3


def payload(i: int) -> np.ndarray:
    return np.full((4,), float(i))


@pytest.fixture
def root(tmp_path):
    return tmp_path / "warehouse"


@pytest.fixture
def store(root):
    with open_store(root, shards=SHARDS) as s:
        yield s


def fill(store, n=12, run="r1"):
    run_ref = store.ensure_run(run)
    keys = [f"trial-{i:02d}" for i in range(n)]
    for i, key in enumerate(keys):
        store.put_trial(key, payload(i), run=run_ref)
    return keys


def lost_and_live(keys, victim):
    lost = [k for k in keys if shard_index(k, SHARDS) == victim]
    live = [k for k in keys if shard_index(k, SHARDS) != victim]
    return lost, live


def victim_shard(keys):
    """First non-meta shard holding at least one of ``keys``."""
    for key in keys:
        index = shard_index(key, SHARDS)
        if index != 0:
            return index
    pytest.skip("routing put every key on the meta shard")


def drop_shard(root, index):
    for suffix in ("", "-wal", "-shm"):
        path = root / f"shard-{index:03d}.db{suffix}"
        if path.exists():
            path.unlink()


class TestRoutingAndDispatch:
    def test_shard_index_is_stable_and_bounded(self):
        for key in ("a", "b", "trial-07", "x" * 64):
            index = shard_index(key, SHARDS)
            assert 0 <= index < SHARDS
            assert index == shard_index(key, SHARDS)

    def test_trials_spread_across_shards(self, store):
        keys = fill(store, 24)
        used = {shard_index(k, SHARDS) for k in keys}
        assert len(used) > 1

    def test_open_store_plain_file_is_classic_store(self, tmp_path):
        with open_store(tmp_path / "flat.db") as s:
            assert isinstance(s, ResultStore)

    def test_open_store_detects_manifest(self, root, store):
        store.put_trial("k", payload(1))
        with open_store(root) as reopened:
            assert isinstance(reopened, ShardedResultStore)
            assert reopened.shards == SHARDS
            assert reopened.has_trial("k")

    def test_shard_count_is_immutable(self, root, store):
        with pytest.raises(StoreError):
            ShardedResultStore(root, shards=SHARDS + 2)

    def test_round_trip_is_bit_identical(self, store):
        keys = fill(store, 8)
        for i, key in enumerate(keys):
            value = store.get_trial(key)
            assert value.tobytes() == payload(i).tobytes()

    def test_run_links_are_complete(self, store):
        keys = fill(store, 10, run="linked")
        assert store.trial_keys("linked") == sorted(keys)
        report = store.run_report("linked")
        assert report["trials"] == 10
        assert report["partial"] is False and report["missing"] == []

    def test_counts_sum_shards(self, store):
        fill(store, 9)
        counts = store.counts()
        assert counts["trials"] == 9
        assert counts["shards"] == SHARDS
        assert counts["lost_shards"] == 0


class TestDegradedReads:
    def test_lost_shard_detected_on_open(self, root, store):
        keys = fill(store)
        victim = victim_shard(keys)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            assert degraded.degraded
            assert victim in degraded.lost_shards
            assert not degraded.integrity_ok()

    def test_reads_of_lost_trials_raise_typed(self, root, store):
        keys = fill(store)
        victim = victim_shard(keys)
        lost, live = lost_and_live(keys, victim)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            for key in lost:
                with pytest.raises(ShardLostError) as excinfo:
                    degraded.get_trial(key)
                assert excinfo.value.shard == victim
                assert excinfo.value.key == key
            for key in live:
                assert degraded.get_trial(key) is not None

    def test_run_report_names_missing_keys(self, root, store):
        keys = fill(store, run="r1")
        victim = victim_shard(keys)
        lost, _live = lost_and_live(keys, victim)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            report = degraded.run_report("r1")
            assert report["partial"] is True
            assert report["missing"] == sorted(lost)
            assert report["lost_shards"] == [victim]
            # Run links live on the meta shard, so the key list is
            # complete even while the payload shard is dark.
            assert degraded.trial_keys("r1") == sorted(keys)

    def test_lost_shard_never_silently_recreated(self, root, store):
        keys = fill(store)
        victim = victim_shard(keys)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            assert victim in degraded.lost_shards
        # Opening did not fabricate an empty shard file.
        assert not (root / f"shard-{victim:03d}.db").exists()

    def test_meta_shard_loss_is_fatal(self, root, store):
        fill(store)
        store.close()
        drop_shard(root, 0)
        with pytest.raises(ShardLostError) as excinfo:
            ShardedResultStore(root)
        assert excinfo.value.shard == 0

    def test_check_shards_catches_deletion_while_open(self, root, store):
        keys = fill(store)
        victim = victim_shard(keys)
        drop_shard(root, victim)
        assert victim in store.check_shards()
        assert victim in store.lost_shards


class TestRecovery:
    def test_recover_shard_reports_missing_keys(self, root, store):
        keys = fill(store, run="r1")
        victim = victim_shard(keys)
        lost, _ = lost_and_live(keys, victim)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            healed = degraded.recover_shard(victim)
            assert healed["shard"] == victim
            assert sorted(healed["missing"]) == sorted(lost)
            # Shard exists again, empty; re-putting payloads heals it.
            for key in lost:
                i = int(key.split("-")[1])
                degraded.put_trial(key, payload(i))
            assert degraded.run_report("r1")["partial"] is False
            assert degraded.integrity_ok()

    def test_recover_refuses_meta_shard(self, store):
        with pytest.raises(StoreError):
            store.recover_shard(0)

    def test_recover_live_shard_refused(self, store):
        fill(store)
        with pytest.raises(StoreError):
            store.recover_shard(1)


class TestMerge:
    def test_merge_to_single_file_is_bit_identical(self, tmp_path, store):
        keys = fill(store, run="r1")
        store.record_metrics_raw(
            store.ensure_run("r1"),
            stack="quiche",
            cca="cubic",
            metrics={"throughput_mbps": 9.5},
            bandwidth_mbps=20.0,
            rtt_ms=10.0,
            buffer_bdp=1.0,
        )
        with ResultStore(tmp_path / "merged.db") as dest:
            report = store.merge_to(dest)
            assert report["trials"] == len(keys)
            for i, key in enumerate(sorted(keys)):
                idx = int(key.split("-")[1])
                assert dest.get_trial(key).tobytes() == payload(idx).tobytes()
            assert dest.trial_keys("r1") == sorted(keys)
            assert len(dest.query(run="r1")) == 1

    def test_merge_is_idempotent(self, tmp_path, store):
        keys = fill(store, run="r1")
        with ResultStore(tmp_path / "merged.db") as dest:
            store.merge_to(dest)
            again = store.merge_to(dest)
            assert again["trials"] == 0
            assert again["trials_deduped"] == len(keys)
            assert dest.counts()["trials"] == len(keys)

    def test_strict_merge_raises_on_lost_shard(self, tmp_path, root, store):
        keys = fill(store, run="r1")
        victim = victim_shard(keys)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            with ResultStore(tmp_path / "merged.db") as dest:
                with pytest.raises(ShardLostError):
                    degraded.merge_to(dest)

    def test_partial_merge_counts_skips(self, tmp_path, root, store):
        keys = fill(store, run="r1")
        victim = victim_shard(keys)
        lost, live = lost_and_live(keys, victim)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            with ResultStore(tmp_path / "merged.db") as dest:
                report = degraded.merge_to(dest, allow_partial=True)
                assert report["skipped"] == len(lost)
                for key in live:
                    assert dest.has_trial(key)
                for key in lost:
                    assert not dest.has_trial(key)
                # The merge is honest about what it dropped.
                events = [
                    e for e in dest.events() if e["event"] == "merge_partial"
                ]
                assert events


class TestGc:
    def test_gc_never_purges_cross_shard_references(self, store):
        """The satellite invariant: run links live on the meta shard,
        payloads on others — gc of any one shard must consult the
        cross-shard referenced set, never just its own run_trials."""
        keys = fill(store, 12, run="r1")
        report = store.gc()
        assert report["purged"] == 0
        for key in keys:
            assert store.has_trial(key)

    def test_gc_purges_only_unlinked(self, store):
        keys = fill(store, 6, run="r1")
        orphans = [f"orphan-{i}" for i in range(4)]
        for i, key in enumerate(orphans):
            store.put_trial(key, payload(100 + i))  # no run link
        report = store.gc()
        assert report["purged"] == len(orphans)
        for key in keys:
            assert store.has_trial(key)
        for key in orphans:
            assert not store.has_trial(key)

    def test_gc_dry_run_touches_nothing(self, store):
        fill(store, 4, run="r1")
        store.put_trial("orphan", payload(99))
        report = store.gc(dry_run=True)
        assert report["dry_run"] == 1
        assert report["unlinked"] == 1
        assert store.has_trial("orphan")

    def test_gc_skips_lost_shards(self, root, store):
        keys = fill(store, 12, run="r1")
        victim = victim_shard(keys)
        store.close()
        drop_shard(root, victim)
        with open_store(root) as degraded:
            report = degraded.gc()
            assert report["lost_shards"] == 1
            assert report["purged"] == 0

    def test_gc_leaves_sideline_spill_untouched(self, root, store):
        """A sideline spill next to the warehouse is recovery input:
        gc must never unlink or rewrite it, and it must stay replayable
        afterwards."""
        from repro.store import ingest_sideline

        fill(store, 4, run="r1")
        spill = root.parent / f"{root.name}.sideline.jsonl"
        record = {
            "kind": "trial",
            "key": "spilled-1",
            "dtype": "<f8",
            "shape": [2],
            "data": "AAAAAAAA8D8AAAAAAAAAQA==",  # [1.0, 2.0]
        }
        spill.write_text(json.dumps(record) + "\n")
        before = spill.read_bytes()
        store.gc()
        assert spill.read_bytes() == before
        report = ingest_sideline(store, spill)
        assert report.trials == 1
        assert store.get_trial("spilled-1").tolist() == [1.0, 2.0]

    def test_gc_on_classic_store_ignores_shard_dirs(self, tmp_path):
        """A plain warehouse file gc must not wander into a sibling
        sharded layout's directory."""
        flat = tmp_path / "flat.db"
        with open_store(flat) as classic:
            classic.put_trial("k", payload(1), run=classic.ensure_run("r"))
        sharded_root = tmp_path / "sharded"
        with open_store(sharded_root, shards=2) as sharded:
            sharded.put_trial("other", payload(2))
        with open_store(flat) as classic:
            classic.gc()
        with open_store(sharded_root) as sharded:
            assert sharded.has_trial("other")
