"""Additional conformance-metric semantics."""

import numpy as np
import pytest

from repro.core.conformance import (
    ConformanceResult,
    TranslationResult,
    conformance,
    conformance_legacy,
)
from repro.core.envelope import EnvelopeConfig, build_envelope


def blob(center, n=50, spread=0.5, seed=0):
    return np.random.default_rng(seed).normal(center, spread, size=(n, 2))


def pe(center, seed=0):
    return build_envelope([blob(center, seed=seed)], EnvelopeConfig(k=1))


def test_conformance_is_symmetric():
    a = pe((0, 0), seed=1)
    b = pe((0.4, 0.4), seed=2)
    assert conformance(a, b) == pytest.approx(conformance(b, a))


def test_subset_envelope_scores_half_not_one():
    """A tiny envelope inside a broad reference is NOT fully conformant:
    its own points all land in the overlap, but the reference's points
    outside the tiny region count against it (replaceability cuts both
    ways — an implementation that only ever visits a corner of the
    reference's trade-off space is distinguishable from it)."""
    big = pe((0, 0), seed=1)
    small_points = blob((0, 0), n=50, spread=0.05, seed=3)
    small = build_envelope([small_points], EnvelopeConfig(k=1))
    value = conformance(small, big)
    assert 0.4 < value < 0.7


def test_translation_result_sign_convention():
    """translation is applied to the TEST envelope; deltas report
    test-minus-reference."""
    result = TranslationResult(conformance_t=1.0, translation=(-3.0, 5.0))
    # Test had to move -3 in delay => test sits +3 above reference.
    assert result.delta_delay_ms == 3.0
    assert result.delta_throughput_mbps == -5.0


def test_summary_row_rounding():
    envelope = pe((0, 0))
    result = ConformanceResult(
        conformance=0.123456,
        conformance_t=0.23456,
        conformance_legacy=0.3456,
        delta_throughput_mbps=1.23456,
        delta_delay_ms=-2.3456,
        test_envelope=envelope,
        reference_envelope=envelope,
    )
    row = result.summary_row()
    assert row["conf"] == 0.123
    assert row["delta_tput_mbps"] == 1.23
    assert row["delta_delay_ms"] == -2.35
    assert row["k_test"] == 1


class TestLegacyTrim:
    def test_zero_trim_keeps_all_points(self):
        pts = blob((0, 0), n=40, seed=1)
        assert conformance_legacy(pts, pts, trim_fraction=0.0) == pytest.approx(1.0)

    def test_heavier_trim_never_crashes(self):
        pts = blob((0, 0), n=40, seed=1)
        other = blob((0.3, 0.3), n=40, seed=2)
        for fraction in (0.05, 0.2, 0.45):
            value = conformance_legacy(pts, other, trim_fraction=fraction)
            assert 0.0 <= value <= 1.0

    def test_tiny_clouds_degenerate_to_zero(self):
        # Two points cannot form a hull: legacy conformance is 0.
        assert conformance_legacy([[0, 0], [1, 1]], blob((0, 0))) == 0.0


def test_conformance_with_single_point_cloud_envelope():
    # An envelope whose cluster hull degenerated carries no region.
    degenerate = build_envelope([np.array([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])],
                                EnvelopeConfig(k=1))
    normal = pe((1, 1))
    assert conformance(degenerate, normal) >= 0.0  # defined, not NaN
