"""The full conformance pipeline at reduced scale."""

import pytest

from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import (
    conformance_heatmap,
    measure_conformance,
    reference_trials,
)
from repro.harness.internet import measure_conformance_internet

CONDITION = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)
CFG = ExperimentConfig(duration_s=20.0, trials=2)


def test_conformant_stack_scores_reasonably(fresh_cache):
    # NOTE: this runs a deliberately tiny protocol (20 s x 2 trials), where
    # the trial-intersection PE is noisy; the calibrated thresholds live in
    # the benchmark suite, which uses the full 100 s x 3 protocol.
    m = measure_conformance("quicgo", "cubic", CONDITION, CFG, cache=fresh_cache)
    assert m.conformance > 0.2
    assert m.result.conformance_legacy > 0.7
    assert m.conformance_t >= m.conformance - 1e-9


def test_low_conformance_stack_detected(fresh_cache):
    quicgo = measure_conformance("quicgo", "cubic", CONDITION, CFG, cache=fresh_cache)
    quiche = measure_conformance("quiche", "cubic", CONDITION, CFG, cache=fresh_cache)
    assert quiche.conformance < quicgo.conformance


def test_delta_throughput_sign_matches_behaviour(fresh_cache):
    quiche = measure_conformance("quiche", "cubic", CONDITION, CFG, cache=fresh_cache)
    neqo = measure_conformance("neqo", "cubic", CONDITION, CFG, cache=fresh_cache)
    assert quiche.result.delta_throughput_mbps > 0  # aggressive
    assert neqo.result.delta_throughput_mbps < 0  # weak stack artifact


def test_measurement_row_fields(fresh_cache):
    m = measure_conformance("quicgo", "reno", CONDITION, CFG, cache=fresh_cache)
    row = m.row()
    assert row["stack"] == "quicgo"
    assert row["cca"] == "reno"
    assert 0 <= row["conf"] <= 1


def test_reference_trials_shared_by_cache(fresh_cache):
    reference_trials("cubic", CONDITION, CFG, cache=fresh_cache)
    misses = fresh_cache.misses
    reference_trials("cubic", CONDITION, CFG, cache=fresh_cache)
    assert fresh_cache.misses == misses


def test_heatmap_subset(fresh_cache):
    measurements = conformance_heatmap(
        CONDITION, CFG, ccas=("reno",), stacks=("quicgo", "xquic"), cache=fresh_cache
    )
    assert set(measurements) == {("quicgo", "reno"), ("xquic", "reno")}
    for m in measurements.values():
        assert 0 <= m.conformance <= m.conformance_t <= 1
    # xquic's stack artifact shows as a throughput deficit even at this
    # tiny scale.
    assert (
        measurements[("xquic", "reno")].result.delta_throughput_mbps
        < measurements[("quicgo", "reno")].result.delta_throughput_mbps
    )


def test_internet_measurement_runs(fresh_cache):
    cfg = ExperimentConfig(duration_s=12.0, trials=2)
    m = measure_conformance_internet("quicgo", "cubic", cfg, cache=fresh_cache)
    assert 0 <= m.conformance <= 1
    assert m.condition.label == "internet-aws"
