"""Bootstrap confidence intervals and fairness index."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stats import (
    BootstrapResult,
    bootstrap_conformance,
    bootstrap_metric,
    jains_fairness_index,
)


def blob(center, n=40, seed=0):
    return np.random.default_rng(seed).normal(center, 0.5, size=(n, 2))


class TestBootstrapMetric:
    def test_constant_metric_has_zero_width(self):
        result = bootstrap_metric(lambda idx: 0.7, n_trials=5)
        assert result.estimate == 0.7
        assert result.width == 0.0

    def test_interval_contains_estimate_for_smooth_metric(self):
        values = [0.5, 0.6, 0.7, 0.8, 0.9]

        def metric(indices):
            return float(np.mean([values[i] for i in indices]))

        result = bootstrap_metric(metric, n_trials=5, resamples=300, seed=1)
        assert result.low <= result.estimate <= result.high
        assert 0 < result.width < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_metric(lambda i: 0.0, n_trials=0)
        with pytest.raises(ValueError):
            bootstrap_metric(lambda i: 0.0, n_trials=3, confidence=1.5)

    def test_deterministic_per_seed(self):
        def metric(indices):
            return float(np.mean(indices))

        a = bootstrap_metric(metric, n_trials=4, seed=3)
        b = bootstrap_metric(metric, n_trials=4, seed=3)
        assert (a.low, a.high) == (b.low, b.high)


class TestBootstrapConformance:
    def test_identical_distributions_high_estimate(self):
        test = [blob((10, 10), seed=i) for i in range(3)]
        ref = [blob((10, 10), seed=10 + i) for i in range(3)]
        result = bootstrap_conformance(test, ref, resamples=30)
        assert result.estimate > 0.5
        assert 0 <= result.low <= result.high <= 1

    def test_disjoint_distributions_zero(self):
        test = [blob((0, 0), seed=i) for i in range(3)]
        ref = [blob((50, 50), seed=10 + i) for i in range(3)]
        result = bootstrap_conformance(test, ref, resamples=20)
        assert result.estimate == 0.0
        assert result.high == 0.0

    def test_str_rendering(self):
        result = BootstrapResult(0.5, 0.4, 0.6, 100)
        assert "[0.40, 0.60]" in str(result)


class TestJainsIndex:
    def test_perfect_fairness(self):
        assert jains_fairness_index([5, 5, 5]) == pytest.approx(1.0)

    def test_total_unfairness_approaches_1_over_n(self):
        assert jains_fairness_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            jains_fairness_index([])
        with pytest.raises(ValueError):
            jains_fairness_index([-1, 2])

    @given(st.lists(st.floats(0.01, 100), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, values):
        index = jains_fairness_index(values)
        assert 1 / len(values) - 1e-9 <= index <= 1 + 1e-9
