"""CLI surface: parsing and the cheap subcommands end to end."""

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for sub in ("stacks", "conformance", "heatmap", "fairness", "intercca",
                "fixes", "sweep", "serve", "submit", "watch"):
        assert sub in text


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as err:
        main(["--version"])
    assert err.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_stacks_command(capsys):
    assert main(["stacks"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out
    assert "quiche" in out and "xquic" in out


def test_conformance_command_quick(capsys):
    code = main(
        [
            "conformance", "--stack", "quicgo", "--cca", "reno",
            "--bandwidth", "10", "--rtt", "20",
            "--duration", "8", "--trials", "2", "--plot",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "conf" in out
    assert "envelope" in out  # ASCII plots requested


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_stack_rejected():
    with pytest.raises(SystemExit):
        main(["conformance", "--stack", "nope", "--cca", "cubic"])
