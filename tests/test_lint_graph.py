"""Graph-layer tests: summaries, call-graph/lock-graph builders, goldens.

The golden file pins the *entire* whole-program view (modules, import
edges, resolved calls, lock index, lock-order edges) for a fixture
package exercising every resolution mechanism: subclass
devirtualization, ``Condition(self._lock)`` aliasing, typed-attribute
(``self._helper.ping()``) and annotated-factory (``make_helper()``)
call resolution.  Any behaviour change in the builders shows up as a
readable golden diff.
"""

import json
import textwrap
from pathlib import Path

from repro.lint import Baseline, LintConfig, lint_paths
from repro.lint.engine import build_project_graph
from repro.lint.graph import (
    build_graph,
    extract_summary,
    module_dotted,
    render_graph,
)
from repro.lint.rules import parse_module

FIXTURE_ROOT = Path(__file__).resolve().parent / "data" / "lintgraph"


def make_project(tmp_path, files):
    root = tmp_path / "proj"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    return LintConfig.for_root(root)


def graph_for(config):
    return build_project_graph(config=config, use_cache=False)


def summarize(tmp_path, body, rel="mod.py"):
    path = tmp_path / rel
    path.write_text(textwrap.dedent(body).lstrip("\n"))
    module = parse_module(path, rel, rel)
    assert module is not None
    return extract_summary(module)


# ------------------------------------------------------------------ golden


def test_golden_graph():
    config = LintConfig.for_root(FIXTURE_ROOT)
    graph = graph_for(config)
    got = json.dumps(graph.to_json(), indent=2, sort_keys=True) + "\n"
    want = (FIXTURE_ROOT / "golden.json").read_text()
    assert got == want, (
        "whole-program graph changed; if intentional, regenerate "
        "tests/data/lintgraph/golden.json from graph.to_json()"
    )


def test_golden_fixture_details():
    """Spot-check the mechanisms the golden pins, with intent spelled out."""
    graph = graph_for(LintConfig.for_root(FIXTURE_ROOT))
    calls = graph.call_edges()
    # Devirtualization: Base.run's self.step() also reaches Child.step.
    targets = {c for c, _ in calls["repro.alpha.Base.run"]}
    assert "repro.alpha.Child.step" in targets
    # Typed self-attribute: self._helper.ping() resolves cross-module.
    assert "repro.beta.Helper.ping" in targets
    # Annotated factory: h = make_helper(); h.ping() resolves.
    assert ("repro.beta.Helper.ping", 33) in calls["repro.alpha.use_var"]
    # Condition(self._lock) aliases onto the lock: no _cond lock exists.
    assert "repro.alpha.Base._cond" not in graph.lock_index()
    assert "repro.alpha.Base._lock" in graph.lock_index()
    # The interprocedural edges carry their witness chains.
    edges = graph.lock_analysis().edges
    key = ("repro.alpha.Base._lock", "repro.alpha.GLOBAL_LOCK")
    assert edges[key]["via"] == ["repro.alpha.Child.step"]


# -------------------------------------------------------------- extraction


def test_module_dotted():
    assert module_dotted("service/scheduler.py", "repro") == (
        "repro.service.scheduler"
    )
    assert module_dotted("topo/__init__.py", "repro") == "repro.topo"


def test_summary_records_locks_calls_and_blocking(tmp_path):
    summary = summarize(
        tmp_path,
        """
        import threading
        import time

        LOCK = threading.Lock()

        def work():
            with LOCK:
                time.sleep(1)
        """,
    )
    assert summary["module_locks"]["LOCK"]["kind"] == "Lock"
    fn = summary["functions"]["repro.mod.work"]
    assert fn["acquires"][0]["ref"] == {"k": "global", "name": "repro.mod.LOCK"}
    blk = fn["blocking"][0]
    assert blk["what"] == "time.sleep"
    assert blk["held"] == [{"k": "global", "name": "repro.mod.LOCK"}]


def test_summary_condition_alias_and_inherited_attr(tmp_path):
    summary = summarize(
        tmp_path,
        """
        import threading

        class S:
            def __init__(self):
                self._lock = threading.RLock()
                self._cond = threading.Condition(self._lock)
        """,
    )
    attrs = summary["classes"]["S"]["lock_attrs"]
    assert attrs["_lock"]["alias"] is None
    assert attrs["_cond"]["alias"] == "_lock"


def test_summary_local_lock_and_closure(tmp_path):
    summary = summarize(
        tmp_path,
        """
        import threading

        def outer():
            lock = threading.Lock()

            def inner():
                with lock:
                    return 1

            return inner
        """,
    )
    assert summary["functions"]["repro.mod.outer"]["local_locks"] == {
        "repro.mod.outer.lock": {"kind": "Lock", "line": 4}
    }
    inner = summary["functions"]["repro.mod.outer.inner"]
    assert inner["acquires"][0]["ref"] == {
        "k": "lockid",
        "id": "repro.mod.outer.lock",
    }


def test_summary_taint_descriptors(tmp_path):
    summary = summarize(
        tmp_path,
        """
        import time

        def now():
            return time.time()

        def ident(x):
            return x
        """,
    )
    assert summary["functions"]["repro.mod.now"]["returns"] == [
        {"t": "src", "kind": "clock", "what": "time.time()", "line": 4}
    ]
    assert summary["functions"]["repro.mod.ident"]["returns"] == [
        {"t": "param", "i": 0}
    ]


# ------------------------------------------------------------- resolution


def test_reexport_resolution(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/pkg/__init__.py": """
                from repro.pkg.impl import Thing
            """,
            "src/repro/pkg/impl.py": """
                class Thing:
                    def go(self):
                        return 1
            """,
            "src/repro/user.py": """
                from repro.pkg import Thing

                def use():
                    t = Thing()
                    t.go()
            """,
        },
    )
    graph = graph_for(config)
    targets = {c for c, _ in graph.call_edges()["repro.user.use"]}
    assert "repro.pkg.impl.Thing.go" in targets


def test_inherited_lock_resolves_through_mro(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/base.py": """
                import threading

                class Base:
                    def __init__(self):
                        self._lock = threading.RLock()
            """,
            "src/repro/child.py": """
                import time

                from repro.base import Base

                class Child(Base):
                    def work(self):
                        with self._lock:
                            time.sleep(1)
            """,
        },
    )
    graph = graph_for(config)
    analysis = graph.lock_analysis()
    q = "repro.child.Child.work"
    assert "repro.base.Base._lock" in analysis.may_acquire[q]


def test_callback_argument_joins_call_graph(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/cb.py": """
                def runner(fn):
                    return fn

                def outer():
                    def task():
                        return 1

                    runner(task)
            """,
        },
    )
    graph = graph_for(config)
    targets = {c for c, _ in graph.call_edges()["repro.cb.outer"]}
    assert "repro.cb.outer.task" in targets


def test_import_edges(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/a.py": "from repro.b import x\n",
            "src/repro/b.py": "x = 1\n",
        },
    )
    graph = graph_for(config)
    assert graph.import_edges() == [("repro.a", "repro.b")]


# ------------------------------------------------------------ render/dump


def test_render_graph_locks_lists_cycles(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/dead.py": """
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def ab():
                    with A:
                        with B:
                            pass

                def ba():
                    with B:
                        with A:
                            pass
            """,
        },
    )
    graph = graph_for(config)
    out = render_graph(graph, "locks")
    assert "order repro.dead.A -> repro.dead.B" in out
    assert "CYCLE repro.dead.A / repro.dead.B" in out
    assert "lock repro.dead.A [Lock]" in out


def test_render_graph_unknown_kind_raises(tmp_path):
    config = make_project(tmp_path, {"src/repro/a.py": "x = 1\n"})
    graph = graph_for(config)
    try:
        render_graph(graph, "nope")
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_graph_survives_summary_roundtrip(tmp_path):
    """Summaries are the cache format: JSON round-tripping them must
    reproduce the same graph (what a warm run does)."""
    config = LintConfig.for_root(FIXTURE_ROOT)
    report = lint_paths(
        config=config, baseline=Baseline(), use_cache=False, keep_graph=True
    )
    direct = report.graph.to_json()
    summaries = [
        json.loads(json.dumps(report.graph.modules[m]))
        for m in sorted(report.graph.modules)
    ]
    rebuilt = build_graph(summaries).to_json()
    assert rebuilt == direct
