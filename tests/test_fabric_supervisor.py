"""FleetSupervisor: deterministic autoscaling, reaping and rolling.

Every test drives the supervisor and its queue off one shared fake
clock, so heartbeat ages, hysteresis streaks and roll deadlines are
exact — no sleeps, no wall-clock flake.  The ``spawn`` callable stands
in for forking a worker process by registering the worker row directly,
which is precisely what a real worker's first heartbeat does.
"""

import pytest

from repro.fabric.queue import WorkQueue
from repro.fabric.supervisor import FleetSupervisor, SupervisorConfig

SPEC = {"kind": "conformance", "stacks": ["quiche"], "ccas": ["cubic"]}


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def q(tmp_path, clock):
    with WorkQueue(str(tmp_path / "store.db"), clock=clock) as queue:
        yield queue


def make_supervisor(q, clock, **overrides):
    spawned = []

    def spawn(name, version):
        spawned.append((name, version))
        q.register_worker(name, version=version)
        return f"proc-{name}"

    config = SupervisorConfig(**overrides)
    return FleetSupervisor(q, config=config, spawn=spawn, clock=clock), spawned


def backlog(q, n):
    for i in range(n):
        q.enqueue(f"c{i}", SPEC)


def test_scale_up_waits_for_hysteresis(q, clock):
    sup, spawned = make_supervisor(
        q, clock, min_workers=0, max_workers=4, backlog_per_worker=2,
        scale_up_after=2,
    )
    backlog(q, 6)
    first = sup.tick()
    assert first.desired == 3 and first.spawned == []
    second = sup.tick()
    assert second.spawned == ["fleet-000", "fleet-001", "fleet-002"]
    assert [name for name, _ in spawned] == second.spawned
    # Demand satisfied: the next tick is a no-op.
    third = sup.tick()
    assert third.live == 3 and third.spawned == []


def test_desired_fleet_clamped_to_max(q, clock):
    sup, _ = make_supervisor(
        q, clock, min_workers=0, max_workers=2, backlog_per_worker=1,
        scale_up_after=1,
    )
    backlog(q, 10)
    decision = sup.tick()
    assert decision.desired == 2
    assert decision.spawned == ["fleet-000", "fleet-001"]


def test_min_workers_kept_warm_on_empty_queue(q, clock):
    sup, _ = make_supervisor(
        q, clock, min_workers=1, max_workers=4, scale_up_after=1,
    )
    decision = sup.tick()
    assert decision.backlog == 0
    assert decision.desired == 1
    assert decision.spawned == ["fleet-000"]


def test_spawn_carries_fleet_version(q, clock):
    sup, spawned = make_supervisor(
        q, clock, min_workers=1, scale_up_after=1, version="v7",
    )
    sup.tick()
    assert spawned == [("fleet-000", "v7")]
    assert q.worker_info("fleet-000")["version"] == "v7"


def test_scale_down_drains_fewest_leases_first(q, clock):
    sup, _ = make_supervisor(
        q, clock, min_workers=1, max_workers=4, backlog_per_worker=1,
        scale_down_after=2,
    )
    q.register_worker("w-busy")
    q.register_worker("w-idle")
    q.enqueue("c0", SPEC)
    lease = q.lease("w-busy", ttl_s=300.0)
    assert lease.campaign == "c0"
    q.complete("c0", lease.lease_id, {})
    q.enqueue("c1", SPEC)
    assert q.lease("w-busy", ttl_s=300.0).campaign == "c1"
    # Backlog 1, two live workers, backlog_per_worker 1 -> desired 1.
    first = sup.tick()
    assert first.desired == 1 and first.drained == []
    second = sup.tick()
    assert second.drained == ["w-idle"]
    assert q.worker_info("w-idle")["state"] == "draining"
    assert q.worker_info("w-busy")["state"] == "active"


def test_flapping_demand_resets_streaks(q, clock):
    sup, _ = make_supervisor(
        q, clock, min_workers=0, max_workers=4, backlog_per_worker=1,
        scale_up_after=3,
    )
    backlog(q, 2)
    sup.tick()
    sup.tick()
    assert sup.up_streak == 2
    # Demand evaporates before the third tick: no spawn ever happens.
    for i in range(2):
        lease = q.lease("ghost", ttl_s=300.0)
        q.complete(lease.campaign, lease.lease_id, {})
    q.deregister_worker("ghost")
    decision = sup.tick()
    assert decision.spawned == []
    assert sup.up_streak == 0


def test_dead_worker_reaped_by_heartbeat_age(q, clock):
    sup, _ = make_supervisor(
        q, clock, min_workers=0, heartbeat_timeout_s=60.0,
    )
    q.register_worker("w1")
    clock.advance(61.0)
    decision = sup.tick()
    assert decision.dead == ["w1"]
    assert decision.live == 0
    assert q.worker_info("w1")["state"] == "exited"


def test_reaped_worker_lease_recovers_via_expiry(q, clock):
    """The supervisor only deregisters a dead worker; its lease comes
    back through the queue's own expiry, not a revocation."""
    sup, _ = make_supervisor(
        q, clock, min_workers=0, heartbeat_timeout_s=60.0,
    )
    q.enqueue("c0", SPEC)
    q.lease("w1", ttl_s=120.0)
    clock.advance(61.0)
    decision = sup.tick()
    assert decision.dead == ["w1"]
    # Not expired yet: still leased, nothing doubled.
    assert q.task("c0").state == "leased"
    clock.advance(60.0)
    q.sweep()
    assert q.task("c0").state == "pending"


def test_next_name_skips_taken_indices(q, clock):
    sup, _ = make_supervisor(
        q, clock, min_workers=3, scale_up_after=1,
    )
    q.register_worker("fleet-001")
    decision = sup.tick()
    assert decision.spawned == ["fleet-000", "fleet-002"]


def test_replacement_supervisor_adopts_registry(q, clock):
    """A supervisor with empty process handles (a restarted or failed-
    over one) reads the same fleet and makes the same decisions."""
    sup, _ = make_supervisor(
        q, clock, min_workers=0, max_workers=4, backlog_per_worker=1,
        scale_up_after=1,
    )
    backlog(q, 2)
    sup.tick()
    replacement = FleetSupervisor(
        q,
        config=SupervisorConfig(min_workers=0, max_workers=4,
                                backlog_per_worker=1),
        clock=clock,
    )
    assert replacement.handles == {}
    decision = replacement.tick()
    assert decision.live == 2
    assert decision.spawned == [] and decision.drained == []


def _world_sleep(clock, q):
    """A fake sleep that also plays the world: time passes and any
    draining worker finishes up and exits."""

    def sleep(dt):
        clock.advance(dt)
        for worker in q.workers():
            if worker["state"] == "draining":
                q.deregister_worker(worker["name"])

    return sleep


def test_roll_replaces_stale_workers_one_at_a_time(q, clock):
    sup, spawned = make_supervisor(q, clock, min_workers=0)
    q.register_worker("fleet-000", version="v1")
    q.register_worker("fleet-001", version="v1")
    result = sup.roll(
        "v2", timeout_s=30.0, poll_s=1.0, sleep=_world_sleep(clock, q)
    )
    assert result["replaced"] == ["fleet-000", "fleet-001"]
    assert len(result["spawned"]) == 2
    assert all(version == "v2" for _, version in spawned)
    actives = [w for w in q.workers() if w["state"] == "active"]
    assert {w["version"] for w in actives} == {"v2"}
    # Capacity never dipped: two fresh workers exist for two retired.
    assert len(actives) == 2


def test_roll_skips_current_version(q, clock):
    sup, spawned = make_supervisor(q, clock, min_workers=0)
    q.register_worker("fleet-000", version="v2")
    result = sup.roll(
        "v2", timeout_s=30.0, poll_s=1.0, sleep=_world_sleep(clock, q)
    )
    assert result == {"replaced": [], "spawned": []}
    assert spawned == []


def test_roll_times_out_when_victim_never_exits(q, clock):
    sup, _ = make_supervisor(q, clock, min_workers=0)
    q.register_worker("fleet-000", version="v1")

    def sleep(dt):
        clock.advance(dt)  # time passes, the stuck worker does not

    with pytest.raises(TimeoutError):
        sup.roll("v2", timeout_s=5.0, poll_s=1.0, sleep=sleep)
    # The roll stopped between workers: the fleet is mixed-version but
    # healthy, with the replacement live and the victim still draining.
    assert q.worker_info("fleet-000")["state"] == "draining"
    assert q.worker_info("fleet-001")["state"] == "active"
