"""NewReno unit behaviour."""

import pytest

from repro.cca.base import AckEvent
from repro.cca.reno import NewReno

MSS = 1000


def ack(bytes_acked=MSS, now=1.0, rtt=0.05, round_count=0):
    return AckEvent(
        now=now,
        bytes_acked=bytes_acked,
        rtt_sample=rtt,
        delivery_rate=None,
        is_app_limited=False,
        bytes_in_flight=0,
        round_count=round_count,
    )


def test_initial_window():
    reno = NewReno(MSS, initial_cwnd_packets=10)
    assert reno.cwnd == 10 * MSS
    assert reno.in_slow_start


def test_slow_start_doubles_per_window():
    reno = NewReno(MSS, initial_cwnd_packets=10)
    for _ in range(10):
        reno.on_ack(ack())
    assert reno.cwnd == 20 * MSS


def test_congestion_event_halves_window():
    reno = NewReno(MSS, initial_cwnd_packets=20)
    reno.on_congestion_event(1.0, 20 * MSS)
    assert reno.cwnd == 10 * MSS
    assert reno.ssthresh == 10 * MSS
    assert not reno.in_slow_start


def test_congestion_avoidance_adds_one_mss_per_window():
    reno = NewReno(MSS, initial_cwnd_packets=20)
    reno.on_congestion_event(1.0, 0)  # cwnd -> 10 MSS, exit slow start
    start = reno.cwnd
    for _ in range(10):  # one full window of ACKs
        reno.on_ack(ack())
    assert reno.cwnd == pytest.approx(start + MSS, abs=1)


def test_ai_scale_changes_growth():
    fast = NewReno(MSS, initial_cwnd_packets=20, ai_scale=2.0)
    fast.on_congestion_event(1.0, 0)
    start = fast.cwnd
    for _ in range(10):
        fast.on_ack(ack())
    assert fast.cwnd == pytest.approx(start + 2 * MSS, abs=1)


def test_custom_beta():
    reno = NewReno(MSS, initial_cwnd_packets=20, beta=0.8)
    reno.on_congestion_event(1.0, 0)
    assert reno.cwnd == pytest.approx(16 * MSS, abs=1)


def test_rto_collapses_to_minimum():
    reno = NewReno(MSS, initial_cwnd_packets=20)
    reno.on_rto(1.0)
    assert reno.cwnd == 2 * MSS
    assert reno.ssthresh == 10 * MSS


def test_window_floor_after_repeated_losses():
    reno = NewReno(MSS, initial_cwnd_packets=4)
    for _ in range(10):
        reno.on_congestion_event(1.0, 0)
    assert reno.cwnd >= 2 * MSS


def test_slow_start_exits_at_ssthresh():
    reno = NewReno(MSS, initial_cwnd_packets=2, ssthresh=6 * MSS)
    for _ in range(20):
        reno.on_ack(ack())
    # Never overshoots ssthresh out of slow start.
    assert reno.cwnd <= 8 * MSS


def test_invalid_parameters():
    with pytest.raises(ValueError):
        NewReno(MSS, beta=0)
    with pytest.raises(ValueError):
        NewReno(MSS, beta=1)
    with pytest.raises(ValueError):
        NewReno(MSS, ai_scale=0)
    with pytest.raises(ValueError):
        NewReno(0)


def test_debug_state():
    reno = NewReno(MSS)
    state = reno.debug_state()
    assert state["name"] == "reno"
    assert state["slow_start"]
