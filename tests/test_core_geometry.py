"""Convex geometry: hulls, clipping, areas, membership."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometry import (
    convex_hull,
    convex_intersection,
    intersect_polygons,
    point_in_convex_polygon,
    points_in_convex_polygon,
    polygon_area,
    polygon_centroid,
    translate_polygon,
)

SQUARE = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)


class TestConvexHull:
    def test_square_with_interior_points(self):
        pts = np.vstack([SQUARE, [[1, 1], [0.5, 0.5]]])
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert polygon_area(hull) == pytest.approx(4.0)

    def test_collinear_points_are_degenerate(self):
        pts = [[0, 0], [1, 1], [2, 2], [3, 3]]
        assert len(convex_hull(pts)) == 0

    def test_fewer_than_three_points(self):
        assert len(convex_hull([[0, 0]])) == 0
        assert len(convex_hull([[0, 0], [1, 1]])) == 0
        assert len(convex_hull([])) == 0

    def test_duplicates_collapse(self):
        pts = [[0, 0], [0, 0], [1, 0], [1, 0], [0, 1]]
        hull = convex_hull(pts)
        assert len(hull) == 3

    points_strategy = st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
        min_size=3,
        max_size=40,
    )

    @given(points_strategy)
    @settings(max_examples=80, deadline=None)
    def test_hull_contains_all_points(self, pts):
        arr = np.array(pts, dtype=float)
        hull = convex_hull(arr)
        if len(hull) == 0:
            return  # degenerate input
        mask = points_in_convex_polygon(arr, hull)
        assert mask.all()

    @given(points_strategy)
    @settings(max_examples=80, deadline=None)
    def test_hull_is_convex(self, pts):
        hull = convex_hull(np.array(pts, dtype=float))
        n = len(hull)
        if n < 3:
            return
        for i in range(n):
            o, a, b = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            crossv = (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
            assert crossv > -1e-6


class TestArea:
    def test_square(self):
        assert polygon_area(SQUARE) == pytest.approx(4.0)

    def test_triangle(self):
        assert polygon_area([[0, 0], [4, 0], [0, 3]]) == pytest.approx(6.0)

    def test_orientation_independent(self):
        assert polygon_area(SQUARE[::-1]) == pytest.approx(4.0)

    def test_degenerate_is_zero(self):
        assert polygon_area([[0, 0], [1, 1]]) == 0.0


class TestCentroid:
    def test_square_centroid(self):
        centroid = polygon_centroid(SQUARE)
        assert centroid == pytest.approx([1.0, 1.0])

    def test_degenerate_returns_none(self):
        assert polygon_centroid([[0, 0], [1, 1]]) is None


class TestIntersection:
    def test_overlapping_squares(self):
        other = SQUARE + 1.0
        inter = convex_intersection(SQUARE, other)
        assert polygon_area(inter) == pytest.approx(1.0)

    def test_disjoint_squares(self):
        other = SQUARE + 10.0
        assert len(convex_intersection(SQUARE, other)) == 0

    def test_contained_square(self):
        inner = SQUARE * 0.25 + 0.5
        inter = convex_intersection(SQUARE, inner)
        assert polygon_area(inter) == pytest.approx(polygon_area(inner))

    def test_identity(self):
        inter = convex_intersection(SQUARE, SQUARE)
        assert polygon_area(inter) == pytest.approx(4.0)

    def test_many_polygon_intersection(self):
        polys = [SQUARE, SQUARE + 0.5, SQUARE + 1.0]
        inter = intersect_polygons(polys)
        assert polygon_area(inter) == pytest.approx(1.0)

    def test_empty_list(self):
        assert len(intersect_polygons([])) == 0

    hull_points = st.lists(
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)), min_size=3, max_size=15
    )

    @given(hull_points, hull_points)
    @settings(max_examples=60, deadline=None)
    def test_intersection_area_bounded(self, pts_a, pts_b):
        a = convex_hull(np.array(pts_a))
        b = convex_hull(np.array(pts_b))
        if len(a) < 3 or len(b) < 3:
            return
        inter = convex_intersection(a, b)
        area = polygon_area(inter)
        assert area <= polygon_area(a) + 1e-6
        assert area <= polygon_area(b) + 1e-6

    @given(hull_points, hull_points)
    @settings(max_examples=60, deadline=None)
    def test_intersection_commutative_area(self, pts_a, pts_b):
        a = convex_hull(np.array(pts_a))
        b = convex_hull(np.array(pts_b))
        if len(a) < 3 or len(b) < 3:
            return
        ab = polygon_area(convex_intersection(a, b))
        ba = polygon_area(convex_intersection(b, a))
        assert ab == pytest.approx(ba, abs=1e-6 * max(ab, 1))


class TestMembership:
    def test_inside_outside_boundary(self):
        assert point_in_convex_polygon([1, 1], SQUARE)
        assert point_in_convex_polygon([0, 0], SQUARE)  # vertex
        assert point_in_convex_polygon([1, 0], SQUARE)  # edge
        assert not point_in_convex_polygon([3, 1], SQUARE)
        assert not point_in_convex_polygon([-0.1, 1], SQUARE)

    def test_vectorized_matches_scalar(self):
        pts = np.array([[1, 1], [3, 3], [0, 0], [2.1, 1], [1.9, 1]])
        mask = points_in_convex_polygon(pts, SQUARE)
        expected = [point_in_convex_polygon(p, SQUARE) for p in pts]
        assert mask.tolist() == expected

    def test_degenerate_polygon_contains_nothing(self):
        assert not point_in_convex_polygon([0, 0], np.empty((0, 2)))
        mask = points_in_convex_polygon(np.array([[0.0, 0.0]]), np.empty((0, 2)))
        assert not mask.any()


def test_translate_polygon():
    moved = translate_polygon(SQUARE, [5, -1])
    assert moved[0] == pytest.approx([5, -1])
    assert polygon_area(moved) == pytest.approx(4.0)
