"""Event-loop semantics: ordering, determinism, timers."""

import pytest

from repro.netsim.engine import EventLoop, SimulationError, Timer


def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(0.3, lambda: order.append("c"))
    loop.schedule(0.1, lambda: order.append("a"))
    loop.schedule(0.2, lambda: order.append("b"))
    loop.run(1.0)
    assert order == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    loop = EventLoop()
    order = []
    loop.schedule(0.1, lambda: order.append(1))
    loop.schedule(0.1, lambda: order.append(2))
    loop.schedule(0.1, lambda: order.append(3))
    loop.run(1.0)
    assert order == [1, 2, 3]


def test_clock_advances_to_run_horizon_even_when_idle():
    loop = EventLoop()
    loop.run(5.0)
    assert loop.now == 5.0


def test_run_does_not_execute_events_past_horizon():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, lambda: fired.append(True))
    loop.run(1.0)
    assert not fired
    loop.run(3.0)
    assert fired


def test_events_scheduled_during_run_are_processed():
    loop = EventLoop()
    order = []

    def first():
        order.append("first")
        loop.schedule(0.1, lambda: order.append("second"))

    loop.schedule(0.1, first)
    loop.run(1.0)
    assert order == ["first", "second"]


def test_cancelled_event_is_skipped():
    loop = EventLoop()
    fired = []
    event = loop.schedule(0.1, lambda: fired.append(True))
    event.cancel()
    loop.run(1.0)
    assert not fired


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.schedule(0.5, lambda: None)
    loop.run(1.0)
    with pytest.raises(SimulationError):
        loop.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        loop.schedule(-0.1, lambda: None)


def test_now_tracks_current_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(0.25, lambda: seen.append(loop.now))
    loop.run(1.0)
    assert seen == [0.25]


def test_run_until_idle_drains_all_events():
    loop = EventLoop()
    count = []

    def recur(n):
        count.append(n)
        if n < 5:
            loop.schedule(0.1, lambda: recur(n + 1))

    loop.schedule(0.1, lambda: recur(1))
    loop.run_until_idle()
    assert count == [1, 2, 3, 4, 5]


class TestTimer:
    def test_timer_fires_once(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.arm(0.5)
        loop.run(2.0)
        assert fired == [0.5]

    def test_rearming_cancels_previous_deadline(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.arm(0.5)
        timer.arm(1.0)
        loop.run(2.0)
        assert fired == [1.0]

    def test_cancel_prevents_firing(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(True))
        timer.arm(0.5)
        timer.cancel()
        loop.run(2.0)
        assert not fired

    def test_armed_and_deadline(self):
        loop = EventLoop()
        timer = Timer(loop, lambda: None)
        assert not timer.armed
        assert timer.deadline is None
        timer.arm(0.5)
        assert timer.armed
        assert timer.deadline == pytest.approx(0.5)
        loop.run(1.0)
        assert not timer.armed

    def test_arm_without_callback_raises(self):
        loop = EventLoop()
        timer = Timer(loop)
        with pytest.raises(SimulationError):
            timer.arm(0.1)
