"""Fix verification, sweeps and transitivity (light integration)."""

import numpy as np
import pytest

from repro.analysis.fixes import FIXES, UNFIXED, cwnd_time_series, evaluate_fix
from repro.analysis.sweeps import cwnd_gain_sweep
from repro.analysis.transitivity import transitivity_violations
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.runner import Impl

CONDITION = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)
QUICK = ExperimentConfig(duration_s=10.0, trials=2)


def test_fix_table_covers_paper_cases():
    keys = {(f.stack, f.cca) for f in FIXES}
    assert keys == {
        ("chromium", "cubic"),
        ("mvfst", "bbr"),
        ("xquic", "bbr"),
        ("quiche", "cubic"),
        ("xquic", "cubic"),
    }
    assert ("xquic", "reno") in UNFIXED and ("neqo", "cubic") in UNFIXED


def test_fix_loc_matches_table4():
    by_key = {(f.stack, f.cca): f for f in FIXES}
    assert by_key[("chromium", "cubic")].loc == 1
    assert by_key[("mvfst", "bbr")].loc == 2
    assert by_key[("xquic", "bbr")].loc == 2
    assert by_key[("quiche", "cubic")].loc == 14
    assert by_key[("xquic", "cubic")].loc is None


def test_evaluate_fix_produces_before_and_after(fresh_cache):
    case = next(f for f in FIXES if f.stack == "quiche")
    outcome = evaluate_fix(case, CONDITION, QUICK, cache=fresh_cache)
    assert outcome.before is not None and outcome.after is not None
    row = outcome.row()
    assert "conf_before" in row and "conf_after" in row


def test_xquic_cubic_verification_uses_nohystart_reference(fresh_cache):
    case = next(f for f in FIXES if f.stack == "xquic" and f.cca == "cubic")
    assert case.fixed_variant is None
    assert case.reference_variant == "nohystart"
    outcome = evaluate_fix(case, CONDITION, QUICK, cache=fresh_cache)
    assert outcome.after is not None  # verification run, not a fix


def test_cwnd_time_series_shape():
    series = cwnd_time_series("quiche", "cubic", condition=CONDITION, duration_s=5.0)
    assert series.ndim == 2 and series.shape[1] == 2
    assert (series[:, 1] > 0).all()
    assert (np.diff(series[:, 0]) >= 0).all()


def test_cwnd_gain_sweep_structure(fresh_cache):
    points = cwnd_gain_sweep(
        gains=(1.5, 2.0, 3.0), condition=CONDITION, config=QUICK, cache=fresh_cache
    )
    assert [p.cwnd_gain for p in points] == [1.5, 2.0, 3.0]
    for p in points:
        assert 0 <= p.conformance <= 1
        assert p.conformance_t >= p.conformance - 1e-9


def test_transitivity_violation_detection():
    impls = [Impl("a", "cubic"), Impl("b", "cubic"), Impl("c", "cubic")]
    # a beats b, b beats c, but a does not beat c: one violating triple.
    beats = np.array(
        [
            [False, True, False],
            [False, False, True],
            [False, False, False],
        ]
    )
    violations = transitivity_violations(impls, beats)
    assert (impls[0], impls[1], impls[2]) in violations


def test_transitive_relation_has_no_violations():
    impls = [Impl("a", "cubic"), Impl("b", "cubic"), Impl("c", "cubic")]
    beats = np.array(
        [
            [False, True, True],
            [False, False, True],
            [False, False, False],
        ]
    )
    assert transitivity_violations(impls, beats) == []
