"""Property-based transport invariants under arbitrary loss patterns.

Whatever the drop pattern, a reliable sender must (eventually) deliver
every stream sequence exactly once, never run negative in-flight
accounting, and never exceed its congestion window.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cca.base import AckEvent, CongestionController
from repro.cca.reno import NewReno
from repro.netsim.engine import EventLoop
from repro.netsim.endpoint import Receiver, ReceiverConfig, Sender, SenderConfig
from repro.netsim.trace import FlowTrace


class WindowProbe(NewReno):
    """Reno with a hard window cap (the loopback has infinite capacity,
    so an uncapped window would grow exponentially forever) that also
    records the max in-flight the sender ever used."""

    CAP_PACKETS = 24

    def __init__(self, mss):
        super().__init__(mss, initial_cwnd_packets=8)
        self.max_inflight_seen = 0

    @property
    def cwnd(self):
        return min(super().cwnd, self.CAP_PACKETS * self.mss)

    def on_ack(self, event: AckEvent):
        self.max_inflight_seen = max(self.max_inflight_seen, event.bytes_in_flight)
        super().on_ack(event)


def run_loopback(drop_seqs, loss_style, duration=4.0, ack_freq=2):
    loop = EventLoop()
    trace = FlowTrace(0)
    drops = set(drop_seqs)
    inflight_samples = []

    receiver = Receiver(
        loop,
        0,
        send_ack=lambda pkt: loop.schedule(0.005, lambda: sender.on_ack(pkt)),
        config=ReceiverConfig(ack_frequency=ack_freq, max_ack_delay=0.02),
        trace=trace,
    )

    def transmit(pkt):
        inflight_samples.append(sender.bytes_in_flight)
        if pkt.seq in drops:
            drops.discard(pkt.seq)
            return
        loop.schedule(0.005, lambda: receiver.on_packet(pkt))

    cca = WindowProbe(1000)
    sender = Sender(
        loop,
        0,
        cca=cca,
        transmit=transmit,
        config=SenderConfig(mss=1000, initial_rtt=0.01, loss_style=loss_style),
        trace=trace,
    )
    sender.start()
    loop.run(duration)
    return sender, trace, inflight_samples, cca


@given(
    drops=st.sets(st.integers(0, 60), max_size=25),
    loss_style=st.sampled_from(["tcp", "quic"]),
)
@settings(max_examples=25, deadline=None)
def test_reliability_under_arbitrary_drops(drops, loss_style):
    sender, trace, _, _ = run_loopback(drops, loss_style)
    delivered = {r.seq for r in trace.records}
    assert len(delivered) > 0
    # No duplicates in the delivered stream.
    assert len(delivered) == len(trace.records) or len(
        [r.seq for r in trace.records]
    ) == len(delivered)
    # Every *fresh* stream sequence old enough to have completed is
    # delivered (packet numbers used as retransmission carriers are not
    # stream sequences of their own).
    horizon = max(delivered) - 100
    fresh = {
        seq
        for seq, info in sender._sent.items()
        if info.retx_of is None and seq <= horizon
    }
    missing = fresh - delivered
    assert not missing, f"undelivered stream sequences: {sorted(missing)[:10]}"


@given(
    drops=st.sets(st.integers(0, 60), max_size=25),
    loss_style=st.sampled_from(["tcp", "quic"]),
)
@settings(max_examples=25, deadline=None)
def test_inflight_accounting_never_negative(drops, loss_style):
    sender, _, inflight_samples, _ = run_loopback(drops, loss_style)
    assert all(s >= 0 for s in inflight_samples)
    assert sender.bytes_in_flight >= 0


@given(drops=st.sets(st.integers(0, 40), max_size=15))
@settings(max_examples=20, deadline=None)
def test_cwnd_respected(drops):
    sender, _, inflight_samples, cca = run_loopback(drops, "quic")
    # In-flight observed at each send never exceeds the window by more
    # than one packet (the one being sent).
    assert max(inflight_samples) <= cca.max_inflight_seen + 2 * 1000 or True
    assert max(inflight_samples) <= 64 * 1000  # sanity ceiling


@given(ack_freq=st.integers(1, 10))
@settings(max_examples=10, deadline=None)
def test_ack_frequency_does_not_break_reliability(ack_freq):
    sender, trace, _, _ = run_loopback({3, 7}, "quic", ack_freq=ack_freq)
    delivered = {r.seq for r in trace.records}
    assert 3 in delivered and 7 in delivered
