"""CUBIC unit behaviour: window curve, HyStart, emulation, rollback."""

import pytest

from repro.cca.base import AckEvent
from repro.cca.cubic import Cubic, CubicConfig

MSS = 1000


def ack(bytes_acked=MSS, now=1.0, rtt=0.05, round_count=0):
    return AckEvent(
        now=now,
        bytes_acked=bytes_acked,
        rtt_sample=rtt,
        delivery_rate=None,
        is_app_limited=False,
        bytes_in_flight=0,
        round_count=round_count,
    )


def drive_ca(cubic, start, duration, rtt=0.05, rate_pps=200):
    """Feed ACKs at a steady rate through congestion avoidance."""
    t = start
    dt = 1.0 / rate_pps
    while t < start + duration:
        cubic.on_ack(ack(now=t, rtt=rtt))
        t += dt
    return cubic


def test_initial_state():
    cubic = Cubic(MSS)
    assert cubic.cwnd == 10 * MSS
    assert cubic.in_slow_start


def test_multiplicative_decrease_uses_beta():
    cubic = Cubic(MSS)
    cubic._cwnd = 100 * MSS
    cubic.ssthresh = 50 * MSS  # in CA
    cubic.on_congestion_event(1.0, 0)
    assert cubic.cwnd == pytest.approx(70 * MSS, rel=0.01)


def test_cubic_growth_accelerates_away_from_wmax():
    """Window growth is slow near W_max and fast beyond the plateau."""
    cubic = Cubic(MSS, CubicConfig(enable_hystart=False, tcp_friendliness=False))
    cubic._cwnd = 100 * MSS
    cubic.ssthresh = 1.0  # force CA
    cubic.on_congestion_event(0.0, 0)  # W_max = 100, cwnd = 70
    drive_ca(cubic, 0.0, 1.0)
    early = cubic.cwnd
    drive_ca(cubic, 1.0, 1.0)
    mid = cubic.cwnd
    drive_ca(cubic, 2.0, 4.0)
    late = cubic.cwnd
    # Concave then convex: recovers toward W_max then grows past it.
    assert early < 100 * MSS
    assert late > 100 * MSS
    growth_mid = mid - early
    growth_late = (late - mid) / 4
    assert growth_late > 0


def test_fast_convergence_lowers_wmax():
    config = CubicConfig(fast_convergence=True, enable_hystart=False)
    cubic = Cubic(MSS, config)
    cubic._cwnd = 100 * MSS
    cubic.ssthresh = 1.0
    cubic.on_congestion_event(0.0, 0)  # W_max = 100
    cubic.on_congestion_event(1.0, 0)  # cwnd 70 < W_max: fast convergence
    assert cubic._w_max < 70.0 * 1.01  # (2 - beta)/2 * 70 = 45.5


def test_reno_friendly_region_dominates_early():
    friendly = Cubic(MSS, CubicConfig(enable_hystart=False, tcp_friendliness=True))
    plain = Cubic(MSS, CubicConfig(enable_hystart=False, tcp_friendliness=False))
    for cubic in (friendly, plain):
        cubic._cwnd = 50 * MSS
        cubic.ssthresh = 1.0
        cubic.on_congestion_event(0.0, 0)
        drive_ca(cubic, 0.0, 2.0, rtt=0.2, rate_pps=100)
    assert friendly.cwnd >= plain.cwnd


def test_emulated_connections_soften_backoff():
    chromium_like = Cubic(MSS, CubicConfig(emulated_connections=2, enable_hystart=False))
    chromium_like._cwnd = 100 * MSS
    chromium_like.ssthresh = 1.0
    chromium_like.on_congestion_event(0.0, 0)
    # beta_2 = (1 + 0.7)/2 = 0.85 -> cwnd 85 instead of 70.
    assert chromium_like.cwnd == pytest.approx(85 * MSS, rel=0.01)


def test_spurious_rollback_restores_state():
    config = CubicConfig(spurious_loss_rollback=True, enable_hystart=False)
    cubic = Cubic(MSS, config)
    cubic._cwnd = 100 * MSS
    cubic.ssthresh = 200 * MSS * 1.0
    cubic.ssthresh = 1e9
    cubic._cwnd = 100 * MSS
    before = cubic.cwnd
    cubic.on_congestion_event(1.0, 0)
    assert cubic.cwnd < before
    cubic.on_spurious_congestion(1.1)
    assert cubic.cwnd == before


def test_rollback_disabled_by_default():
    cubic = Cubic(MSS)
    cubic._cwnd = 100 * MSS
    cubic.on_congestion_event(1.0, 0)
    reduced = cubic.cwnd
    cubic.on_spurious_congestion(1.1)
    assert cubic.cwnd == reduced


def test_rollback_is_one_shot():
    config = CubicConfig(spurious_loss_rollback=True, enable_hystart=False)
    cubic = Cubic(MSS, config)
    cubic._cwnd = 100 * MSS
    cubic.on_congestion_event(1.0, 0)
    cubic.on_spurious_congestion(1.1)
    restored = cubic.cwnd
    cubic.on_spurious_congestion(1.2)  # no pending snapshot
    assert cubic.cwnd == restored


def test_rto_collapses_window():
    cubic = Cubic(MSS)
    cubic._cwnd = 50 * MSS
    cubic.on_rto(1.0)
    assert cubic.cwnd == 2 * MSS


class TestHyStart:
    def rtt_ramp(self, cubic, base_rtt, increase, rounds=6, acks_per_round=10):
        """Feed rounds with rising per-round RTT."""
        t = 0.0
        for rnd in range(rounds):
            rtt = base_rtt + rnd * increase
            for _ in range(acks_per_round):
                cubic.on_ack(ack(now=t, rtt=rtt, round_count=rnd))
                t += 0.01

    def test_delay_increase_triggers_exit(self):
        cubic = Cubic(MSS, CubicConfig(enable_hystart=True))
        self.rtt_ramp(cubic, base_rtt=0.05, increase=0.012, rounds=10)
        assert not cubic.in_slow_start

    def test_stable_rtt_stays_in_slow_start(self):
        cubic = Cubic(MSS, CubicConfig(enable_hystart=True))
        self.rtt_ramp(cubic, base_rtt=0.05, increase=0.0, rounds=6)
        assert cubic.in_slow_start

    def test_disabled_hystart_ignores_delay(self):
        cubic = Cubic(MSS, CubicConfig(enable_hystart=False))
        self.rtt_ramp(cubic, base_rtt=0.05, increase=0.012, rounds=10)
        assert cubic.in_slow_start

    def test_css_slows_growth_before_exit(self):
        hy = Cubic(MSS, CubicConfig(enable_hystart=True))
        plain = Cubic(MSS, CubicConfig(enable_hystart=False))
        self.rtt_ramp(hy, base_rtt=0.05, increase=0.012, rounds=4)
        self.rtt_ramp(plain, base_rtt=0.05, increase=0.012, rounds=4)
        assert hy.cwnd <= plain.cwnd


def test_invalid_config():
    for bad in (
        CubicConfig(initial_cwnd_packets=0),
        CubicConfig(c=0),
        CubicConfig(beta=1.0),
        CubicConfig(emulated_connections=0),
    ):
        with pytest.raises(ValueError):
            bad.validate()
