"""Incremental cache + parallel analysis: warm runs, invalidation,
bit-identical --jobs output, and the new CLI surface (SARIF, graph
dumps, unknown-rule listing)."""

import json
import textwrap

from repro.cli import main
from repro.lint import Baseline, Finding, LintConfig, lint_paths, render_findings
from repro.lint.cache import AnalysisCache, compute_signature
from repro.lint.rules import all_rules

BAD = """
    import time

    def stamp():
        return time.time()
"""

CLEAN = """
    def stamp(clock):
        return clock()
"""


def make_project(tmp_path, files):
    root = tmp_path / "proj"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    return LintConfig.for_root(root)


def run_lint(config, **kwargs):
    return lint_paths(config=config, baseline=Baseline(), **kwargs)


def rows(report):
    return [f.row() for f in report.findings]


# ------------------------------------------------------------------- cache


def test_warm_run_hits_cache_with_identical_findings(tmp_path):
    config = make_project(
        tmp_path,
        {"src/repro/netsim/a.py": BAD, "src/repro/b.py": CLEAN},
    )
    cold = run_lint(config)
    assert cold.cache_hits == 0 and cold.cache_misses == 2
    assert config.cache_path().exists()
    warm = run_lint(config)
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    assert rows(warm) == rows(cold)
    assert [f.row() for f in warm.suppressed] == [
        f.row() for f in cold.suppressed
    ]


def test_editing_one_file_invalidates_only_it(tmp_path):
    config = make_project(
        tmp_path,
        {"src/repro/netsim/a.py": BAD, "src/repro/b.py": CLEAN},
    )
    run_lint(config)
    path = config.root / "src/repro/b.py"
    path.write_text(path.read_text() + "\n\nX = 1\n")
    warm = run_lint(config)
    assert warm.cache_hits == 1 and warm.cache_misses == 1


def test_cache_disabled_never_writes(tmp_path):
    config = make_project(tmp_path, {"src/repro/a.py": CLEAN})
    report = run_lint(config, use_cache=False)
    assert report.cache_hits == 0
    assert not config.cache_path().exists()


def test_rule_version_bump_invalidates_cache(tmp_path):
    """The signature covers (id, version, scope) of every rule: bumping
    a version must discard the whole cache, not serve stale findings."""
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD})
    rules = all_rules()
    sig = compute_signature(config, rules)
    bumped = list(rules)

    class Bumped(type(bumped[0])):
        version = bumped[0].version + 1

    bumped[0] = Bumped()
    assert compute_signature(config, bumped) != sig

    run_lint(config)
    cache = AnalysisCache.load(config.cache_path(), "other-signature")
    assert cache.entries == {}


def test_cache_survives_corrupt_file(tmp_path):
    config = make_project(tmp_path, {"src/repro/a.py": CLEAN})
    run_lint(config)
    config.cache_path().write_text("{not json")
    report = run_lint(config)
    assert report.cache_hits == 0 and report.ok


def test_stale_cache_entries_pruned(tmp_path):
    config = make_project(
        tmp_path,
        {"src/repro/a.py": CLEAN, "src/repro/b.py": CLEAN},
    )
    run_lint(config)
    (config.root / "src/repro/b.py").unlink()
    run_lint(config)
    data = json.loads(config.cache_path().read_text())
    assert sorted(data["files"]) == ["src/repro/a.py"]


# -------------------------------------------------------------------- jobs


def test_jobs_output_bit_identical(tmp_path):
    files = {
        f"src/repro/netsim/m{i}.py": BAD if i % 3 == 0 else CLEAN
        for i in range(12)
    }
    config = make_project(tmp_path, files)
    serial = run_lint(config, jobs=1, use_cache=False)
    parallel = run_lint(config, jobs=8, use_cache=False)
    assert render_findings(serial.findings, "json") == render_findings(
        parallel.findings, "json"
    )
    assert rows(serial) == rows(parallel)
    assert [f.row() for f in serial.suppressed] == [
        f.row() for f in parallel.suppressed
    ]


def test_jobs_cli_flag(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/a.py": CLEAN})
    code = main(
        [
            "lint",
            str(config.src),
            "--root",
            str(config.root),
            "--jobs",
            "2",
            "--no-cache",
        ]
    )
    assert code == 0
    assert "lint: clean" in capsys.readouterr().out


# --------------------------------------------------------------------- CLI


def test_unknown_rule_error_lists_known_rules(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/a.py": CLEAN})
    code = main(
        [
            "lint",
            str(config.src),
            "--root",
            str(config.root),
            "--rules",
            "no-such-rule",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown rule id(s): no-such-rule" in err
    # The known ids are enumerated so the user can pick the right one.
    assert "wall-clock" in err
    assert "lock-order-cycle" in err


def test_sarif_emitted_even_when_clean(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/a.py": CLEAN})
    code = main(
        [
            "lint",
            str(config.src),
            "--root",
            str(config.root),
            "--format",
            "sarif",
            "--no-cache",
        ]
    )
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"] == []


def test_sarif_findings_have_locations(tmp_path, capsys):
    config = make_project(tmp_path, {"src/repro/netsim/a.py": BAD})
    code = main(
        [
            "lint",
            str(config.src),
            "--root",
            str(config.root),
            "--format",
            "sarif",
            "--no-cache",
            "--baseline",
            str(tmp_path / "none.json"),
        ]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    results = doc["runs"][0]["results"]
    assert results
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/netsim/a.py"
    assert loc["region"]["startLine"] > 0
    driver = doc["runs"][0]["tool"]["driver"]
    assert {r["id"] for r in driver["rules"]} == {
        r["ruleId"] for r in results
    }


def test_sarif_renderer_unit():
    doc = json.loads(
        render_findings(
            [
                Finding(
                    rule="wall-clock",
                    path="src/repro/x.py",
                    line=3,
                    message="m",
                    snippet="time.time()",
                )
            ],
            "sarif",
        )
    )
    result = doc["runs"][0]["results"][0]
    assert result["ruleId"] == "wall-clock"
    assert result["level"] == "error"


def test_dump_graph_cli(tmp_path, capsys):
    config = make_project(
        tmp_path,
        {
            "src/repro/a.py": """
                import threading

                from repro.b import helper

                LOCK = threading.Lock()

                def go():
                    with LOCK:
                        helper()
            """,
            "src/repro/b.py": """
                def helper():
                    return 1
            """,
        },
    )
    for what, needle in (
        ("imports", "repro.a -> repro.b"),
        ("calls", "repro.a.go:9 -> repro.b.helper"),
        ("locks", "lock repro.a.LOCK [Lock]"),
    ):
        code = main(
            [
                "lint",
                str(config.src),
                "--root",
                str(config.root),
                "--dump-graph",
                what,
                "--no-cache",
            ]
        )
        assert code == 0
        assert needle in capsys.readouterr().out
