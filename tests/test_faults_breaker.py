"""Circuit breakers: state machine, fake-clock cooldown, registry."""

import pytest

from repro.faults.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerOpen,
    CircuitBreaker,
    degraded,
    get_breaker,
    reset_breakers,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_breakers()
    yield
    reset_breakers()


def make(threshold=3, reset_after=10.0):
    clock = FakeClock()
    breaker = CircuitBreaker(
        "dep", failure_threshold=threshold, reset_after_s=reset_after,
        clock=clock,
    )
    return breaker, clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make()
        assert breaker.status()["state"] == CLOSED
        assert breaker.allow()

    def test_opens_at_threshold(self):
        breaker, _ = make(threshold=3)
        for _ in range(2):
            breaker.record_failure(ValueError("x"))
            assert not breaker.is_open()
        breaker.record_failure(ValueError("x"))
        assert breaker.is_open()
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure(ValueError("x"))
        breaker.record_success()
        breaker.record_failure(ValueError("x"))
        assert not breaker.is_open()

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = make(threshold=1, reset_after=10.0)
        breaker.record_failure(ValueError("down"))
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()  # the probe
        assert breaker.status()["state"] == HALF_OPEN

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1)
        breaker.record_failure(ValueError("down"))
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.status()["state"] == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_immediately(self):
        breaker, clock = make(threshold=3)
        for _ in range(3):
            breaker.record_failure(ValueError("down"))
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure(ValueError("still down"))  # one is enough
        assert breaker.status()["state"] == OPEN
        assert not breaker.allow()

    def test_status_carries_cause(self):
        breaker, _ = make(threshold=1)
        breaker.record_failure(ValueError("disk on fire"))
        assert "disk on fire" in breaker.status()["cause"]


class TestCall:
    def test_call_passthrough_on_success(self):
        breaker, _ = make()
        assert breaker.call(lambda: 7) == 7

    def test_call_records_failures_then_raises_breaker_open(self):
        breaker, _ = make(threshold=2)
        for _ in range(2):
            with pytest.raises(ValueError):
                breaker.call(lambda: (_ for _ in ()).throw(ValueError("x")))
        with pytest.raises(BreakerOpen) as err:
            breaker.call(lambda: 7)
        assert err.value.name == "dep"
        assert "x" in str(err.value)


class TestRegistry:
    def test_get_breaker_memoizes_by_name(self):
        assert get_breaker("a") is get_breaker("a")
        assert get_breaker("a") is not get_breaker("b")

    def test_degraded_lists_open_breakers_with_cause(self):
        healthy = get_breaker("healthy")
        sick = get_breaker("sick", failure_threshold=1)
        healthy.record_success()
        sick.record_failure(OSError("no space left on device"))
        report = degraded()
        assert set(report) == {"sick"}
        assert "no space left" in report["sick"]

    def test_reset_breakers_drops_state(self):
        get_breaker("x", failure_threshold=1).record_failure(ValueError("v"))
        assert degraded()
        reset_breakers()
        assert degraded() == {}
        assert not get_breaker("x").is_open()
