"""repro.exec: executor engine, retries/timeouts, telemetry, determinism.

The job functions used by the pool tests live at module level so they
pickle under the ``spawn`` start method; the crash/flake injections
coordinate across worker processes through counter files.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exec import ExecutionError, Executor, Job, TrialJob, pair_trial_jobs
from repro.exec.telemetry import JobRecord, ProgressPrinter
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import gather_trials
from repro.harness.runner import Impl, sampled_points, trial_identity

QUICK = ExperimentConfig(duration_s=3.0, trials=2)
COND = NetworkCondition(bandwidth_mbps=20, rtt_ms=10, buffer_bdp=1)


# --------------------------------------------------------------- job fns
# Must be module-level (picklable) and accept a ``cache`` keyword.


def _double(x, cache=None):
    return np.array([2.0 * x])


def _bump_then(counter: str, fail_attempts: int, action: str, cache=None):
    """Fail (raise or hard-crash) for the first ``fail_attempts`` calls."""
    path = Path(counter)
    count = int(path.read_text()) if path.exists() else 0
    path.write_text(str(count + 1))
    if count < fail_attempts:
        if action == "crash":
            time.sleep(0.2)  # let the queue feeder flush "start" first
            os._exit(23)
        raise RuntimeError(f"transient failure #{count}")
    return np.array([42.0])


def _sleepy(seconds, cache=None):
    time.sleep(seconds)
    return np.zeros(1)


# -------------------------------------------------------------- serial mode


class TestSerialExecutor:
    def test_runs_in_order_and_caches(self):
        cache = ResultCache()
        ex = Executor(jobs=1, cache=cache)
        jobs = [Job(fn=_double, args=(x,), key=f"k{x}") for x in range(4)]
        values = ex.run(jobs)
        assert [v[0] for v in values] == [0.0, 2.0, 4.0, 6.0]
        assert ex.last_mode == "serial"
        # Results landed in the campaign cache: a re-run is all hits.
        values2 = ex.run(jobs)
        assert all(np.array_equal(a, b) for a, b in zip(values, values2))
        assert [r.status for r in ex.last_records] == ["cached"] * 4

    def test_retry_recovers_from_transient_failure(self, tmp_path):
        counter = tmp_path / "attempts"
        ex = Executor(jobs=1, cache=ResultCache(), retries=2, backoff_s=0.01)
        (value,) = ex.run(
            [Job(fn=_bump_then, args=(str(counter), 1, "raise"), key="flaky")]
        )
        assert value[0] == 42.0
        record = ex.last_records[0]
        assert record.status == "ok" and record.attempts == 2 and record.retried

    def test_exhausted_retries_raise(self, tmp_path):
        counter = tmp_path / "attempts"
        ex = Executor(jobs=1, cache=ResultCache(), retries=1, backoff_s=0.01)
        with pytest.raises(ExecutionError) as err:
            ex.run([Job(fn=_bump_then, args=(str(counter), 99, "raise"), key="dead")])
        assert ex.last_records[0].status == "failed"
        assert "transient failure" in str(err.value)

    def test_duplicate_keys_computed_once(self):
        ex = Executor(jobs=1, cache=ResultCache())
        jobs = [Job(fn=_double, args=(7,), key="same")] * 3
        values = ex.run(jobs)
        assert all(v[0] == 14.0 for v in values)
        statuses = [r.status for r in ex.last_records]
        assert statuses.count("ok") == 1 and statuses.count("cached") == 2

    def test_progress_callback_sees_every_job(self):
        seen = []
        ex = Executor(
            jobs=1,
            cache=ResultCache(),
            progress=lambda record, done, total: seen.append((done, total)),
        )
        ex.run([Job(fn=_double, args=(x,), key=f"p{x}") for x in range(3)])
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_printer_renders(self, capsys):
        import sys

        printer = ProgressPrinter(stream=sys.stderr)
        printer(JobRecord(index=0, label="x", status="ok", wall_s=0.5), 1, 2)
        assert "[1/2] x: ok" in capsys.readouterr().err

    def test_progress_printer_writes_each_line_atomically(self):
        # Regression: with jobs>1, per-update ``print()`` calls from
        # concurrent progress callbacks interleaved their text and
        # newline writes into garbled lines.  Each update must be one
        # newline-terminated write() call.
        class RecordingStream:
            def __init__(self):
                self.writes = []
                self.flushes = 0

            def write(self, text):
                self.writes.append(text)

            def flush(self):
                self.flushes += 1

        stream = RecordingStream()
        printer = ProgressPrinter(stream=stream)
        printer(JobRecord(index=0, label="a", status="ok", wall_s=0.1), 1, 3)
        printer(
            JobRecord(index=1, label="b", status="failed", wall_s=0.2,
                      error="boom"),
            2, 3,
        )
        assert len(stream.writes) == 2  # exactly one write per update
        assert all(w.endswith("\n") and w.count("\n") == 1
                   for w in stream.writes)
        assert stream.writes[1] == "[2/3] b: failed 0.20s (boom)\n"
        assert stream.flushes == 2


# ---------------------------------------------------------------- pool mode


class TestPoolExecutor:
    def test_parallel_trials_identical_to_serial(self):
        test, ref = Impl("quicgo", "reno"), Impl("linux", "reno")
        serial = gather_trials(test, ref, COND, QUICK, cache=ResultCache())
        ex = Executor(jobs=2, cache=ResultCache())
        parallel = gather_trials(test, ref, COND, QUICK, executor=ex)
        assert ex.last_mode.startswith("pool-spawn")
        assert len(serial) == len(parallel) == QUICK.trials
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b), "parallel must be bit-identical"

    def test_worker_crash_retried_to_completion(self, tmp_path):
        counter = tmp_path / "crashes"
        ex = Executor(jobs=2, cache=ResultCache(), retries=2, backoff_s=0.01)
        (value,) = ex.run(
            [Job(fn=_bump_then, args=(str(counter), 1, "crash"), key="crashy")]
        )
        assert value[0] == 42.0
        record = ex.last_records[0]
        assert record.status == "ok" and record.attempts >= 2

    def test_timeout_kills_worker_and_fails(self, tmp_path):
        manifest = tmp_path / "runs.jsonl"
        ex = Executor(
            jobs=2,
            cache=ResultCache(),
            timeout_s=0.5,
            retries=0,
            manifest_path=manifest,
        )
        with pytest.raises(ExecutionError):
            ex.run([Job(fn=_sleepy, args=(60.0,), key="slow", label="sleeper")])
        assert ex.last_records[0].status == "timeout"
        events = [json.loads(line) for line in manifest.read_text().splitlines()]
        job_events = [e for e in events if e["event"] == "job"]
        assert job_events and job_events[0]["status"] == "timeout"
        assert events[-1]["event"] == "campaign_end"
        assert events[-1]["statuses"] == {"timeout": 1}

    def test_fallback_to_serial_when_pool_cannot_start(self):
        ex = Executor(jobs=2, cache=ResultCache(), start_method="no-such-method")
        with pytest.warns(UserWarning, match="falling back"):
            values = ex.run([Job(fn=_double, args=(x,), key=f"f{x}") for x in range(3)])
        assert [v[0] for v in values] == [0.0, 2.0, 4.0]
        assert ex.last_mode == "serial-fallback"


# ------------------------------------------------------------ job specs


class TestTrialJob:
    def test_identity_matches_serial_derivation(self):
        spec = TrialJob(
            Impl("quiche", "cubic"), Impl("linux", "cubic"), COND, QUICK, trial=1
        )
        seed, key = trial_identity(
            Impl("quiche", "cubic"), Impl("linux", "cubic"), COND, QUICK, 1
        )
        assert spec.seed == seed and spec.cache_key == key
        job = spec.to_job()
        assert job.fn is sampled_points
        assert job.key == key
        assert "trial 1" in job.label

    def test_pair_trial_jobs_one_per_trial_distinct_keys(self):
        jobs = pair_trial_jobs(
            Impl("quiche", "cubic"), Impl("linux", "cubic"), COND, QUICK
        )
        assert len(jobs) == QUICK.trials
        assert len({j.key for j in jobs}) == QUICK.trials

    def test_measurement_jobs_dedupe_reference_between_cells(self):
        from repro.exec import measurement_trial_jobs

        a = measurement_trial_jobs("quiche", "cubic", COND, QUICK)
        b = measurement_trial_jobs("mvfst", "cubic", COND, QUICK)
        keys_a, keys_b = {j.key for j in a}, {j.key for j in b}
        # The reference-vs-reference trials are the same jobs in both cells.
        assert len(keys_a & keys_b) == QUICK.trials

    def test_sweep_jobs_cover_reference_and_gains(self):
        from repro.exec import sweep_trial_jobs

        jobs = sweep_trial_jobs((1.0, 2.0), COND, QUICK)
        # 2 reference trials + 2 gains x 2 trials, all distinct keys.
        assert len(jobs) == 6
        assert len({j.key for j in jobs}) == 6

    def test_share_job_key_matches_serial(self):
        from repro.exec import share_job
        from repro.harness.fairness import share_cache_key

        first, second = Impl("quiche", "cubic"), Impl("linux", "cubic")
        job = share_job(first, second, COND, QUICK)
        assert job.key == share_cache_key(first, second, COND, QUICK)
