"""End-to-end dynamics: the qualitative facts the paper's results rest on.

These are short scaled-down runs (10 Mbps, 15-30 s) asserting directions,
not magnitudes; the benchmark suite regenerates the paper-scale numbers.
"""

import numpy as np
import pytest

from repro.harness.config import NetworkCondition
from repro.harness.runner import Impl, run_pair

SHALLOW = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)
DEEP = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=5)


def mean_shares(a, b, condition, duration=20.0, seeds=(1, 2, 3)):
    shares = []
    for seed in seeds:
        result = run_pair(a, b, condition, duration, seed=seed)
        t1, t2 = result.throughputs_mbps
        shares.append(t1 / (t1 + t2))
    return float(np.mean(shares))


def test_link_fully_utilized():
    result = run_pair(Impl("linux", "cubic"), Impl("linux", "cubic"), SHALLOW, 15.0, seed=1)
    assert sum(result.throughputs_mbps) == pytest.approx(10.0, rel=0.1)


def test_kernel_cubic_self_fairness():
    share = mean_shares(Impl("linux", "cubic"), Impl("linux", "cubic"), SHALLOW)
    assert 0.35 < share < 0.65


def test_kernel_reno_self_fairness():
    share = mean_shares(Impl("linux", "reno"), Impl("linux", "reno"), SHALLOW)
    assert 0.35 < share < 0.65


def test_bbr_beats_cubic_in_shallow_buffer():
    """§4.4: BBR wins shallow buffers (loss-agnostic vs backing-off)."""
    share = mean_shares(Impl("linux", "bbr"), Impl("linux", "cubic"), SHALLOW, duration=30.0)
    assert share > 0.6


def test_cubic_beats_bbr_in_deep_buffer():
    """§4.4: CUBIC, the buffer-filler, wins deep buffers."""
    share = mean_shares(Impl("linux", "cubic"), Impl("linux", "bbr"), DEEP, duration=40.0)
    assert share > 0.55


def test_quiche_rollback_makes_cubic_aggressive():
    """§5/Fig 15: RFC8312bis rollback -> quiche outruns kernel CUBIC."""
    share = mean_shares(Impl("quiche", "cubic"), Impl("linux", "cubic"), SHALLOW)
    assert share > 0.6


def test_quiche_fix_restores_fairness():
    share = mean_shares(Impl("quiche", "cubic", "fixed"), Impl("linux", "cubic"), SHALLOW)
    assert 0.3 < share < 0.7


def test_mvfst_bbr_pacing_overshoot():
    """Table 3: mvfst BBR's 1.25x pacing starves the kernel BBR flow."""
    share = mean_shares(Impl("mvfst", "bbr"), Impl("linux", "bbr"), SHALLOW, duration=40.0)
    assert share > 0.65


def test_mvfst_bbr_fix_restores_balance():
    share = mean_shares(
        Impl("mvfst", "bbr", "fixed"), Impl("linux", "bbr"), SHALLOW, duration=40.0
    )
    assert share < 0.75


def test_xquic_bbr_gain_overshoot_and_fix():
    aggressive = mean_shares(Impl("xquic", "bbr"), Impl("linux", "bbr"), SHALLOW, duration=40.0)
    fixed = mean_shares(
        Impl("xquic", "bbr", "fixed"), Impl("linux", "bbr"), SHALLOW, duration=40.0
    )
    assert aggressive > fixed


def test_neqo_stack_artifact_weakens_cubic():
    """Table 3: neqo CUBIC sits well below its fair share (Δ-tput < 0)."""
    share = mean_shares(Impl("neqo", "cubic"), Impl("linux", "cubic"), SHALLOW)
    assert share < 0.4


def test_xquic_reno_stack_artifact():
    share = mean_shares(Impl("xquic", "reno"), Impl("linux", "reno"), SHALLOW)
    assert share < 0.45


def test_conformant_stack_shares_fairly():
    share = mean_shares(Impl("quicgo", "cubic"), Impl("linux", "cubic"), SHALLOW)
    assert 0.35 < share < 0.65


def test_retransmissions_present_in_droptail():
    result = run_pair(Impl("linux", "cubic"), Impl("linux", "cubic"), SHALLOW, 15.0, seed=1)
    assert result.first.retransmissions + result.second.retransmissions > 0


def test_deep_buffer_raises_delay():
    shallow = run_pair(Impl("linux", "cubic"), Impl("linux", "cubic"), SHALLOW, 15.0, seed=1)
    deep = run_pair(Impl("linux", "cubic"), Impl("linux", "cubic"), DEEP, 15.0, seed=1)
    d_shallow = shallow.first.trace.mean_one_way_delay()
    d_deep = deep.first.trace.mean_one_way_delay()
    assert d_deep > d_shallow * 1.5
