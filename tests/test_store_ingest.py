"""Ingestion paths: JSONL manifests, cache directories, live results,
and the executor's store sink."""

import json

import numpy as np
import pytest

from repro.exec import Executor, Job
from repro.exec.telemetry import RunManifest
from repro.harness.cache import ResultCache
from repro.store import (
    ResultStore,
    ingest_cache_dir,
    ingest_manifest,
    ingest_measurements,
)


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "ingest.db") as s:
        yield s


def _double(x, cache=None):
    return np.array([2.0 * x])


class TestManifestIngest:
    def _write_manifest(self, path, campaigns=("alpha",), torn=False):
        with RunManifest(path) as manifest:
            for campaign in campaigns:
                manifest.campaign_start(campaign, jobs=2, workers=1, mode="serial")
                from repro.exec.telemetry import JobRecord

                manifest.job(campaign, JobRecord(index=0, status="ok", wall_s=0.1))
                manifest.campaign_end(campaign, [], wall_s=0.2, cache={})
        if torn:
            with open(path, "a") as handle:
                handle.write('{"event": "job", "campaign": "alp')

    def test_manifest_becomes_runs_and_events(self, store, tmp_path):
        path = tmp_path / "runs.jsonl"
        self._write_manifest(path, campaigns=("alpha", "beta"))
        report = ingest_manifest(store, path, run_prefix="ci")
        assert report.runs == 2 and report.events == 6
        assert report.skipped_lines == 0
        assert {r.name for r in store.runs()} == {"ci:alpha", "ci:beta"}
        events = store.events(campaign="alpha")
        assert [e["event"] for e in events] == [
            "campaign_start", "job", "campaign_end",
        ]
        assert events[0]["mode"] == "serial"

    def test_torn_final_line_is_skipped_not_fatal(self, store, tmp_path):
        path = tmp_path / "crashed.jsonl"
        self._write_manifest(path, torn=True)
        report = ingest_manifest(store, path)
        assert report.skipped_lines == 1 and report.events == 3

    def test_reingesting_gets_fresh_run_names(self, store, tmp_path):
        path = tmp_path / "runs.jsonl"
        self._write_manifest(path)
        ingest_manifest(store, path, run_prefix="p")
        ingest_manifest(store, path, run_prefix="p")
        names = {r.name for r in store.runs()}
        assert names == {"p:alpha", "p:alpha#2"}

    def test_default_prefix_is_file_stem(self, store, tmp_path):
        path = tmp_path / "nightly.jsonl"
        self._write_manifest(path)
        ingest_manifest(store, path)
        assert store.has_run("nightly:alpha")


class TestCacheDirIngest:
    def test_npy_payloads_become_trials(self, store, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(directory=cache_dir)
        payloads = {f"key{i}": np.arange(4.0) * i for i in range(3)}
        for key, value in payloads.items():
            cache.put(key, value)
        (cache_dir / "junk.npy.tmp123").write_bytes(b"partial")
        report = ingest_cache_dir(store, cache_dir)
        assert report.trials == 3 and report.trials_deduped == 0
        for key, value in payloads.items():
            assert np.array_equal(store.get_trial(key), value)
        # Second pass dedupes everything.
        again = ingest_cache_dir(store, cache_dir)
        assert again.trials == 0 and again.trials_deduped == 3

    def test_unreadable_file_is_counted_and_skipped(self, store, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "broken.npy").write_bytes(b"not numpy")
        report = ingest_cache_dir(store, cache_dir)
        assert report.skipped_lines == 1 and report.trials == 0


class TestMeasurementIngest:
    def test_live_measurements_land_under_run(
        self, store, small_condition, fresh_cache
    ):
        from repro.harness.config import ExperimentConfig
        from repro.harness.conformance import measure_conformance

        quick = ExperimentConfig(duration_s=4.0, trials=1)
        measurement = measure_conformance(
            "quicgo", "reno", small_condition, quick, cache=fresh_cache
        )
        report = ingest_measurements(store, "imported", [measurement])
        assert report.measurements == 1
        (value,) = [
            r.value for r in store.query(run="imported", metric="conf")
        ]
        assert value == measurement.result.conformance


class TestExecutorStoreSink:
    def test_campaign_writes_events_and_trials(self, store):
        ex = Executor(jobs=1, cache=ResultCache(directory=None), store=store)
        jobs = [Job(fn=_double, args=(x,), key=f"k{x}") for x in range(3)]
        ex.run(jobs, campaign="demo")
        ex.close()
        assert store.has_run("demo")
        events = store.events(campaign="demo")
        assert events[0]["event"] == "campaign_start"
        assert events[-1]["event"] == "campaign_end"
        assert [e["status"] for e in events if e["event"] == "job"] == ["ok"] * 3
        assert store.trial_keys("demo") == ["k0", "k1", "k2"]
        assert np.array_equal(store.get_trial("k1"), np.array([2.0]))

    def test_store_run_pins_all_campaigns_to_one_run(self, store):
        ex = Executor(
            jobs=1, cache=ResultCache(directory=None),
            store=store, store_run="pinned",
        )
        ex.run([Job(fn=_double, args=(1,), key="a")], campaign="one")
        ex.run([Job(fn=_double, args=(2,), key="b")], campaign="two")
        ex.close()
        assert {r.name for r in store.runs()} == {"pinned"}
        assert store.trial_keys("pinned") == ["a", "b"]

    def test_executor_owns_store_opened_from_path(self, tmp_path):
        path = tmp_path / "owned.db"
        with Executor(jobs=1, cache=ResultCache(directory=None), store=path) as ex:
            ex.run([Job(fn=_double, args=(3,), key="k")], campaign="c")
        with ResultStore(path) as reopened:
            assert reopened.has_trial("k")
