"""The open CCA registry: registration seam, capabilities, module loading."""

import pytest

import repro.ccax as ccax
from repro.cca.base import CongestionController
from repro.cca.reno import NewReno
from repro.ccax import (
    CCACapabilities,
    RegistrationError,
    UnknownCCA,
    register_congestion_control,
)
from repro.ccax import registry as reg


def make_reno(mss):
    return NewReno(mss)


@pytest.fixture
def scratch_cca():
    """Register a throwaway CCA; always unregister on the way out."""
    names = []

    def register(name="testcca", factory=make_reno, **kwargs):
        info = register_congestion_control(name, factory, **kwargs)
        names.append(name)
        return info

    try:
        yield register
    finally:
        for name in names:
            reg.unregister(name)


def test_builtins_are_registered():
    for name in ("cubic", "bbr", "reno", "bbr2", "bbr3", "gcc"):
        assert reg.is_registered(name)
    # The kernel-referenced trio is exactly the paper's study set.
    assert reg.kernel_reference_ccas() == ("cubic", "bbr", "reno")


def test_register_and_build(scratch_cca):
    info = scratch_cca(
        "testcca",
        capabilities=CCACapabilities(family="loss-based", description="demo"),
    )
    assert info.name == "testcca"
    assert reg.is_registered("testcca")
    controller = reg.build("testcca", 1200)
    assert isinstance(controller, CongestionController)
    assert controller.mss == 1200


def test_duplicate_registration_requires_replace(scratch_cca):
    scratch_cca("testcca")
    with pytest.raises(RegistrationError, match="already registered"):
        register_congestion_control("testcca", make_reno)
    replaced = register_congestion_control(
        "testcca", make_reno, origin="elsewhere", replace=True
    )
    assert replaced.origin == "elsewhere"


def test_builtin_cannot_be_shadowed_by_accident():
    with pytest.raises(RegistrationError, match="already registered"):
        register_congestion_control("cubic", make_reno)
    assert reg.get("cubic").origin == "builtin"


def test_unknown_cca_names_the_alternatives():
    with pytest.raises(UnknownCCA, match="registered: .*cubic"):
        reg.get("definitely-not-a-cca")
    assert not reg.is_registered("definitely-not-a-cca")


def test_invalid_registrations():
    with pytest.raises(RegistrationError):
        register_congestion_control("", make_reno)
    with pytest.raises(RegistrationError):
        register_congestion_control("bad name!", make_reno)
    with pytest.raises(RegistrationError):
        register_congestion_control("okname", "not-callable")


def test_factory_type_is_validated_at_build(scratch_cca):
    scratch_cca("testcca", factory=lambda mss: object())
    with pytest.raises(RegistrationError, match="not a CongestionController"):
        reg.build("testcca", 1200)


def test_capabilities_from_mapping(scratch_cca):
    info = scratch_cca(
        "testcca",
        capabilities={
            "family": "delay-based",
            "delay_based": True,
            "host_stacks": ["quiche"],
        },
    )
    caps = info.capabilities
    assert caps.family == "delay-based"
    assert caps.host_stacks == ("quiche",)
    assert caps.hosts("quiche") and not caps.hosts("xquic")


def test_capabilities_reject_unknown_fields():
    with pytest.raises(RegistrationError, match="unknown capability"):
        register_congestion_control(
            "testcca", make_reno, capabilities={"fmaily": "typo"}
        )
    with pytest.raises(RegistrationError, match="mapping"):
        register_congestion_control(
            "testcca", make_reno, capabilities="loss-based"
        )


def test_host_stacks_wildcard_and_disabled():
    assert CCACapabilities(host_stacks="*").hosts("anything")
    assert not CCACapabilities(host_stacks=()).hosts("quiche")
    # The kernel trio disables the fallback: hosting them is a per-stack
    # deviation-table decision, never a blanket default.
    for name in reg.kernel_reference_ccas():
        assert reg.get(name).capabilities.host_stacks == ()
        assert not reg.hosted_by("quiche", name)
    # The new families are hostable anywhere.
    assert reg.hosted_by("quiche", "bbr3")
    assert reg.hosted_by("linux", "gcc")
    assert not reg.hosted_by("linux", "no-such-cca")


def test_describe_is_json_ready(scratch_cca):
    import json

    info = scratch_cca("testcca")
    doc = info.describe()
    assert doc["name"] == "testcca"
    assert doc["origin"] == "user"
    json.dumps(doc)  # no non-serialisable values
    assert reg.get("bbr2").describe()["family"] == "model-based"


def test_registration_order_is_stable(scratch_cca):
    before = reg.names()
    scratch_cca("testcca")
    assert reg.names() == before + ("testcca",)
    assert [i.name for i in reg.entries()] == list(before) + ["testcca"]
    assert [i.name for i in reg.external_entries()] == ["testcca"]


def test_load_modules_is_idempotent(tmp_path):
    module = tmp_path / "my_cca.py"
    module.write_text(
        "from repro.cca.reno import NewReno\n"
        "from repro.ccax import CCACapabilities, register_congestion_control\n"
        "\n"
        "def make(mss):\n"
        "    return NewReno(mss)\n"
        "\n"
        "register_congestion_control(\n"
        "    'loadedcca', make,\n"
        "    CCACapabilities(family='loss-based'), replace=True,\n"
        ")\n"
    )
    try:
        first = ccax.load_modules([str(module)])
        assert reg.is_registered("loadedcca")
        # Loading the same path again is a no-op, not a duplicate-name
        # error: workers re-load modules before building flows.
        second = ccax.load_modules([str(module)])
        assert first == second
    finally:
        reg.unregister("loadedcca")


def test_load_modules_missing_file(tmp_path):
    with pytest.raises(RegistrationError, match="not found"):
        ccax.load_modules([str(tmp_path / "nope.py")])
