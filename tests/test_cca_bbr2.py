"""BBR v2/v3 unit behaviour: inflight bounds, ProbeBW cycle, ProbeRTT."""

import pytest

from repro.cca.base import AckEvent
from repro.cca.bbr2 import BBR2, BBR3, BBR2Config, bbr3_config

MSS = 1000


class Driver:
    """Feeds a BBR2 instance a synthetic steady ACK stream."""

    def __init__(self, bbr, rtt=0.05):
        self.bbr = bbr
        self.rtt = rtt
        self.now = 0.0
        self.round = 0

    def ack(self, rate_bytes_s, inflight=0, dt=0.01, rtt=None):
        self.now += dt
        self.bbr.on_ack(
            AckEvent(
                now=self.now,
                bytes_acked=MSS,
                rtt_sample=rtt if rtt is not None else self.rtt,
                delivery_rate=rate_bytes_s,
                is_app_limited=False,
                bytes_in_flight=inflight,
                round_count=self.round,
            )
        )

    def run_rounds(self, n, rate, inflight=0, acks_per_round=5, rtt=None):
        for _ in range(n):
            self.round += 1
            for _ in range(acks_per_round):
                self.ack(rate, inflight=inflight, rtt=rtt)


def make_probe_bw(cls=BBR2, config=None, rate=2e6):
    """Drive a fresh controller to PROBE_BW (bw 2 MB/s, min_rtt 50 ms)."""
    bbr = cls(MSS) if config is None else cls(MSS, config)
    driver = Driver(bbr)
    driver.run_rounds(3, rate=rate)
    driver.run_rounds(4, rate=rate, inflight=1000 * MSS)
    driver.run_rounds(1, rate=rate, inflight=0)
    assert bbr.state == BBR2.PROBE_BW
    return bbr, driver


def test_startup_gains_and_slow_start():
    bbr = BBR2(MSS)
    assert bbr.state == BBR2.STARTUP
    assert bbr.in_slow_start
    assert bbr.pacing_gain == pytest.approx(2.77)
    assert bbr.cwnd_gain == pytest.approx(2.89)


def test_startup_exits_on_loss():
    """v2 exits STARTUP on loss, not only on a bandwidth plateau."""
    bbr = BBR2(MSS)
    driver = Driver(bbr)
    driver.run_rounds(2, rate=1e6)
    assert bbr.state == BBR2.STARTUP
    bbr.on_congestion_event(driver.now, bytes_in_flight=20 * MSS)
    driver.ack(1e6, inflight=20 * MSS)
    assert bbr.state in (BBR2.DRAIN, BBR2.PROBE_BW)


def test_probe_bw_entered_in_down_phase():
    bbr, _ = make_probe_bw()
    assert bbr.phase == BBR2.DOWN
    assert bbr.pacing_gain == pytest.approx(0.75)


def test_model_estimates():
    bbr, _ = make_probe_bw()
    assert bbr.btl_bw == pytest.approx(2e6)
    assert bbr.min_rtt == pytest.approx(0.05)
    assert bbr.bdp() == pytest.approx(2e6 * 0.05, rel=0.01)


def test_probe_bw_phase_sequence():
    """DOWN -> CRUISE -> REFILL -> UP, with the configured gains."""
    bbr, driver = make_probe_bw(config=BBR2Config(cruise_s=0.2))
    # DOWN drains: low inflight + one RTT elapsed moves to CRUISE.
    for _ in range(8):
        driver.ack(2e6, inflight=10 * MSS)
    assert bbr.phase == BBR2.CRUISE
    assert bbr.pacing_gain == pytest.approx(1.0)
    # CRUISE dwells for cruise_s, then REFILL.
    for _ in range(25):
        driver.ack(2e6, inflight=80 * MSS)
    assert bbr.phase == BBR2.REFILL
    # REFILL lasts one round, then UP probes with the up gain.
    driver.run_rounds(1, rate=2e6, inflight=90 * MSS)
    assert bbr.phase == BBR2.UP
    assert bbr.pacing_gain == pytest.approx(1.25)


def test_inflight_hi_clamp_after_loss():
    """Loss snaps inflight_hi to max(in flight, (1-beta) x target)."""
    bbr, driver = make_probe_bw()
    assert bbr.inflight_hi is None and bbr.inflight_lo is None
    target = bbr._target_inflight()
    assert target == pytest.approx(100 * MSS, rel=0.01)
    cut = max(int(target * 0.7), 4 * MSS)

    # Loss with little in flight: the (1-beta) cut dominates both bounds.
    bbr.on_congestion_event(driver.now, bytes_in_flight=30 * MSS)
    assert bbr.inflight_hi == cut
    assert bbr.inflight_lo == cut
    assert bbr.cwnd == 30 * MSS  # packet conservation

    # Loss with more in flight than the cut: hi keeps the measured value.
    bbr2, driver2 = make_probe_bw()
    target2 = bbr2._target_inflight()
    cut2 = max(int(target2 * 0.7), 4 * MSS)
    bbr2.on_congestion_event(driver2.now, bytes_in_flight=120 * MSS)
    assert bbr2.inflight_hi == 120 * MSS
    assert bbr2.inflight_lo == cut2


def test_inflight_bounds_cap_cwnd():
    bbr, driver = make_probe_bw()
    driver.run_rounds(30, rate=2e6, inflight=0)
    assert bbr.cwnd > 70 * MSS  # converged near gain x BDP
    bbr.on_congestion_event(driver.now, bytes_in_flight=90 * MSS)
    cut = bbr.inflight_lo
    # While the loss signal is fresh (before the next REFILL) the
    # short-term bound holds the window at the cut.
    for _ in range(8):
        driver.ack(2e6, inflight=0)
    assert bbr.inflight_lo == cut
    assert bbr.cwnd <= cut


def test_loss_during_up_falls_into_down():
    bbr, driver = make_probe_bw(config=BBR2Config(cruise_s=0.2))
    for _ in range(8):
        driver.ack(2e6, inflight=10 * MSS)
    for _ in range(25):
        driver.ack(2e6, inflight=80 * MSS)
    driver.run_rounds(1, rate=2e6, inflight=90 * MSS)
    assert bbr.phase == BBR2.UP
    bbr.on_congestion_event(driver.now, bytes_in_flight=110 * MSS)
    assert bbr.phase == BBR2.DOWN


def test_refill_clears_short_term_bound():
    bbr, driver = make_probe_bw(config=BBR2Config(cruise_s=0.2))
    bbr.on_congestion_event(driver.now, bytes_in_flight=50 * MSS)
    assert bbr.phase == BBR2.DOWN  # loss-learned bounds now set
    assert bbr.inflight_lo is not None
    for _ in range(8):
        driver.ack(2e6, inflight=10 * MSS)
    assert bbr.phase == BBR2.CRUISE
    for _ in range(25):
        driver.ack(2e6, inflight=10 * MSS)
    assert bbr.phase == BBR2.REFILL
    # REFILL declares the loss signal stale: the short-term bound lifts,
    # the long-term bound stays.
    assert bbr.inflight_lo is None
    assert bbr.inflight_hi is not None


def test_up_raises_inflight_hi_without_loss():
    bbr, driver = make_probe_bw(config=BBR2Config(cruise_s=0.2))
    bbr.on_congestion_event(driver.now, bytes_in_flight=50 * MSS)
    # Consume the loss round while still in DOWN so the UP probe below
    # starts loss-free.
    driver.run_rounds(1, rate=2e6, inflight=10 * MSS)
    for _ in range(8):
        driver.ack(2e6, inflight=10 * MSS)
    for _ in range(25):
        driver.ack(2e6, inflight=10 * MSS)
    driver.run_rounds(1, rate=2e6, inflight=10 * MSS)
    assert bbr.phase == BBR2.UP
    hi_before = bbr.inflight_hi
    # A loss-free round probing below the bound raises it x1.25.
    driver.run_rounds(1, rate=2e6, inflight=10 * MSS)
    assert bbr.phase == BBR2.UP
    assert bbr.inflight_hi == int(hi_before * 1.25)


def test_cruise_keeps_headroom_below_inflight_hi():
    bbr, driver = make_probe_bw()
    bbr.on_congestion_event(driver.now, bytes_in_flight=100 * MSS)
    for _ in range(8):
        driver.ack(2e6, inflight=10 * MSS)
    assert bbr.phase == BBR2.CRUISE
    driver.run_rounds(30, rate=2e6, inflight=0)
    if bbr.phase == BBR2.CRUISE:
        assert bbr.cwnd <= int(bbr.inflight_hi * 0.85)


def test_probe_rtt_floors_cwnd_at_half_bdp():
    """v2 ProbeRTT floors at half BDP, not v1's 4 packets."""
    bbr, driver = make_probe_bw()
    driver.run_rounds(10, rate=2e6, inflight=0)
    saw_probe_rtt = False
    cwnds = []
    for _ in range(1200):
        driver.ack(2e6, inflight=10 * MSS, dt=0.01, rtt=0.08)
        if bbr.state == BBR2.PROBE_RTT:
            saw_probe_rtt = True
            cwnds.append(bbr.cwnd)
    assert saw_probe_rtt
    floor = min(cwnds)
    assert floor > 4 * MSS  # well above the v1 floor
    # Half BDP at the re-measured 80 ms RTT: 0.5 x 2e6 x 0.08 = 80 kB.
    assert floor == pytest.approx(0.5 * 2e6 * 0.08, rel=0.05)


def test_probe_rtt_exits_back_to_probe_bw():
    bbr, driver = make_probe_bw()
    driver.run_rounds(10, rate=2e6, inflight=0)
    entered = False
    for i in range(3000):
        if i % 5 == 0:
            driver.round += 1
        driver.ack(2e6, inflight=3 * MSS, dt=0.01, rtt=0.08)
        entered = entered or bbr.state == BBR2.PROBE_RTT
    assert entered
    assert bbr.state == BBR2.PROBE_BW
    assert bbr.phase in (BBR2.DOWN, BBR2.CRUISE, BBR2.REFILL, BBR2.UP)


def test_recovery_exit_restores_window():
    bbr, driver = make_probe_bw()
    driver.run_rounds(30, rate=2e6, inflight=0)
    before = bbr.cwnd
    bbr.on_congestion_event(driver.now, bytes_in_flight=5 * MSS)
    assert bbr.cwnd == 5 * MSS
    bbr.on_recovery_exit(driver.now)
    assert bbr.cwnd == before
    # The fresh loss bounds re-cap the window on the next ACK.
    driver.ack(2e6, inflight=0)
    assert bbr.cwnd <= bbr.inflight_lo


def test_rto_collapses_to_min_cwnd():
    bbr, _ = make_probe_bw()
    bbr.on_rto(1.0)
    assert bbr.cwnd == 4 * MSS


def test_bbr3_tuning():
    config = bbr3_config()
    assert config.probe_down_gain == pytest.approx(0.9)
    assert config.startup_cwnd_gain == pytest.approx(2.0)
    assert bbr3_config(cruise_s=0.5).cruise_s == pytest.approx(0.5)
    bbr = BBR3(MSS)
    assert bbr.name == "bbr3"
    assert bbr.config.probe_down_gain == pytest.approx(0.9)
    # The v3 DOWN phase drains more gently than v2's.
    v3, _ = make_probe_bw(cls=BBR3)
    assert v3.phase == BBR2.DOWN
    assert v3.pacing_gain == pytest.approx(0.9)


def test_invalid_configs():
    for bad in (
        BBR2Config(initial_cwnd_packets=0),
        BBR2Config(cwnd_gain=0),
        BBR2Config(startup_cwnd_gain=-1),
        BBR2Config(pacing_rate_scale=0),
        BBR2Config(bw_window_rounds=0),
        BBR2Config(beta=0.0),
        BBR2Config(beta=1.0),
        BBR2Config(headroom=1.0),
        BBR2Config(headroom=-0.1),
        BBR2Config(probe_rtt_cwnd_gain=0.0),
        BBR2Config(probe_rtt_cwnd_gain=1.5),
        BBR2Config(cruise_s=0.0),
    ):
        with pytest.raises(ValueError):
            bad.validate()


def test_debug_state_contents():
    bbr, driver = make_probe_bw()
    bbr.on_congestion_event(driver.now, bytes_in_flight=50 * MSS)
    state = bbr.debug_state()
    assert state["state"] == BBR2.PROBE_BW
    assert state["phase"] == BBR2.DOWN
    assert state["inflight_hi"] == bbr.inflight_hi
    assert state["inflight_lo"] == bbr.inflight_lo
    assert "btl_bw" in state and "min_rtt" in state
