"""FlowTrace recording, summaries and round-tripping."""

import numpy as np
import pytest

from repro.netsim.trace import FlowTrace, merge_traces


def build_trace():
    trace = FlowTrace(0, label="test")
    for i in range(10):
        trace.on_delivery(
            arrival_time=1.0 + i * 0.1,
            sent_time=1.0 + i * 0.1 - 0.02,
            seq=i,
            payload_bytes=1000,
            is_retransmission=(i == 5),
        )
    trace.on_loss(1.55, 99)
    trace.on_cwnd(1.0, 14480)
    trace.on_rate(1.0, 2e6)
    return trace


def test_totals_and_duration():
    trace = build_trace()
    assert trace.total_bytes == 10000
    assert trace.duration == pytest.approx(0.9)


def test_mean_throughput():
    trace = build_trace()
    assert trace.mean_throughput_bps() == pytest.approx(10000 * 8 / 0.9)


def test_mean_one_way_delay():
    trace = build_trace()
    assert trace.mean_one_way_delay() == pytest.approx(0.02)


def test_empty_trace_is_safe():
    trace = FlowTrace(1)
    assert trace.total_bytes == 0
    assert trace.duration == 0.0
    assert trace.mean_throughput_bps() == 0.0
    assert trace.mean_one_way_delay() == 0.0


def test_json_round_trip(tmp_path):
    trace = build_trace()
    path = tmp_path / "trace.json"
    trace.to_json(str(path))
    loaded = FlowTrace.from_json(str(path))
    assert loaded.flow_id == trace.flow_id
    assert loaded.label == trace.label
    assert loaded.records == trace.records
    assert loaded.losses == trace.losses
    assert loaded.cwnd_samples == [(1.0, 14480)]


def test_csv_export(tmp_path):
    trace = build_trace()
    path = tmp_path / "trace.csv"
    trace.to_csv(str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 11  # header + 10 records
    assert lines[0].startswith("arrival_time")


def test_merge_traces_sorted_by_arrival():
    a = FlowTrace(0)
    b = FlowTrace(1)
    a.on_delivery(2.0, 1.9, 0, 100, False)
    b.on_delivery(1.0, 0.9, 0, 100, False)
    a.on_delivery(3.0, 2.9, 1, 100, False)
    merged = merge_traces([a, b])
    assert [r.arrival_time for r in merged] == [1.0, 2.0, 3.0]
