"""TopoNetwork: bit-identity with Network, conservation, flow control."""

import pytest

from repro.netsim.network import LinkConfig, Network
from repro.stacks import registry
from repro.topo.compile import TopoNetwork, run_topology
from repro.topo.spec import FlowEntry, LinkEntry, TopologySpec


def degenerate_spec(start_spread_s=0.5):
    """One link, two flows: the dumbbell, written as a TopologySpec."""
    return TopologySpec(
        name="degenerate",
        links=(
            LinkEntry(name="bottleneck", bandwidth_mbps=16.0, delay_ms=5.0,
                      buffer_bdp=1.0),
        ),
        flows=(
            FlowEntry(label="a", stack="linux", cca="cubic"),
            FlowEntry(label="b", stack="quiche", cca="cubic"),
        ),
        start_spread_s=start_spread_s,
    )


def dumbbell_network(seed, start_spread_s=0.5):
    link = LinkConfig(bandwidth_bps=16e6, rtt_s=0.01, buffer_bdp=1.0)
    flows = [
        registry.get_stack("linux").flow_spec("cubic", label="a"),
        registry.get_stack("quiche").flow_spec("cubic", label="b"),
    ]
    return Network(link, flows, seed=seed, start_spread_s=start_spread_s)


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_degenerate_spec_matches_network_exactly(self, seed):
        # The tentpole acceptance criterion: a one-link TopologySpec is
        # bit-identical to the dumbbell Network under the same seed.
        topo_results = TopoNetwork(degenerate_spec(), seed=seed).run(8.0)
        net_results = dumbbell_network(seed).run(8.0)
        for topo, net in zip(topo_results, net_results):
            assert topo.trace.records == net.trace.records
            assert topo.trace.losses == net.trace.losses
            assert topo.trace.cwnd_samples == net.trace.cwnd_samples
            assert topo.packets_sent == net.packets_sent
            assert topo.retransmissions == net.retransmissions
            assert topo.congestion_events == net.congestion_events

    def test_identity_holds_without_start_spread(self):
        topo_results = TopoNetwork(
            degenerate_spec(start_spread_s=0.0), seed=3
        ).run(5.0)
        net_results = dumbbell_network(3, start_spread_s=0.0).run(5.0)
        for topo, net in zip(topo_results, net_results):
            assert topo.trace.records == net.trace.records

    def test_same_seed_same_result_different_seed_differs(self):
        first = TopoNetwork(degenerate_spec(), seed=5).run(5.0)
        second = TopoNetwork(degenerate_spec(), seed=5).run(5.0)
        third = TopoNetwork(degenerate_spec(), seed=6).run(5.0)
        assert [r.trace.records for r in first] == [
            r.trace.records for r in second
        ]
        assert [r.trace.records for r in first] != [
            r.trace.records for r in third
        ]


def chain_spec(buffer_bdp=1.0, flows=None):
    return TopologySpec(
        name="chain",
        links=(
            LinkEntry(name="access", bandwidth_mbps=24.0, delay_ms=5.0,
                      buffer_bdp=buffer_bdp),
            LinkEntry(name="core", bandwidth_mbps=12.0, delay_ms=15.0,
                      buffer_bdp=buffer_bdp),
        ),
        flows=flows or (
            FlowEntry(label="f1", stack="linux", cca="cubic"),
            FlowEntry(label="f2", stack="quiche", cca="cubic"),
        ),
        start_spread_s=0.25,
    )


class TestMultiBottleneck:
    def test_byte_conservation_across_the_chain(self):
        # Bits cannot appear downstream: every byte the core serializes
        # entered through the access link, minus what is still queued.
        network = TopoNetwork(chain_spec(buffer_bdp=50.0), seed=2)
        network.run(5.0)
        access = network.forward_links["access"]
        core = network.forward_links["core"]
        assert core.queue.dropped == 0  # deep buffers: nothing dropped
        assert 0 < core.bytes_sent <= access.bytes_sent
        # Unaccounted bytes are only those still queued at the core, in
        # flight on the 5 ms access->core propagation path, or in the
        # core's serializer (one packet).
        in_flight_bound = int(0.005 * 24e6 / 8) + 2 * 1500
        still_inside = core.queue.bytes_queued + in_flight_bound
        assert access.bytes_sent - core.bytes_sent <= still_inside

    def test_drops_break_conservation_downstream_only(self):
        network = TopoNetwork(chain_spec(buffer_bdp=0.5), seed=2)
        network.run(5.0)
        access = network.forward_links["access"]
        core = network.forward_links["core"]
        assert core.queue.dropped > 0
        assert core.bytes_sent < access.bytes_sent

    def test_delivered_payload_no_more_than_core_capacity(self):
        results = run_topology(chain_spec(), 6.0, seed=9)
        delivered_bps = sum(r.mean_throughput_bps for r in results)
        assert delivered_bps <= 12e6 * 1.01

    def test_partial_route_skips_upstream_links(self):
        flows = (
            FlowEntry(label="long", stack="linux", cca="cubic"),
            FlowEntry(label="core-only", stack="quiche", cca="cubic",
                      route=("core",)),
        )
        network = TopoNetwork(chain_spec(flows=flows), seed=4)
        network.run(4.0)
        # The core-only flow (id 1) is wired into the core hop only.
        access = network.forward_links["access"]
        core = network.forward_links["core"]
        assert 0 in access.next_hop and 1 not in access.next_hop
        assert 0 in core.next_hop and 1 in core.next_hop
        assert network.traces[1].records  # core-only flow delivered
        assert access.bytes_sent > 0


class TestFlowControls:
    def test_end_s_stops_a_flow(self):
        flows = (
            FlowEntry(label="whole", stack="linux", cca="cubic"),
            FlowEntry(label="early", stack="quiche", cca="cubic", end_s=2.0),
        )
        network = TopoNetwork(chain_spec(flows=flows), seed=1)
        network.run(6.0)
        early = network.traces[1]
        assert early.records
        # Nothing arrives much after the stop (allow one RTT in flight).
        assert max(r.arrival_time for r in early.records) < 2.0 + 0.25

    def test_late_start(self):
        flows = (
            FlowEntry(label="base", stack="linux", cca="cubic"),
            FlowEntry(label="late", stack="quiche", cca="cubic", start_s=3.0),
        )
        network = TopoNetwork(chain_spec(flows=flows), seed=1)
        network.run(6.0)
        late = network.traces[1]
        assert late.records
        assert min(r.arrival_time for r in late.records) >= 3.0

    def test_reverse_flow_uses_reverse_instances(self):
        flows = (
            FlowEntry(label="fwd", stack="linux", cca="cubic"),
            FlowEntry(label="rev", stack="quiche", cca="cubic",
                      direction="reverse"),
        )
        network = TopoNetwork(chain_spec(flows=flows), seed=1)
        network.run(4.0)
        instances = network.link_instances()
        assert "access:reverse" in instances and "core:reverse" in instances
        assert instances["core:reverse"].bytes_sent > 0
        assert network.traces[1].records

    def test_appending_a_reverse_flow_leaves_forward_flows_unchanged(self):
        # RNG discipline: flow draws happen in declaration order, so a
        # flow added at the end cannot perturb earlier flows' randomness,
        # and reverse links have their own seed lineage.
        base = TopoNetwork(chain_spec(), seed=8)
        base.run(4.0)
        flows = chain_spec().flows + (
            FlowEntry(label="rev", stack="linux", cca="cubic",
                      direction="reverse"),
        )
        extended = TopoNetwork(chain_spec(flows=flows), seed=8)
        extended.run(4.0)
        for i in range(2):
            assert (
                base.traces[i].records == extended.traces[i].records
            ), f"forward flow {i} perturbed by an appended reverse flow"

    def test_extra_delay_slows_the_flow(self):
        flows = (
            FlowEntry(label="near", stack="linux", cca="cubic"),
            FlowEntry(label="far", stack="linux", cca="cubic",
                      extra_delay_ms=60.0),
        )
        results = run_topology(chain_spec(flows=flows), 6.0, seed=3)
        assert results[0].mean_throughput_bps > results[1].mean_throughput_bps
