"""SVG canvas and chart builders."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.envelope import EnvelopeConfig, build_envelope
from repro.viz.charts import envelope_figure, heatmap_figure, line_figure
from repro.viz.svg import PALETTE, SvgCanvas, diverging_color, sequential_color


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestCanvas:
    def test_document_is_valid_xml(self):
        canvas = SvgCanvas(200, 100)
        canvas.rect(10, 10, 50, 20, fill="red")
        canvas.line(0, 0, 200, 100)
        canvas.circle(100, 50, 5)
        canvas.polygon([(0, 0), (10, 0), (5, 8)], fill="blue")
        canvas.polyline([(0, 0), (10, 10), (20, 5)])
        canvas.text(5, 95, "hello <world> & more")
        root = parse(canvas.to_svg())
        assert root.tag.endswith("svg")
        assert len(root) >= 6

    def test_text_is_escaped(self):
        canvas = SvgCanvas(100, 100)
        canvas.text(0, 0, "<&>")
        assert "&lt;&amp;&gt;" in canvas.to_svg()

    def test_degenerate_shapes_ignored(self):
        canvas = SvgCanvas(100, 100)
        before = canvas.to_svg()
        canvas.polygon([(0, 0), (1, 1)])
        canvas.polyline([(0, 0)])
        assert canvas.to_svg() == before

    def test_save(self, tmp_path):
        canvas = SvgCanvas(50, 50)
        path = tmp_path / "x.svg"
        canvas.save(str(path))
        assert path.read_text().startswith("<svg")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 100)


class TestColors:
    def test_sequential_endpoints(self):
        assert sequential_color(0.0) == "#ffffff"
        assert sequential_color(1.0) == "#0b3d91"
        assert sequential_color(2.0) == sequential_color(1.0)  # clamped

    def test_diverging_neutral_is_white(self):
        assert diverging_color(0.5) == "#ffffff"
        assert diverging_color(0.0) != diverging_color(1.0)

    def test_palette_is_hex(self):
        for color in PALETTE:
            assert color.startswith("#") and len(color) == 7


def toy_envelope(center, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.normal(center, 1.0, size=(60, 2))
    return build_envelope([pts], EnvelopeConfig(k=1))


class TestEnvelopeFigure:
    def test_two_envelope_overlay(self):
        canvas = envelope_figure(
            {"test": toy_envelope((30, 10)), "reference": toy_envelope((32, 11), seed=2)},
            title="Fig",
        )
        svg = canvas.to_svg()
        parse(svg)
        assert "polygon" in svg  # hull outlines present
        assert svg.count("circle") > 100  # scatter + legend markers
        assert "reference" in svg

    def test_requires_envelopes(self):
        with pytest.raises(ValueError):
            envelope_figure({})


class TestHeatmapFigure:
    def test_values_annotated_and_nan_blank(self):
        values = np.array([[0.1, np.nan], [0.9, 0.5]])
        canvas = heatmap_figure(["r1", "r2"], ["a", "b"], values, title="H")
        svg = canvas.to_svg()
        parse(svg)
        assert "0.10" in svg and "0.90" in svg
        assert "#f4f4f4" in svg  # the NaN cell

    def test_diverging_mode(self):
        values = np.array([[0.0, 1.0]])
        svg = heatmap_figure(["r"], ["a", "b"], values, diverging=True).to_svg()
        parse(svg)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            heatmap_figure(["r"], ["a"], np.zeros((2, 2)))


class TestLineFigure:
    def test_multi_series(self):
        canvas = line_figure(
            {
                "Conf": [(1, 0.5), (2, 0.9), (3, 0.4)],
                "Conf-T": [(1, 0.6), (2, 0.95), (3, 0.7)],
            },
            title="Fig 5",
            x_label="cwnd gain",
            y_label="conformance",
            y_range=(0, 1),
        )
        svg = canvas.to_svg()
        parse(svg)
        assert "polyline" in svg
        assert "Conf-T" in svg

    def test_requires_series(self):
        with pytest.raises(ValueError):
            line_figure({})
