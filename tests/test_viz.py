"""SVG canvas and chart builders."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.envelope import EnvelopeConfig, build_envelope
from repro.viz.charts import envelope_figure, heatmap_figure, line_figure
from repro.viz.svg import PALETTE, SvgCanvas, diverging_color, sequential_color


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestCanvas:
    def test_document_is_valid_xml(self):
        canvas = SvgCanvas(200, 100)
        canvas.rect(10, 10, 50, 20, fill="red")
        canvas.line(0, 0, 200, 100)
        canvas.circle(100, 50, 5)
        canvas.polygon([(0, 0), (10, 0), (5, 8)], fill="blue")
        canvas.polyline([(0, 0), (10, 10), (20, 5)])
        canvas.text(5, 95, "hello <world> & more")
        root = parse(canvas.to_svg())
        assert root.tag.endswith("svg")
        assert len(root) >= 6

    def test_text_is_escaped(self):
        canvas = SvgCanvas(100, 100)
        canvas.text(0, 0, "<&>")
        assert "&lt;&amp;&gt;" in canvas.to_svg()

    def test_degenerate_shapes_ignored(self):
        canvas = SvgCanvas(100, 100)
        before = canvas.to_svg()
        canvas.polygon([(0, 0), (1, 1)])
        canvas.polyline([(0, 0)])
        assert canvas.to_svg() == before

    def test_save(self, tmp_path):
        canvas = SvgCanvas(50, 50)
        path = tmp_path / "x.svg"
        canvas.save(str(path))
        assert path.read_text().startswith("<svg")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 100)


class TestColors:
    def test_sequential_endpoints(self):
        assert sequential_color(0.0) == "#ffffff"
        assert sequential_color(1.0) == "#0b3d91"
        assert sequential_color(2.0) == sequential_color(1.0)  # clamped

    def test_diverging_neutral_is_white(self):
        assert diverging_color(0.5) == "#ffffff"
        assert diverging_color(0.0) != diverging_color(1.0)

    def test_palette_is_hex(self):
        for color in PALETTE:
            assert color.startswith("#") and len(color) == 7


def toy_envelope(center, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.normal(center, 1.0, size=(60, 2))
    return build_envelope([pts], EnvelopeConfig(k=1))


class TestEnvelopeFigure:
    def test_two_envelope_overlay(self):
        canvas = envelope_figure(
            {"test": toy_envelope((30, 10)), "reference": toy_envelope((32, 11), seed=2)},
            title="Fig",
        )
        svg = canvas.to_svg()
        parse(svg)
        assert "polygon" in svg  # hull outlines present
        assert svg.count("circle") > 100  # scatter + legend markers
        assert "reference" in svg

    def test_requires_envelopes(self):
        with pytest.raises(ValueError):
            envelope_figure({})


class TestHeatmapFigure:
    def test_values_annotated_and_nan_blank(self):
        values = np.array([[0.1, np.nan], [0.9, 0.5]])
        canvas = heatmap_figure(["r1", "r2"], ["a", "b"], values, title="H")
        svg = canvas.to_svg()
        parse(svg)
        assert "0.10" in svg and "0.90" in svg
        assert "#f4f4f4" in svg  # the NaN cell

    def test_diverging_mode(self):
        values = np.array([[0.0, 1.0]])
        svg = heatmap_figure(["r"], ["a", "b"], values, diverging=True).to_svg()
        parse(svg)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            heatmap_figure(["r"], ["a"], np.zeros((2, 2)))


class TestLineFigure:
    def test_multi_series(self):
        canvas = line_figure(
            {
                "Conf": [(1, 0.5), (2, 0.9), (3, 0.4)],
                "Conf-T": [(1, 0.6), (2, 0.95), (3, 0.7)],
            },
            title="Fig 5",
            x_label="cwnd gain",
            y_label="conformance",
            y_range=(0, 1),
        )
        svg = canvas.to_svg()
        parse(svg)
        assert "polyline" in svg
        assert "Conf-T" in svg

    def test_requires_series(self):
        with pytest.raises(ValueError):
            line_figure({})


class TestStoredPeerMatrix:
    """Pivoting stored peer-conformance rows into the SVG matrix panel."""

    @staticmethod
    def _store_with_peer_rows(tmp_path, conditions=1):
        from repro.harness.config import NetworkCondition
        from repro.store import ResultStore

        store = ResultStore(str(tmp_path / "store.db"))
        run = store.ensure_run("peer-viz")
        values = {("a", "b"): 0.8, ("b", "a"): 0.8,
                  ("a", "c"): 0.1, ("c", "a"): 0.1,
                  ("b", "c"): 0.2, ("c", "b"): 0.2}
        for n in range(conditions):
            condition = NetworkCondition(
                bandwidth_mbps=8 + n, rtt_ms=20, buffer_bdp=1.0
            )
            for (row, col), value in values.items():
                store.record_metrics(
                    run, stack=row, cca=col, variant="peer",
                    condition=condition,
                    metrics={"peer_conf": value,
                             "peer_distance": 1.0 - value},
                )
        return store

    def test_matrix_pivot_and_diagonal(self, tmp_path):
        from repro.viz.store import stored_peer_matrix

        store = self._store_with_peer_rows(tmp_path)
        with store:
            peers, cols, values = stored_peer_matrix(store, "peer-viz")
        assert peers == ["a", "b", "c"]
        assert cols == peers  # single condition: plain peer labels
        assert values.shape == (3, 3)
        # Diagonal reconstructed at 1.0 for conformance ...
        assert np.allclose(np.diag(values), 1.0)
        assert values[0, 1] == pytest.approx(0.8)
        assert values[2, 0] == pytest.approx(0.1)

    def test_distance_metric_has_zero_diagonal(self, tmp_path):
        from repro.viz.store import stored_peer_matrix

        store = self._store_with_peer_rows(tmp_path)
        with store:
            _, _, values = stored_peer_matrix(
                store, "peer-viz", metric="peer_distance"
            )
        assert np.allclose(np.diag(values), 0.0)
        assert values[0, 1] == pytest.approx(0.2)

    def test_multi_condition_gets_column_blocks(self, tmp_path):
        from repro.viz.store import stored_peer_matrix

        store = self._store_with_peer_rows(tmp_path, conditions=2)
        with store:
            peers, cols, values = stored_peer_matrix(store, "peer-viz")
        assert len(peers) == 3
        assert len(cols) == 6
        assert all("@" in c for c in cols)
        assert values.shape == (3, 6)

    def test_figure_renders_svg(self, tmp_path):
        from repro.viz.store import stored_peer_matrix_figure

        store = self._store_with_peer_rows(tmp_path)
        with store:
            canvas = stored_peer_matrix_figure(store, "peer-viz")
        svg = canvas.to_svg()
        root = parse(svg)
        assert root.tag.endswith("svg")
        assert "peer peer_conf" in svg and "peer-viz" in svg

    def test_missing_rows_raise(self, tmp_path):
        from repro.store import ResultStore
        from repro.viz.store import stored_peer_matrix

        with ResultStore(str(tmp_path / "empty.db")) as store:
            store.ensure_run("bare")
            with pytest.raises(ValueError, match="no peer-matrix"):
                stored_peer_matrix(store, "bare")
