"""FabricWorker: lease loop, heartbeat discipline, remote result bundles.

The protocol-behaviour tests script the transport and stub the campaign
execution, so lease-lost / cancel / lost-beat paths are deterministic;
one end-to-end test runs a real campaign in remote mode to prove the
bundle round trip into the coordinator's store.
"""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.fabric.coordinator import Coordinator
from repro.fabric.queue import WorkQueue
from repro.fabric.worker import FabricWorker, LocalTransport
from repro.harness.cache import CACHE_DIR_ENV
from repro.service.client import ServiceError
from repro.service.scheduler import DONE, TERMINAL_STATES
from repro.service.specs import parse_campaign_spec

TINY = {
    "kind": "conformance",
    "stacks": ["xquic"],
    "ccas": ["cubic"],
    "duration_s": 3,
    "trials": 2,
    "run": "worker-test",
}

LEASE = {
    "campaign": "c1",
    "lease_id": "L000001.1",
    "tenant": "default",
    "spec": {"spec": TINY, "priority": 0},
    "attempt": 1,
    "expires_at": 0.0,
}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))


class ScriptTransport:
    """Records every protocol call; heartbeat replies come from a list."""

    def __init__(self, beats=None, beat_errors=0):
        self.beats = list(beats or [])
        self.beat_errors = beat_errors
        self.heartbeats = []
        self.completions = []
        self.failures = []

    def lease(self, worker, ttl_s):
        return None

    def heartbeat(self, campaign, lease_id, ttl_s, progress):
        if self.beat_errors > 0:
            self.beat_errors -= 1
            raise ServiceError(0, "connection failed: injected")
        self.heartbeats.append(list(progress))
        if self.beats:
            return self.beats.pop(0)
        return {"ok": True, "cancel": False}

    def complete(self, campaign, lease_id, summary, bundle):
        self.completions.append((campaign, lease_id, summary, bundle))
        return {"outcome": "done"}

    def fail(self, campaign, lease_id, error, retryable):
        self.failures.append((campaign, error, retryable))
        return {"outcome": "retried" if retryable else "failed"}


def scripted_worker(transport, execute):
    worker = FabricWorker(transport, name="scripted", ttl_s=0.3)
    worker._execute = execute
    return worker


def pump_progress(progress, events=40, pause=0.02):
    """Stand-in campaign: report trials until the worker aborts us."""
    record = SimpleNamespace(label="trial", status="ok")
    for i in range(events):
        progress(record, i + 1, events)
        time.sleep(pause)
    return {"cells": 1}, None


def test_idle_once_poll_returns_zero(tmp_path):
    coordinator = Coordinator(str(tmp_path / "fabric.db"))
    try:
        worker = FabricWorker(
            LocalTransport(coordinator),
            store_path=coordinator.store_path,
        )
        assert worker.run(once=True) == 0
    finally:
        coordinator.shutdown(drain=False)


def test_lease_lost_abandons_without_completion():
    transport = ScriptTransport(beats=[{"ok": False, "cancel": True}])
    worker = scripted_worker(
        transport, lambda lease, progress: pump_progress(progress)
    )
    worker._run_lease(dict(LEASE))
    # The worker must go quiet: the new lease owner reports the task.
    assert transport.completions == []
    assert transport.failures == []


def test_cancel_request_reports_non_retryable_failure():
    transport = ScriptTransport(beats=[{"ok": True, "cancel": True}])
    worker = scripted_worker(
        transport, lambda lease, progress: pump_progress(progress)
    )
    worker._run_lease(dict(LEASE))
    assert transport.completions == []
    ((campaign, error, retryable),) = transport.failures
    assert campaign == "c1"
    assert "cancel" in error
    assert retryable is False


def test_execution_error_reports_retryable_failure():
    transport = ScriptTransport()

    def explode(lease, progress):
        raise ValueError("bad campaign cell")

    worker = scripted_worker(transport, explode)
    worker._run_lease(dict(LEASE))
    ((campaign, error, retryable),) = transport.failures
    assert campaign == "c1"
    assert error == "ValueError: bad campaign cell"
    assert retryable is True


def test_lost_heartbeat_never_drops_progress_events():
    """A failed beat re-queues its batch; the final flush delivers every
    trial event exactly once before completion."""
    transport = ScriptTransport(beat_errors=1)

    def execute(lease, progress):
        record = SimpleNamespace(label="trial", status="ok")
        for i in range(3):
            progress(record, i + 1, 3)
            time.sleep(0.12)  # span a few beat intervals (ttl/3 = 0.1s)
        return {"cells": 3}, None

    worker = scripted_worker(transport, execute)
    worker._run_lease(dict(LEASE))
    assert len(transport.completions) == 1
    delivered = [e for batch in transport.heartbeats for e in batch]
    assert [e["done"] for e in delivered] == [1, 2, 3]


def test_remote_worker_ships_result_bundle(tmp_path):
    """store_path=None: the worker runs against a scratch store and the
    coordinator ingests the bundle before flipping the queue to done."""
    coordinator = Coordinator(str(tmp_path / "fabric.db"))
    try:
        job = coordinator.submit(parse_campaign_spec(TINY))
        worker = FabricWorker(
            LocalTransport(coordinator),
            name="remote-w",
            store_path=None,
            scratch_dir=str(tmp_path / "scratch"),
            poll_s=0.05,
            ttl_s=5.0,
        )
        assert worker.run(once=True) == 1
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if coordinator.job(job.id).state in TERMINAL_STATES:
                break
            time.sleep(0.05)
        assert coordinator.job(job.id).state == DONE
        with WorkQueue(coordinator.store_path) as q:
            task = q.task(job.id)
        assert task.result["worker"] == "remote-w"
        ingest = task.result["ingest"]
        assert ingest["trials"] > 0
        from repro.store import ResultStore

        with ResultStore(coordinator.store_path) as store:
            assert store.has_run("worker-test")
            assert len(store.trial_keys()) == ingest["trials"]
    finally:
        coordinator.shutdown(drain=False)
