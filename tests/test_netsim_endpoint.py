"""Sender/receiver transport machinery over a controllable loopback."""

import pytest

from repro.cca.base import AckEvent, CongestionController
from repro.netsim.engine import EventLoop
from repro.netsim.endpoint import (
    Receiver,
    ReceiverConfig,
    Sender,
    SenderConfig,
    SpuriousUndoConfig,
)
from repro.netsim.trace import FlowTrace


class FixedWindow(CongestionController):
    """Test controller: constant cwnd, records every callback."""

    name = "fixed"

    def __init__(self, mss, cwnd_packets=10, rate=None):
        super().__init__(mss)
        self._cwnd = cwnd_packets * mss
        self._rate = rate
        self.acks = []
        self.congestion_events = []
        self.spurious = []
        self.rtos = []
        self.recovery_exits = []

    @property
    def cwnd(self):
        return self._cwnd

    def pacing_rate(self):
        return self._rate

    def on_ack(self, event: AckEvent):
        self.acks.append(event)

    def on_congestion_event(self, now, bytes_in_flight):
        self.congestion_events.append(now)

    def on_spurious_congestion(self, now):
        self.spurious.append(now)

    def on_rto(self, now):
        self.rtos.append(now)

    def on_recovery_exit(self, now):
        self.recovery_exits.append(now)


class Loopback:
    """Sender <-> receiver with programmable per-packet drops."""

    def __init__(
        self,
        sender_config=None,
        receiver_config=None,
        cca=None,
        delay=0.01,
        drop_seqs=(),
    ):
        self.loop = EventLoop()
        self.drop_seqs = set(drop_seqs)
        self.trace = FlowTrace(0)
        self.receiver = Receiver(
            self.loop,
            0,
            send_ack=lambda pkt: self.loop.schedule(delay / 2, lambda: self.sender.on_ack(pkt)),
            config=receiver_config or ReceiverConfig(),
            trace=self.trace,
        )

        def transmit(pkt):
            if pkt.seq in self.drop_seqs:
                self.drop_seqs.discard(pkt.seq)
                return
            self.loop.schedule(delay / 2, lambda: self.receiver.on_packet(pkt))

        self.cca = cca or FixedWindow(1000)
        self.sender = Sender(
            self.loop,
            0,
            cca=self.cca,
            transmit=transmit,
            config=sender_config or SenderConfig(mss=1000, initial_rtt=0.01),
            trace=self.trace,
        )

    def run(self, t):
        self.sender.start()
        self.loop.run(t)


def test_bulk_delivery_and_ack_clocking():
    lb = Loopback()
    lb.run(1.0)
    # 10-packet window over a 10 ms RTT = ~1000 packets in 1 s.
    assert lb.sender.delivered_bytes >= 0.8e6
    assert lb.sender.bytes_in_flight <= lb.cca.cwnd


def test_cwnd_limits_inflight():
    lb = Loopback(cca=FixedWindow(1000, cwnd_packets=3))
    lb.run(0.5)
    assert lb.sender.bytes_in_flight <= 3000


def test_rtt_estimate_converges_to_path_rtt():
    lb = Loopback()
    lb.run(0.5)
    assert lb.sender.rtt.smoothed == pytest.approx(0.01, abs=0.004)


def test_packet_threshold_loss_detection_and_retransmission():
    lb = Loopback(drop_seqs={5})
    lb.run(0.5)
    assert lb.sender.retransmissions >= 1
    assert len(lb.cca.congestion_events) >= 1
    # The stream is complete at the receiver despite the drop.
    seqs = {r.seq for r in lb.trace.records}
    assert 5 in seqs


def test_single_congestion_event_per_loss_episode():
    # Several drops in one round trip must collapse into one event.
    lb = Loopback(drop_seqs={5, 6, 7})
    lb.run(0.3)
    assert len(lb.cca.congestion_events) == 1


def test_recovery_exit_fires_after_episode():
    lb = Loopback(drop_seqs={5})
    lb.run(0.5)
    assert len(lb.cca.recovery_exits) == len(lb.cca.congestion_events)


def test_separated_episodes_are_distinct_events():
    lb = Loopback(drop_seqs={5, 300})
    lb.run(2.0)
    assert len(lb.cca.congestion_events) == 2


def test_rto_recovers_from_total_blackout():
    # Drop a whole initial flight: only the RTO path can recover.
    lb = Loopback(drop_seqs=set(range(10)))
    lb.run(3.0)
    assert lb.sender.delivered_bytes > 0
    assert lb.cca.rtos or lb.sender.retransmissions >= 10


def test_rto_declares_all_outstanding_lost():
    lb = Loopback(drop_seqs=set(range(10)))
    lb.run(3.0)
    # No phantom in-flight bytes left behind.
    assert lb.sender.bytes_in_flight <= lb.cca.cwnd


def test_pacing_spaces_transmissions():
    # 100 kB/s pacing with 1000-B packets = 10 ms spacing.
    cca = FixedWindow(1000, cwnd_packets=50, rate=100e3)
    lb = Loopback(cca=cca)
    lb.run(1.0)
    sent = lb.sender.packets_sent
    assert sent == pytest.approx(100, abs=15)


def test_send_timer_granularity_quantizes_sends():
    config = SenderConfig(mss=1000, initial_rtt=0.01, send_timer_granularity=0.004)
    lb = Loopback(sender_config=config, cca=FixedWindow(1000, cwnd_packets=4, rate=100e3))
    lb.run(0.5)
    # All sends happen on 4 ms ticks; delivery timestamps inherit the grid
    # (plus the constant 5 ms one-way delay).
    for record in lb.trace.records:
        phase = (record.sent_time / 0.004) % 1.0
        assert min(phase, 1 - phase) < 1e-6


def test_spurious_undo_fires_for_isolated_loss():
    config = SenderConfig(
        mss=1000,
        initial_rtt=0.01,
        spurious_undo=SpuriousUndoConfig(window_rtts=1.0, max_episode_losses=3),
    )
    lb = Loopback(sender_config=config, drop_seqs={20})
    lb.run(1.0)
    assert lb.sender.spurious_events >= 1
    assert lb.cca.spurious


def test_spurious_undo_skipped_for_loss_storm():
    config = SenderConfig(
        mss=1000,
        initial_rtt=0.01,
        spurious_undo=SpuriousUndoConfig(window_rtts=1.0, max_episode_losses=2),
    )
    lb = Loopback(sender_config=config, drop_seqs={20, 21, 22, 23, 24})
    lb.run(1.0)
    assert not lb.cca.spurious


def test_cwnd_scale_reduces_inflight():
    config = SenderConfig(mss=1000, initial_rtt=0.01, cwnd_scale=0.5)
    lb = Loopback(sender_config=config, cca=FixedWindow(1000, cwnd_packets=10))
    lb.run(0.5)
    assert lb.sender.bytes_in_flight <= 5000


class TestReceiver:
    def test_ack_frequency(self):
        lb = Loopback(receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=10.0))
        lb.run(0.2)
        # Roughly one ACK per two packets.
        acks = len(lb.cca.acks)
        packets = lb.sender.packets_sent
        assert acks <= packets / 2 + 2

    def test_delayed_ack_timer_flushes_stragglers(self):
        # cwnd of 1: every packet waits for the delayed-ACK timer.
        lb = Loopback(
            cca=FixedWindow(1000, cwnd_packets=1),
            receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.02),
        )
        lb.run(0.5)
        assert lb.sender.delivered_bytes > 0
        # Each round trip costs path RTT + ack delay (~30 ms).
        assert lb.sender.packets_sent < 25

    def test_ack_delay_field_reflects_hold_time(self):
        lb = Loopback(
            cca=FixedWindow(1000, cwnd_packets=1),
            receiver_config=ReceiverConfig(ack_frequency=2, max_ack_delay=0.02),
        )
        lb.run(0.3)
        # QUIC-style senders subtract ack_delay: the RTT estimate must be
        # near the true path RTT, not RTT + 20 ms.
        assert lb.sender.rtt.smoothed == pytest.approx(0.01, abs=0.005)

    def test_duplicate_data_not_recorded_twice(self):
        lb = Loopback(drop_seqs={3})
        lb.run(0.5)
        seqs = [r.seq for r in lb.trace.records]
        assert len(seqs) == len(set(seqs))

    def test_invalid_receiver_config(self):
        with pytest.raises(ValueError):
            ReceiverConfig(ack_frequency=0).validate()
        with pytest.raises(ValueError):
            ReceiverConfig(max_ack_delay=-1).validate()


def test_invalid_sender_config():
    with pytest.raises(ValueError):
        SenderConfig(mss=0).validate()
    with pytest.raises(ValueError):
        SenderConfig(loss_style="sctp").validate()
    with pytest.raises(ValueError):
        SenderConfig(cwnd_scale=0).validate()
    with pytest.raises(ValueError):
        SenderConfig(send_timer_granularity=-1).validate()


def test_stop_halts_transmission():
    lb = Loopback()
    lb.run(0.2)
    sent = lb.sender.packets_sent
    lb.sender.stop()
    lb.loop.run(0.5)
    assert lb.sender.packets_sent == sent
