"""External-CCA peer-conformance campaigns through the full service.

The zero-core-edit acceptance test: a third-party CCA defined in a user
module (registered via ``repro.ccax`` only — no edit to any core
package) runs a complete peer-conformance campaign through submit ->
schedule -> exec -> store -> SSE -> SVG, and an identical resubmission
is served entirely from the warehouse.
"""

import urllib.request

import pytest

from repro.harness.cache import CACHE_DIR_ENV
from repro.service import ServiceApp, ServiceClient

#: A deliberately lazy NewReno variant: same machinery, half the
#: additive increase — distinct enough to earn its own behaviour, built
#: entirely from public APIs.
EXTERNAL_MODULE = '''\
"""A third-party CCA registered with zero core edits."""

from repro.cca.reno import NewReno
from repro.ccax import CCACapabilities, register_congestion_control


class LazyReno(NewReno):
    name = "lazyreno"

    def on_ack(self, event):
        super().on_ack(event)
        if not self.in_slow_start:
            self._cwnd -= event.bytes_acked * self.mss // (2 * self._cwnd)


def make_lazyreno(mss):
    return LazyReno(mss)


register_congestion_control(
    "lazyreno",
    make_lazyreno,
    CCACapabilities(
        family="loss-based",
        description="NewReno at half additive increase (test fixture)",
    ),
    replace=True,
)
'''


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("ccax-service")
    module_path = root / "lazy_cca.py"
    module_path.write_text(EXTERNAL_MODULE)
    import os

    before = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(root / "cache")
    app = ServiceApp(str(root / "store.db"), workers=1, max_pending=16)
    app.start()
    client = ServiceClient(app.url, timeout_s=30.0)
    try:
        yield app, client, module_path
    finally:
        app.stop(drain=False)
        if before is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = before
        from repro.ccax import registry

        registry.unregister("lazyreno")


def peer_spec(module_path):
    return {
        "kind": "peer_conformance",
        "peers": ["lazyreno", "cubic", "gcc"],
        "cca_modules": [str(module_path)],
        "conditions": [{"bandwidth_mbps": 8, "rtt_ms": 20, "buffer_bdp": 0.6}],
        "duration_s": 4,
        "trials": 2,
        "run": "ext-peer",
    }


def test_external_cca_full_pipeline(service):
    app, client, module_path = service
    accepted = client.submit(peer_spec(module_path))
    final = client.wait(accepted["id"], timeout_s=600)
    assert final["state"] == "done"
    assert final["progress"]["done"] == final["progress"]["total"] > 0

    # Store: pair rows name the external peer on both axes.
    rows = client.metrics("ext-peer")
    pair = [r for r in rows if r["variant"] == "peer"]
    assert {r["stack"] for r in pair} == {"lazyreno", "cubic", "gcc"}
    scores = {
        r["stack"]: r["value"]
        for r in rows
        if r["metric"] == "peer_score"
    }
    assert set(scores) == {"lazyreno", "cubic", "gcc"}
    assert all(0.0 <= v <= 1.0 for v in scores.values())

    # SSE: the event stream tells the whole story, terminal frame last.
    events = list(client.stream(final["id"]))
    assert any(e["event"] == "trial" for e in events)
    assert events[-1]["event"] == "state" and events[-1]["state"] == "done"

    # Viz: the peer-matrix SVG panel renders for the run.
    with urllib.request.urlopen(
        f"{app.url}/runs/ext-peer/peer-matrix.svg", timeout=30
    ) as response:
        assert "image/svg+xml" in response.headers["Content-Type"]
        svg = response.read().decode()
    assert "<svg" in svg[:200]
    assert "lazyreno" in svg


def test_identical_resubmission_fully_cache_served(service):
    _, client, module_path = service
    again = client.submit(peer_spec(module_path))
    refinal = client.wait(again["id"], timeout_s=600)
    assert refinal["state"] == "done"
    statuses = refinal["trial_statuses"]
    assert statuses.get("ok", 0) == 0
    assert statuses.get("cached", 0) == refinal["progress"]["total"] > 0


def test_peer_matrix_svg_missing_run_is_404(service):
    app, _, _ = service
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(
            f"{app.url}/runs/no-such-run/peer-matrix.svg", timeout=30
        )
    assert err.value.code == 404
