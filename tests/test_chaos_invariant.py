"""The chaos suite and its invariant: nothing silent, nothing corrupt."""

import numpy as np
import pytest

from repro.faults import inject
from repro.faults.breaker import reset_breakers
from repro.faults.chaos import ChaosReport, FaultOutcome, _check_store, run_chaos
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _isolated_faults():
    reset_breakers()
    inject.deactivate()
    yield
    inject.deactivate()
    reset_breakers()


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    """One real smoke-matrix chaos run shared by the assertions below."""
    workdir = tmp_path_factory.mktemp("chaos")
    report = run_chaos(
        matrix="smoke", workdir=workdir, duration_s=1.0, trials=1, jobs=2,
        seed=0,
    )
    return report, workdir


@pytest.fixture()
def smoke_report(smoke_run):
    return smoke_run[0]


class TestSmokeMatrix:
    def test_report_passes(self, smoke_report):
        assert smoke_report.ok(), smoke_report.summary()
        assert smoke_report.summary().endswith("chaos: PASS")

    def test_every_smoke_class_ran_and_recovered(self, smoke_report):
        outcomes = {o.fault: o for o in smoke_report.outcomes}
        assert set(outcomes) == {
            "worker-crash", "store-locked", "disk-full", "journal-corrupt",
            "store-locked@topology", "store-locked@peer_conformance",
            "lease-expiry", "worker-sigkill",
        }
        for outcome in outcomes.values():
            assert outcome.recovered, outcome.summary()
            assert not outcome.violations

    def test_store_locked_burst_fired_and_was_absorbed(self, smoke_report):
        outcome = next(
            o for o in smoke_report.outcomes if o.fault == "store-locked"
        )
        assert outcome.fires > 0
        assert not outcome.typed_failures  # absorbed, not surfaced

    def test_disk_full_spilled_and_replayed(self, smoke_report):
        outcome = next(
            o for o in smoke_report.outcomes if o.fault == "disk-full"
        )
        assert outcome.spilled > 0
        assert "sideline replayed" in outcome.note

    def test_journal_corruption_tolerated_by_ingest(self, smoke_report):
        outcome = next(
            o for o in smoke_report.outcomes if o.fault == "journal-corrupt"
        )
        assert outcome.fires > 0
        assert "torn lines skipped" in outcome.note

    def test_worker_crash_retried_to_completion(self, smoke_report):
        outcome = next(
            o for o in smoke_report.outcomes if o.fault == "worker-crash"
        )
        assert "retried=" in outcome.note

    def test_recovered_stores_agree_with_each_other(self, smoke_run):
        # Every class's post-recovery store holds the same trial keys with
        # byte-identical payloads: four independently faulted pipelines
        # converged on one ground truth.
        report, workdir = smoke_run
        snapshots = {}
        # The @<kind> classes run different joblists (topology / peer
        # trials, not conformance trials) and the fabric classes run
        # their own coordinator campaign, so they are checked
        # separately below.
        for outcome in report.outcomes:
            if "@" in outcome.fault or outcome.fault in (
                "lease-expiry", "worker-sigkill"
            ):
                continue
            with ResultStore(workdir / outcome.fault / "store.db") as store:
                snapshots[outcome.fault] = {
                    key: store.get_trial(key, strict=True).tobytes()
                    for key in store.trial_keys()
                }
        reference = snapshots.pop(report.outcomes[0].fault)
        assert reference  # the campaign stored something
        for fault, snapshot in snapshots.items():
            assert snapshot == reference, f"{fault} store diverged"

    @pytest.mark.parametrize(
        "fault", ["store-locked@topology", "store-locked@peer_conformance"]
    )
    def test_campaign_kind_class_recovered_bit_identical(self, smoke_run, fault):
        # Each campaign-kind class's faulted store ends up holding every
        # one of its trial payloads, byte-identical to the fault-free run.
        report, workdir = smoke_run
        outcome = next(o for o in report.outcomes if o.fault == fault)
        assert outcome.recovered, outcome.summary()
        assert not outcome.violations
        with ResultStore(
            workdir / outcome.fault / "store.db"
        ) as store:
            keys = store.trial_keys()
            assert keys
            for key in keys:
                assert store.get_trial(key, strict=True) is not None

    @pytest.mark.parametrize("fault", ["lease-expiry", "worker-sigkill"])
    def test_fabric_class_survived_and_retried(self, smoke_run, fault):
        # The fabric classes kill a worker's lease (cut heartbeats /
        # real SIGKILL); the campaign must still land, on attempt >= 2.
        # Bit-identity against the fabric baseline is asserted inside
        # run_chaos; here we check the queue story the note records.
        report, workdir = smoke_run
        outcome = next(o for o in report.outcomes if o.fault == fault)
        assert outcome.recovered, outcome.summary()
        assert not outcome.violations
        assert outcome.fires > 0
        assert "attempts=" in outcome.note
        attempts = int(outcome.note.split("attempts=")[1].split()[0])
        assert attempts >= 2
        with ResultStore(workdir / fault / "store.db") as store:
            assert store.trial_keys()


class TestInvariantChecker:
    def _baseline(self):
        return {"k": ("<f8", (3,), np.arange(3.0).tobytes())}

    def test_clean_store_passes(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.put_trial("k", np.arange(3.0))
        violations, missing = _check_store(
            tmp_path / "s.db", self._baseline(), set(), set()
        )
        assert violations == [] and missing == []

    def test_silently_missing_trial_is_a_violation(self, tmp_path):
        ResultStore(tmp_path / "s.db").close()  # empty store
        violations, missing = _check_store(
            tmp_path / "s.db", self._baseline(), set(), set()
        )
        assert missing == ["k"]
        assert any("silently missing" in v for v in violations)

    def test_accounted_missing_trial_is_not_a_violation(self, tmp_path):
        ResultStore(tmp_path / "s.db").close()
        violations, missing = _check_store(
            tmp_path / "s.db", self._baseline(), {"k"}, set()
        )
        assert missing == ["k"] and violations == []

    def test_sideline_recorded_trial_is_not_a_violation(self, tmp_path):
        ResultStore(tmp_path / "s.db").close()
        violations, _ = _check_store(
            tmp_path / "s.db", self._baseline(), set(), {"k"}
        )
        assert violations == []

    def test_differing_payload_is_a_violation(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.put_trial("k", np.arange(3.0) + 1e-9)  # one ULP off
        violations, _ = _check_store(
            tmp_path / "s.db", self._baseline(), set(), set()
        )
        assert any("differs from the fault-free baseline" in v for v in violations)


class TestReportShape:
    def test_empty_report_is_not_ok(self):
        assert not ChaosReport(matrix="smoke", seed=0, baseline_trials=0).ok()

    def test_outcome_requires_recovery(self):
        outcome = FaultOutcome(fault="disk-full")
        assert not outcome.ok()
        outcome.recovered = True
        assert outcome.ok()
        outcome.violations.append("x")
        assert not outcome.ok()

    def test_summary_carries_violations(self):
        outcome = FaultOutcome(fault="disk-full")
        outcome.violations.append("trial k silently missing")
        assert "FAIL" in outcome.summary()
        assert "silently missing" in outcome.summary()

    def test_unknown_matrix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault matrix"):
            run_chaos(matrix="bogus", workdir=tmp_path)
