"""Odds and ends: base-class defaults, builders, WAN configuration."""

import pytest

from repro.cca.base import CongestionController, min_cwnd
from repro.cca.cubic import Cubic
from repro.cca.reno import NewReno
from repro.harness.internet import internet_condition, wan_cross_traffic, wan_netem
from repro.netsim.packet import ACK_SIZE, AckInfo, Packet
from repro.stacks._common import bbr_variant, cubic_variant, reno_variant, variants


class TestBaseController:
    def test_min_cwnd_is_two_packets(self):
        assert min_cwnd(1448) == 2 * 1448

    def test_default_hooks_are_noops(self):
        reno = NewReno(1000)
        # None of these may raise or change the window.
        before = reno.cwnd
        reno.on_spurious_congestion(1.0)
        reno.on_recovery_exit(1.0)
        reno.on_packet_sent(1.0, 0, 1000)
        assert reno.cwnd == before

    def test_default_pacing_is_none(self):
        assert NewReno(1000).pacing_rate() is None
        assert Cubic(1000).pacing_rate() is None

    def test_invalid_mss(self):
        with pytest.raises(ValueError):
            NewReno(0)


class TestPacketModel:
    def test_packet_defaults(self):
        p = Packet(flow_id=1, seq=5, size=1200, sent_time=2.5)
        assert not p.is_ack
        assert p.retx_of is None
        assert p.enqueue_time == 2.5

    def test_ack_info_fields(self):
        info = AckInfo(
            cum_ack=10,
            largest_acked=12,
            newly_acked=[11, 12],
            largest_sent_time=1.0,
            ack_delay=0.002,
            delivered_bytes=12000,
        )
        assert info.largest_acked == 12
        assert ACK_SIZE > 0


class TestVariantBuilders:
    def test_cubic_variant_carries_config(self):
        v = cubic_variant("x", note="n", enable_hystart=False)
        cca = v.factory(1448)
        assert not cca.config.enable_hystart
        assert v.note == "n"

    def test_reno_variant(self):
        v = reno_variant(beta=0.6)
        assert v.factory(1000).beta == 0.6

    def test_bbr_variant(self):
        v = bbr_variant(cwnd_gain=3.0)
        assert v.factory(1000).config.cwnd_gain == 3.0

    def test_variants_mapping(self):
        mapping = variants(cubic_variant("a"), cubic_variant("b"))
        assert set(mapping) == {"a", "b"}


class TestWanProfile:
    def test_internet_condition_matches_paper(self):
        cond = internet_condition()
        assert cond.bandwidth_mbps == 100.0  # locally limited to 100 Mbps
        assert cond.rtt_ms == 50.0  # RTT pinned at 50 ms with Mahimahi

    def test_wan_impairments_validate(self):
        wan_netem().validate()
        wan_cross_traffic().validate()
        assert 0 < wan_netem().loss_rate < 0.01
