"""Runner primitives and fairness matrices (light integration)."""

import numpy as np
import pytest

from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.fairness import (
    FairnessMatrix,
    bandwidth_share,
    inter_cca_matrix,
    intra_cca_matrix,
)
from repro.harness.runner import Impl, reference_impl, run_pair, sampled_points

CONDITION = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)
QUICK = ExperimentConfig(duration_s=10.0, trials=2)


def test_impl_naming():
    assert str(Impl("quiche", "cubic")) == "quiche/cubic"
    assert str(Impl("quiche", "cubic", "fixed")) == "quiche/cubic+fixed"
    assert reference_impl("bbr") == Impl("linux", "bbr")


def test_run_pair_produces_both_flows():
    result = run_pair(
        Impl("quicgo", "cubic"), Impl("linux", "cubic"), CONDITION, 8.0, seed=1
    )
    t1, t2 = result.throughputs_mbps
    assert t1 > 0 and t2 > 0
    assert t1 + t2 == pytest.approx(10.0, rel=0.15)


def test_sampled_points_cached(fresh_cache):
    kwargs = dict(
        test=Impl("quicgo", "cubic"),
        competitor=reference_impl("cubic"),
        condition=CONDITION,
        config=QUICK,
        trial=0,
        cache=fresh_cache,
    )
    a = sampled_points(**kwargs)
    misses = fresh_cache.misses
    b = sampled_points(**kwargs)
    assert fresh_cache.misses == misses
    assert (a == b).all()
    assert a.shape[1] == 2


def test_labels_do_not_change_results(fresh_cache):
    """The same physical condition must yield identical trials regardless
    of its display label (seeds derive from physical parameters)."""
    labelled = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1, label="x")
    bare = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)
    a = sampled_points(
        Impl("quicgo", "cubic"), reference_impl("cubic"), labelled, QUICK, 0,
        cache=fresh_cache,
    )
    b = sampled_points(
        Impl("quicgo", "cubic"), reference_impl("cubic"), bare, QUICK, 0,
        cache=fresh_cache,
    )
    assert np.array_equal(a, b)


def test_trials_differ(fresh_cache):
    a = sampled_points(
        Impl("quicgo", "cubic"), reference_impl("cubic"), CONDITION, QUICK, 0,
        cache=fresh_cache,
    )
    b = sampled_points(
        Impl("quicgo", "cubic"), reference_impl("cubic"), CONDITION, QUICK, 1,
        cache=fresh_cache,
    )
    assert a.shape != b.shape or not np.allclose(a, b)


def test_bandwidth_share_bounds_and_symmetry(fresh_cache):
    share = bandwidth_share(
        Impl("quicgo", "cubic"), Impl("linux", "cubic"), CONDITION, QUICK,
        cache=fresh_cache,
    )
    assert 0.0 <= share <= 1.0


def test_aggressive_impl_takes_more(fresh_cache):
    cfg = ExperimentConfig(duration_s=15.0, trials=2)
    share = bandwidth_share(
        Impl("quiche", "cubic"), Impl("linux", "cubic"), CONDITION, cfg,
        cache=fresh_cache,
    )
    assert share > 0.6  # quiche's rollback makes it strongly aggressive


def test_intra_cca_matrix_structure(fresh_cache):
    matrix = intra_cca_matrix(
        "cubic",
        CONDITION,
        QUICK,
        stacks=["linux", "quicgo", "quiche"],
        cache=fresh_cache,
    )
    assert matrix.rows == ["linux-cubic", "quicgo-cubic", "quiche-cubic"]
    assert matrix.shares.shape == (3, 3)
    for i in range(3):
        assert matrix.shares[i, i] == 0.5
    assert matrix.share("quiche-cubic", "linux-cubic") > 0.5


def test_unfair_rows_detection():
    matrix = FairnessMatrix(
        rows=["a", "b"],
        cols=["a", "b"],
        shares=np.array([[0.5, 0.9], [0.1, 0.5]]),
    )
    assert matrix.unfair_rows() == ["a"]


def test_inter_cca_matrix_structure(fresh_cache):
    matrix = inter_cca_matrix(
        "bbr",
        "cubic",
        CONDITION,
        QUICK,
        row_stacks=["linux"],
        col_stacks=["linux", "quicgo"],
        cache=fresh_cache,
    )
    assert matrix.rows == ["linux-bbr"]
    assert matrix.cols == ["linux-cubic", "quicgo-cubic"]
    assert np.isfinite(matrix.shares).all()
