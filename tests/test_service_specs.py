"""Campaign-spec parsing and validation (repro.service.specs)."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.service.specs import CampaignSpec, SpecError, parse_campaign_spec
from repro.stacks import registry


class TestParsing:
    def test_minimal_conformance_spec(self):
        spec = parse_campaign_spec({"kind": "conformance"})
        assert spec.kind == "conformance"
        # Defaults: every QUIC implementation, shallow-buffer condition.
        impls = spec.implementations()
        assert ("quiche", "cubic") in impls and ("xquic", "cubic") in impls
        assert len(spec.resolved_conditions()) == 1

    def test_full_spec_round_trips_through_canonical(self):
        payload = {
            "kind": "matrix",
            "stacks": ["quiche", "xquic"],
            "ccas": ["cubic"],
            "conditions": [
                {"bandwidth_mbps": 10, "rtt_ms": 20, "buffer_bdp": 2}
            ],
            "duration_s": 6,
            "trials": 2,
            "seed": 7,
            "run": "my-run",
        }
        spec = parse_campaign_spec(payload)
        again = parse_campaign_spec(spec.canonical())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_experiment_config_applies_overrides(self):
        spec = parse_campaign_spec(
            {"kind": "conformance", "duration_s": 6, "trials": 2, "seed": 3}
        )
        config = spec.experiment_config()
        assert (config.duration_s, config.trials, config.seed) == (6.0, 2, 3)
        # No overrides -> the stock protocol.
        stock = parse_campaign_spec({"kind": "conformance"}).experiment_config()
        assert stock == ExperimentConfig()

    def test_run_names(self):
        spec = parse_campaign_spec({"kind": "matrix", "run": "rel-1"})
        assert spec.run_names() == ["rel-1"]
        reg = parse_campaign_spec({"kind": "regression", "run": "reg"})
        names = reg.run_names()
        assert names and all(name.startswith("reg:") for name in names)
        # Unnamed specs derive a stable run name from their fingerprint.
        anon = parse_campaign_spec({"kind": "matrix"})
        assert anon.run_name() == f"matrix:{anon.fingerprint()[:12]}"

    def test_matrix_defaults_to_buffer_sweep(self):
        spec = parse_campaign_spec({"kind": "matrix"})
        assert len(spec.resolved_conditions()) > 1


class TestValidation:
    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({}, "spec.kind"),
            ({"kind": "nope"}, "spec.kind"),
            ({"kind": "matrix", "bogus": 1}, "unknown spec field"),
            ({"kind": "matrix", "stacks": ["nosuch"]}, "unknown stack"),
            ({"kind": "matrix", "ccas": ["vegas"]}, "unknown cca"),
            ({"kind": "matrix", "stacks": "not-a-list-of-str"}, "unknown stack"),
            ({"kind": "matrix", "stacks": [1]}, "list of strings"),
            ({"kind": "matrix", "conditions": "x"}, "conditions"),
            ({"kind": "matrix", "conditions": [{"bandwidth_mbps": -1}]},
             "conditions[0]"),
            ({"kind": "matrix", "conditions": [{"mtu": 1500}]},
             "unknown field"),
            ({"kind": "matrix", "trials": 0}, "trial"),
            ({"kind": "matrix", "trials": 1.5}, "integer"),
            ({"kind": "matrix", "duration_s": -5}, "duration"),
            ({"kind": "matrix", "duration_s": "long"}, "number"),
        ],
    )
    def test_bad_specs_fail_with_useful_messages(self, payload, fragment):
        with pytest.raises(SpecError) as err:
            parse_campaign_spec(payload)
        assert fragment in str(err.value)

    def test_non_object_rejected(self):
        with pytest.raises(SpecError):
            parse_campaign_spec(["kind", "matrix"])

    def test_empty_implementation_set_rejected(self):
        # linux_tcp-style reference-only stacks aside, pick a stack/cca
        # combination that exists but is unsupported.
        unsupported = None
        for profile in registry.STACKS.values():
            for cca in registry.CCAS:
                if not profile.supports(cca):
                    unsupported = (profile.name, cca)
                    break
            if unsupported:
                break
        if unsupported is None:  # pragma: no cover - registry-dependent
            pytest.skip("every stack supports every CCA")
        stack, cca = unsupported
        with pytest.raises(SpecError) as err:
            parse_campaign_spec(
                {"kind": "conformance", "stacks": [stack], "ccas": [cca]}
            )
        assert "no implementations" in str(err.value)

    def test_fingerprint_differs_on_any_field(self):
        base = parse_campaign_spec({"kind": "matrix", "trials": 2})
        other = parse_campaign_spec({"kind": "matrix", "trials": 3})
        assert base.fingerprint() != other.fingerprint()

    def test_spec_is_hashable_value_object(self):
        spec = parse_campaign_spec({"kind": "conformance"})
        assert isinstance(spec, CampaignSpec)
        assert len({spec, parse_campaign_spec({"kind": "conformance"})}) == 1
