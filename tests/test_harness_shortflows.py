"""Finite flows, completion times and staggered-start fairness."""

import pytest

from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.runner import Impl
from repro.harness.shortflows import (
    fct_sweep,
    flow_completion_time,
    staggered_fairness,
)
from repro.netsim.endpoint import SenderConfig

CONDITION = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)


def test_sender_config_validates_total_bytes():
    with pytest.raises(ValueError):
        SenderConfig(total_bytes=0).validate()
    SenderConfig(total_bytes=10_000).validate()


def test_uncontended_transfer_completes_near_line_rate():
    result = flow_completion_time(
        Impl("linux", "cubic"), transfer_bytes=2_000_000, condition=CONDITION,
        horizon_s=30.0,
    )
    assert result.completed
    # 2 MB at 10 Mbps is ~1.6 s plus slow start; allow generous slack.
    assert 1.2 < result.fct_s < 6.0
    assert result.goodput_mbps() > 2.5


def test_small_transfer_dominated_by_rtt():
    result = flow_completion_time(
        Impl("linux", "cubic"), transfer_bytes=14_480, condition=CONDITION,
        horizon_s=10.0,
    )
    assert result.completed
    # 10 packets fit the initial window: one-ish RTT plus handshake-free
    # delivery. Must be far below a bandwidth-limited time.
    assert result.fct_s < 0.2


def test_fct_grows_with_size():
    results = fct_sweep(
        Impl("linux", "cubic"), [50_000, 500_000, 2_000_000], CONDITION
    )
    fcts = [r.fct_s for r in results]
    assert all(r.completed for r in results)
    assert fcts[0] < fcts[1] < fcts[2]


def test_background_flow_slows_transfer():
    alone = flow_completion_time(
        Impl("linux", "cubic"), 1_000_000, CONDITION, horizon_s=40.0
    )
    contended = flow_completion_time(
        Impl("linux", "cubic"), 1_000_000, CONDITION,
        competing=Impl("linux", "cubic"), horizon_s=40.0,
    )
    assert alone.completed and contended.completed
    assert contended.fct_s > alone.fct_s


def test_incomplete_transfer_reported():
    result = flow_completion_time(
        Impl("linux", "cubic"), 50_000_000, CONDITION, horizon_s=2.0
    )
    assert not result.completed
    assert result.goodput_mbps() is None


def test_sender_stops_after_finite_transfer():
    from repro.netsim.network import Network
    from repro.stacks import registry

    spec = registry.get_stack("linux").flow_spec("cubic", label="finite")
    spec.sender_config.total_bytes = 100_000
    network = Network(CONDITION.link_config(), [spec], seed=1)
    network.run(10.0)
    sender = network.senders[0]
    assert sender.complete
    # Sent little more than the transfer itself (fresh data respected).
    assert sender._fresh_bytes_sent <= 100_000 + sender.config.mss


def test_staggered_late_comer_reaches_fair_share(fresh_cache):
    cfg = ExperimentConfig(duration_s=25.0, trials=2)
    share = staggered_fairness(
        Impl("linux", "cubic"), Impl("linux", "cubic"), CONDITION, cfg,
        stagger_s=4.0, cache=fresh_cache,
    )
    assert 0.25 < share < 0.75


def test_staggered_aggressive_late_comer_takes_more(fresh_cache):
    cfg = ExperimentConfig(duration_s=25.0, trials=2)
    fair = staggered_fairness(
        Impl("linux", "cubic"), Impl("quicgo", "cubic"), CONDITION, cfg,
        stagger_s=4.0, cache=fresh_cache,
    )
    aggressive = staggered_fairness(
        Impl("linux", "cubic"), Impl("quiche", "cubic"), CONDITION, cfg,
        stagger_s=4.0, cache=fresh_cache,
    )
    assert aggressive > fair


def test_invalid_transfer_size():
    with pytest.raises(ValueError):
        flow_completion_time(Impl("linux", "cubic"), 0, CONDITION)
