"""Shared fixtures: fast experiment configs and isolated caches.

Setting ``REPRO_LOCK_SANITIZER=1`` additionally runs the whole suite
under the runtime lock-order sanitizer (:mod:`repro.lint.sanitizer`):
every project lock is instrumented, actual acquisition orders are
recorded, and at session end they are cross-checked against the static
lock graph — a contradiction (a cycle in the merged graph) fails the
run.  ``REPRO_LOCK_SANITIZER_REPORT=<path>`` writes the full report.
"""

import json
import os

import pytest

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition

_SANITIZER = None
if os.environ.get("REPRO_LOCK_SANITIZER"):
    from repro.lint.sanitizer import LockOrderSanitizer

    _SANITIZER = LockOrderSanitizer.for_package()
    _SANITIZER.install()  # before test modules import project code


def pytest_sessionfinish(session, exitstatus):
    if _SANITIZER is None:
        return
    _SANITIZER.uninstall()
    report = _SANITIZER.crosscheck()
    out = os.environ.get("REPRO_LOCK_SANITIZER_REPORT")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    print(
        "\nlock sanitizer: "
        f"{report['locks_instrumented']} locks instrumented, "
        f"{len(report['runtime_edges'])} runtime orderings, "
        f"{len(report['translated_edges'])} matched to the static graph"
    )
    if not report["ok"]:
        raise RuntimeError(
            "lock sanitizer: runtime acquisition order contradicts the "
            f"static lock graph: runtime cycles={report['runtime_cycles']} "
            f"merged cycles={report['merged_cycles']}"
        )


@pytest.fixture
def fresh_cache():
    """Memory-only cache isolated to one test."""
    return ResultCache(directory=None, enabled=True)


@pytest.fixture
def quick_config():
    """Short protocol for integration tests (seconds, not minutes)."""
    return ExperimentConfig(duration_s=12.0, trials=2)


@pytest.fixture
def small_condition():
    """A light network so packet counts stay low in unit tests."""
    return NetworkCondition(bandwidth_mbps=10.0, rtt_ms=20.0, buffer_bdp=1.0)
