"""Shared fixtures: fast experiment configs and isolated caches."""

import pytest

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition


@pytest.fixture
def fresh_cache():
    """Memory-only cache isolated to one test."""
    return ResultCache(directory=None, enabled=True)


@pytest.fixture
def quick_config():
    """Short protocol for integration tests (seconds, not minutes)."""
    return ExperimentConfig(duration_s=12.0, trials=2)


@pytest.fixture
def small_condition():
    """A light network so packet counts stay low in unit tests."""
    return NetworkCondition(bandwidth_mbps=10.0, rtt_ms=20.0, buffer_bdp=1.0)
