"""PIE and FQ-CoDel disciplines and the shared AQM registry."""

import random

import pytest

from repro.netsim.aqm import (
    DISCIPLINES,
    CoDelQueue,
    FQCoDelQueue,
    PIEQueue,
    REDQueue,
    disciplines,
    make_queue,
    register_discipline,
)
from repro.netsim.link import DropTailQueue
from repro.netsim.network import LinkConfig
from repro.netsim.packet import Packet


def pkt(seq=0, size=1000, flow=0):
    return Packet(flow_id=flow, seq=seq, size=size, sent_time=0.0)


class TestPIE:
    def test_no_early_drops_under_light_load(self):
        now = [0.0]
        q = PIEQueue(100_000, clock=lambda: now[0], rng=random.Random(1))
        for i in range(300):
            assert q.offer(pkt(i))
            now[0] += 0.005
            assert q.pop().seq == i  # queue drains every step
        assert q.early_drops == 0
        assert q.drop_probability == pytest.approx(0.0, abs=1e-6)

    def test_sustained_overload_raises_probability_and_drops(self):
        now = [0.0]
        q = PIEQueue(5_000_000, clock=lambda: now[0], rng=random.Random(1))
        seq = 0
        for _ in range(600):
            # Offered load 3 pkts/step, service 2 pkts/step: the standing
            # queue grows until the delay estimate crosses the target.
            for _ in range(3):
                q.offer(pkt(seq))
                seq += 1
            now[0] += 0.01
            q.pop()
            q.pop()
        assert q.drop_probability > 0.0
        assert q.early_drops > 0
        # Early drops count toward total drops; nothing hit capacity.
        assert q.dropped == q.early_drops

    def test_probability_decays_once_idle(self):
        now = [0.0]
        q = PIEQueue(5_000_000, clock=lambda: now[0], rng=random.Random(1))
        seq = 0
        for _ in range(600):
            for _ in range(3):
                q.offer(pkt(seq))
                seq += 1
            now[0] += 0.01
            q.pop()
            q.pop()
        loaded_p = q.drop_probability
        assert loaded_p > 0.0
        while q.pop() is not None:
            pass
        for _ in range(200):
            now[0] += 0.02
            q.offer(pkt(seq))
            seq += 1
            q.pop()
        assert q.drop_probability < loaded_p

    def test_hard_drop_at_capacity(self):
        q = PIEQueue(2000, clock=lambda: 0.0)
        assert q.offer(pkt(0))
        assert q.offer(pkt(1))
        assert not q.offer(pkt(2))
        assert q.dropped == 1 and q.early_drops == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PIEQueue(0, clock=lambda: 0.0)
        with pytest.raises(ValueError):
            PIEQueue(1000, clock=lambda: 0.0, target_s=0)
        with pytest.raises(ValueError):
            PIEQueue(1000, clock=lambda: 0.0, t_update_s=-1)


class TestFQCoDel:
    def test_drr_interleaves_competing_flows(self):
        q = FQCoDelQueue(1_000_000, clock=lambda: 0.0)
        for i in range(10):
            q.offer(pkt(i, flow=0))
        for i in range(10):
            q.offer(pkt(i, flow=1))
        first_eight = [q.pop().flow_id for _ in range(8)]
        # Quantum 1514 / 1000-byte packets: roughly alternating pairs,
        # never a long monopoly by the first-enqueued flow.
        assert first_eight.count(0) >= 3
        assert first_eight.count(1) >= 3

    def test_single_flow_passes_through_in_order(self):
        q = FQCoDelQueue(100_000, clock=lambda: 0.0)
        for i in range(5):
            assert q.offer(pkt(i))
        assert [q.pop().seq for i in range(5)] == list(range(5))
        assert q.pop() is None
        assert len(q) == 0 and q.bytes_queued == 0

    def test_overload_sheds_from_the_fattest_flow(self):
        q = FQCoDelQueue(4500, clock=lambda: 0.0)
        for i in range(4):
            q.offer(pkt(i, flow=0))  # 4th exceeds capacity, sheds flow 0
        assert q.offer(pkt(0, flow=1))  # thin flow still gets buffer space
        assert q.dropped >= 1
        flows = [q.pop().flow_id for _ in range(len(q))]
        assert 1 in flows  # the thin flow was not starved

    def test_isolation_one_bloated_flow_does_not_drop_the_other(self):
        now = [0.0]
        q = FQCoDelQueue(10_000_000, clock=lambda: now[0])
        seq = 0
        for _ in range(400):
            # Flow 0 floods; flow 1 sends one packet per service round.
            for _ in range(3):
                q.offer(pkt(seq, flow=0))
                seq += 1
            q.offer(pkt(seq, flow=1))
            seq += 1
            now[0] += 0.01
            q.pop()
            q.pop()
        assert q.early_drops > 0  # CoDel shed the bloated flow
        assert q._flows[1].early_drops == 0  # but never the thin one

    def test_validation(self):
        with pytest.raises(ValueError):
            FQCoDelQueue(0, clock=lambda: 0.0)
        with pytest.raises(ValueError):
            FQCoDelQueue(1000, clock=lambda: 0.0, quantum_bytes=0)


class TestRegistry:
    def test_registry_covers_all_disciplines(self):
        assert disciplines() == (
            "codel", "droptail", "fq_codel", "pie", "red",
        )

    def test_make_queue_dispatches_by_name(self):
        clock = lambda: 0.0
        rng = random.Random(0)
        for name, cls in [
            ("droptail", DropTailQueue),
            ("red", REDQueue),
            ("codel", CoDelQueue),
            ("pie", PIEQueue),
            ("fq_codel", FQCoDelQueue),
        ]:
            assert isinstance(make_queue(name, 10_000, clock, rng), cls)

    def test_unknown_discipline_lists_known_names(self):
        with pytest.raises(ValueError, match="fq_codel"):
            make_queue("wfq", 10_000, lambda: 0.0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_discipline("pie", lambda c, clk, r: None)

    def test_link_config_accepts_every_registered_discipline(self):
        for name in disciplines():
            LinkConfig(
                bandwidth_bps=8e6, rtt_s=0.02, queue_discipline=name
            ).validate()

    def test_link_config_rejects_unregistered_discipline(self):
        with pytest.raises(ValueError, match="unknown queue discipline"):
            LinkConfig(
                bandwidth_bps=8e6, rtt_s=0.02, queue_discipline="wfq"
            ).validate()

    def test_registration_extends_link_config(self):
        # The single-registry satellite: a discipline registered once is
        # immediately legal in LinkConfig without touching network.py.
        name = "test-only-fifo"
        assert name not in DISCIPLINES
        register_discipline(
            name, lambda capacity, clock, rng: DropTailQueue(capacity)
        )
        try:
            LinkConfig(
                bandwidth_bps=8e6, rtt_s=0.02, queue_discipline=name
            ).validate()
            q = make_queue(name, 5000, lambda: 0.0)
            assert isinstance(q, DropTailQueue)
        finally:
            del DISCIPLINES[name]
