"""Per-rule fixture tests for the determinism and contract rule packs.

Each test writes the smallest snippet that violates one rule into a
temporary project tree, runs the engine over it, and asserts the finding
carries the right rule id and ``file:line`` — plus a compliant twin
snippet asserting no false positive.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, LintConfig, lint_paths


def make_project(tmp_path, files):
    """Build a throwaway repo tree and return its LintConfig."""
    root = tmp_path / "proj"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    return LintConfig.for_root(root)


def run_lint(config, **kwargs):
    return lint_paths(config=config, baseline=Baseline(), **kwargs)


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ------------------------------------------------------------- wall-clock


def test_wall_clock_flagged_in_simulation_paths(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/engine.py": """
                import time

                def stamp():
                    return time.time()
            """,
        },
    )
    report = run_lint(config)
    (finding,) = findings_for(report, "wall-clock")
    assert finding.path.endswith("netsim/engine.py")
    assert finding.line == 4
    assert "time.time" in finding.message


@pytest.mark.parametrize(
    "call",
    ["time.monotonic()", "time.perf_counter()", "datetime.datetime.now()"],
)
def test_wall_clock_variants_flagged(tmp_path, call):
    config = make_project(
        tmp_path,
        {
            "src/repro/core/stats.py": f"""
                import time
                import datetime

                def stamp():
                    return {call}
            """,
        },
    )
    assert findings_for(run_lint(config), "wall-clock")


def test_wall_clock_from_import_and_extra_files(tmp_path):
    config = make_project(
        tmp_path,
        {
            # `from time import monotonic` must canonicalise.
            "src/repro/harness/runner.py": """
                from time import monotonic

                def stamp():
                    return monotonic()
            """,
            # exec/telemetry.py is covered via wallclock_extra_files.
            "src/repro/exec/telemetry.py": """
                import time

                def stamp():
                    return time.time()
            """,
            # exec/executor.py is NOT covered (timeout bookkeeping).
            "src/repro/exec/executor.py": """
                import time

                def stamp():
                    return time.perf_counter()
            """,
        },
    )
    report = run_lint(config)
    flagged = {f.path.rsplit("/", 2)[-1] for f in findings_for(report, "wall-clock")}
    paths = {f.path for f in findings_for(report, "wall-clock")}
    assert any(p.endswith("harness/runner.py") for p in paths)
    assert any(p.endswith("exec/telemetry.py") for p in paths)
    assert not any(p.endswith("exec/executor.py") for p in paths)


def test_simulated_time_not_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/engine.py": """
                class Engine:
                    def __init__(self):
                        self.now = 0.0

                    def time(self):
                        return self.now

                def stamp(engine):
                    return engine.time()
            """,
        },
    )
    assert not findings_for(run_lint(config), "wall-clock")


# -------------------------------------------------------- unseeded-random


def test_module_level_random_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/link.py": """
                import random

                def jitter():
                    return random.random()
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "unseeded-random")
    assert finding.line == 4


def test_unseeded_random_instance_flagged_seeded_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/aqm.py": """
                import random

                BAD = random.Random()
                GOOD = random.Random(42)

                def draw(rng):
                    return rng.random()
            """,
        },
    )
    flagged = findings_for(run_lint(config), "unseeded-random")
    assert [f.line for f in flagged] == [3]


def test_numpy_global_rng_flagged_default_rng_seeded_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/core/clustering.py": """
                import numpy as np

                def centers(k, seed):
                    bad = np.random.rand(k)
                    also_bad = np.random.default_rng()
                    good = np.random.default_rng(seed)
                    return bad, also_bad, good
            """,
        },
    )
    flagged = findings_for(run_lint(config), "unseeded-random")
    assert [f.line for f in flagged] == [4, 5]


# ---------------------------------------------------------- set-iteration


def test_for_loop_over_set_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/core/conformance.py": """
                def collect(rows):
                    names = {r.name for r in rows}
                    out = []
                    for name in names:
                        out.append(name)
                    return out
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "set-iteration")
    assert finding.line == 4


def test_sorted_set_iteration_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/core/conformance.py": """
                def collect(rows):
                    names = {r.name for r in rows}
                    return [n for n in sorted(names)]
            """,
        },
    )
    assert not findings_for(run_lint(config), "set-iteration")


def test_list_of_set_and_comprehension_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/harness/matrix.py": """
                def freeze(rows):
                    frozen = list(set(rows))
                    doubled = [r * 2 for r in set(rows)]
                    return frozen, doubled
            """,
        },
    )
    flagged = findings_for(run_lint(config), "set-iteration")
    assert sorted(f.line for f in flagged) == [2, 3]


def test_set_taint_cleared_by_reassignment(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/core/stats.py": """
                def collect(rows):
                    names = {r.name for r in rows}
                    names = sorted(names)
                    return [n for n in names]
            """,
        },
    )
    assert not findings_for(run_lint(config), "set-iteration")


# ---------------------------------------------------------- id-keyed-dict


def test_id_keyed_dict_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/core/timeseries.py": """
                def index(flows):
                    table = {}
                    for flow in flows:
                        table[id(flow)] = flow
                    return table
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "id-keyed-dict")
    assert finding.line == 4


def test_id_in_literal_and_get_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/core/envelope.py": """
                def lookup(table, flow):
                    seed = {id(flow): flow}
                    return table.get(id(flow))
            """,
        },
    )
    assert len(findings_for(run_lint(config), "id-keyed-dict")) == 2


# ----------------------------------------------------------- environ-read


def test_environ_read_flagged_outside_seams(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/netsim/network.py": """
                import os

                def tuning():
                    a = os.environ["QUIC_TUNING"]
                    b = os.environ.get("QUIC_TUNING")
                    c = os.getenv("QUIC_TUNING")
                    return a, b, c
            """,
            # The sanctioned seams stay clean.
            "src/repro/harness/cache.py": """
                import os

                def cache_dir():
                    return os.environ.get("QUICBENCH_CACHE_DIR")
            """,
        },
    )
    report = run_lint(config)
    flagged = findings_for(report, "environ-read")
    assert len(flagged) == 3
    assert all(f.path.endswith("netsim/network.py") for f in flagged)


# ---------------------------------------------------- stack-profile-fields


def test_stack_profile_missing_fields_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/stacks/newstack.py": """
                from repro.stacks.base import StackProfile

                PROFILE = StackProfile(
                    name="newstack",
                    organization="Acme",
                )
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "stack-profile-fields")
    assert "version" in finding.message and "ccas" in finding.message
    assert finding.line == 3


def test_stack_module_without_profile_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {"src/repro/stacks/orphan.py": "X = 1\n"},
    )
    (finding,) = findings_for(run_lint(config), "stack-profile-fields")
    assert "registers no" in finding.message


def test_complete_stack_profile_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/stacks/fullstack.py": """
                from repro.stacks.base import StackProfile

                PROFILE = StackProfile(
                    name="fullstack",
                    organization="Acme",
                    version="deadbeef",
                    ccas={},
                )
            """,
        },
    )
    assert not findings_for(run_lint(config), "stack-profile-fields")


# -------------------------------------------------------- cca-hook-surface


def test_cca_missing_hooks_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/cca/vegas.py": """
                from repro.cca.base import CongestionController

                class Vegas(CongestionController):
                    def on_ack(self, event):
                        pass
            """,
        },
    )
    (finding,) = findings_for(run_lint(config), "cca-hook-surface")
    assert "cwnd" in finding.message
    assert "on_congestion_event" in finding.message
    assert "name" in finding.message


def test_complete_cca_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/cca/vegas.py": """
                from repro.cca.base import CongestionController

                class Vegas(CongestionController):
                    name = "vegas"

                    @property
                    def cwnd(self):
                        return 10

                    def on_ack(self, event):
                        pass

                    def on_congestion_event(self, now, bytes_in_flight):
                        pass
            """,
        },
    )
    assert not findings_for(run_lint(config), "cca-hook-surface")


def test_indirect_cca_subclass_not_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/cca/variant.py": """
                from repro.cca.reno import NewReno

                class Tweaked(NewReno):
                    pass
            """,
        },
    )
    assert not findings_for(run_lint(config), "cca-hook-surface")


# -------------------------------------------------------- cli-doc-coverage


def test_undocumented_subcommand_flagged(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/cli.py": """
                def build_parser(sub):
                    sub.add_parser("frobnicate", help="secret feature")
                    sub.add_parser("stacks", help="documented feature")
            """,
            "README.md": "Run `repro stacks` for the inventory.\n",
        },
    )
    (finding,) = findings_for(run_lint(config), "cli-doc-coverage")
    assert "frobnicate" in finding.message
    assert finding.line == 2


def test_documented_subcommands_ok(tmp_path):
    config = make_project(
        tmp_path,
        {
            "src/repro/cli.py": """
                def build_parser(sub):
                    sub.add_parser("stacks", help="documented feature")
            """,
            "docs/usage.md": "The stacks subcommand lists stacks.\n",
        },
    )
    assert not findings_for(run_lint(config), "cli-doc-coverage")
