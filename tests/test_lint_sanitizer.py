"""Runtime lock-order sanitizer: catch a real deadlock-shaped fixture.

The fixtures live under a temporary ``src/repro/`` tree so the
instrumented factories treat them as project code (construction-site
filtering) and so the static graph built from the same tree shares the
``(rel, line)`` site vocabulary for the cross-check.
"""

import importlib.util
import textwrap
import threading

import pytest

from repro.lint import LintConfig
from repro.lint.engine import build_project_graph
from repro.lint.sanitizer import LockOrderSanitizer, find_cycles

_COUNTER = [0]


def load_fixture(tmp_path, body, sanitizer):
    """Write a module under src/repro/ and import it while instrumented
    (module-level locks must be constructed under the sanitizer)."""
    root = tmp_path / "proj"
    pkg = root / "src" / "repro"
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / "deadrt.py"
    path.write_text(textwrap.dedent(body).lstrip("\n"))
    _COUNTER[0] += 1
    spec = importlib.util.spec_from_file_location(
        f"_sanitizer_fixture_{_COUNTER[0]}", path
    )
    module = importlib.util.module_from_spec(spec)
    with sanitizer:
        spec.loader.exec_module(module)
    return module, LintConfig.for_root(root)


DEADLOCK_FIXTURE = """
    import threading

    A = threading.Lock()
    B = threading.Lock()

    def ab():
        with A:
            with B:
                pass

    def ba():
        with B:
            with A:
                pass
"""


def test_sanitizer_catches_deliberate_deadlock(tmp_path):
    """Running both orders (sequentially, so nothing actually hangs)
    must surface the A<->B cycle at runtime and fail the cross-check."""
    san = LockOrderSanitizer()
    module, config = load_fixture(tmp_path, DEADLOCK_FIXTURE, san)
    with san:
        module.ab()
        module.ba()
    cycles = san.runtime_cycles()
    assert len(cycles) == 1
    assert sorted(line for _, line in cycles[0]) == [3, 4]
    graph = build_project_graph(config=config, use_cache=False)
    report = san.crosscheck(graph)
    assert not report["ok"]
    assert report["locks_instrumented"] == 2
    assert report["runtime_cycles"] and report["merged_cycles"]


def test_sanitizer_clean_consistent_order(tmp_path):
    san = LockOrderSanitizer()
    module, config = load_fixture(
        tmp_path,
        """
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def ab():
            with A:
                with B:
                    pass
        """,
        san,
    )
    with san:
        for _ in range(3):
            module.ab()
    assert san.runtime_cycles() == []
    graph = build_project_graph(config=config, use_cache=False)
    report = san.crosscheck(graph)
    assert report["ok"]
    # The one runtime edge translated onto the static lock ids.
    assert report["translated_edges"] == [
        ["repro.deadrt.A", "repro.deadrt.B"]
    ]
    assert report["untranslated_edges"] == []
    # Occurrence counting: three runs of the same ordering.
    assert report["runtime_edges"][0][2] == 3


def test_crosscheck_flags_runtime_order_contradicting_static(tmp_path):
    """Static analysis sees only ab() (edge A->B).  The test then
    acquires B-then-A directly — an order no source path shows.  The
    merge must go cyclic even though neither side alone has a cycle."""
    san = LockOrderSanitizer()
    module, config = load_fixture(
        tmp_path,
        """
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def ab():
            with A:
                with B:
                    pass
        """,
        san,
    )
    with san:
        module.ab()
        with module.B:
            with module.A:
                pass
    assert san.runtime_cycles() != []  # both orders happened at runtime
    graph = build_project_graph(config=config, use_cache=False)
    report = san.crosscheck(graph)
    assert not report["ok"]
    assert ["repro.deadrt.A", "repro.deadrt.B"] in report["static_edges"]
    assert ["repro.deadrt.B", "repro.deadrt.A"] in report["translated_edges"]
    assert report["merged_cycles"]


def test_rlock_reentrancy_records_no_edge(tmp_path):
    san = LockOrderSanitizer()
    module, _ = load_fixture(
        tmp_path,
        """
        import threading

        L = threading.RLock()

        def reenter():
            with L:
                with L:
                    pass
        """,
        san,
    )
    with san:
        module.reenter()
    assert san.edges == {}
    assert san.runtime_cycles() == []


def test_condition_on_instrumented_lock(tmp_path):
    """Condition built on a sanitized RLock must keep working: wait()
    uses the private _release_save/_acquire_restore/_is_owned protocol,
    and the held-stack must be balanced afterwards."""
    san = LockOrderSanitizer()
    module, _ = load_fixture(
        tmp_path,
        """
        import threading

        L = threading.RLock()
        OTHER = threading.Lock()

        def wait_briefly():
            cond = threading.Condition(L)
            with cond:
                cond.wait(0.01)

        def then_other():
            with OTHER:
                pass
        """,
        san,
    )
    with san:
        module.wait_briefly()
        module.then_other()
    # The held stack was balanced across wait(): acquiring OTHER after
    # the with-block must not record an L->OTHER edge.
    assert san.edges == {}


def test_condition_notify_across_threads(tmp_path):
    san = LockOrderSanitizer()
    module, _ = load_fixture(
        tmp_path,
        """
        import threading

        L = threading.RLock()
        COND = threading.Condition(L)
        READY = [False]

        def consumer():
            with COND:
                while not READY[0]:
                    COND.wait(1.0)

        def producer():
            with COND:
                READY[0] = True
                COND.notify()
        """,
        san,
    )
    with san:
        t = threading.Thread(target=module.consumer)
        t.start()
        module.producer()
        t.join(5.0)
    assert not t.is_alive()
    assert san.runtime_cycles() == []


def test_locks_held_by_other_threads_do_not_order(tmp_path):
    """Ordering is per-thread: thread 1 holding A while thread 2 takes
    B is concurrency, not an acquisition order."""
    san = LockOrderSanitizer()
    module, _ = load_fixture(
        tmp_path,
        """
        import threading

        A = threading.Lock()
        B = threading.Lock()
        """,
        san,
    )
    holding = threading.Event()
    done = threading.Event()

    def hold_a():
        with module.A:
            holding.set()
            done.wait(5.0)

    with san:
        t = threading.Thread(target=hold_a)
        t.start()
        assert holding.wait(5.0)
        with module.B:
            pass
        done.set()
        t.join(5.0)
    assert san.edges == {}


def test_stdlib_locks_not_instrumented(tmp_path):
    """queue.Queue's internal lock is constructed in stdlib code and
    must pass through untouched."""
    import queue

    san = LockOrderSanitizer()
    with san:
        q = queue.Queue()
        q.put(1)
        assert q.get() == 1
    assert san.sites == {}


def test_uninstall_restores_factories():
    orig_lock, orig_rlock = threading.Lock, threading.RLock
    san = LockOrderSanitizer()
    san.install()
    assert threading.Lock is not orig_lock
    san.uninstall()
    assert threading.Lock is orig_lock
    assert threading.RLock is orig_rlock


def test_nonblocking_acquire_failure_not_pushed(tmp_path):
    san = LockOrderSanitizer()
    module, _ = load_fixture(
        tmp_path,
        """
        import threading

        A = threading.Lock()
        B = threading.Lock()
        """,
        san,
    )
    grabbed = threading.Event()
    release = threading.Event()

    def hold():
        with module.A:
            grabbed.set()
            release.wait(5.0)

    with san:
        t = threading.Thread(target=hold)
        t.start()
        assert grabbed.wait(5.0)
        assert module.A.acquire(False) is False
        # The failed acquire must not leave A on this thread's stack:
        with module.B:
            pass
        release.set()
        t.join(5.0)
    assert san.edges == {}


def test_find_cycles_unit():
    assert find_cycles([("a", "b"), ("b", "c")]) == []
    assert find_cycles([("a", "b"), ("b", "a")]) == [["a", "b"]]
    assert find_cycles([("a", "a")]) == [["a"]]
    assert find_cycles(
        [("a", "b"), ("b", "c"), ("c", "a"), ("x", "y")]
    ) == [["a", "b", "c"]]


def test_sanitizer_env_hookup_documented():
    """tests/conftest.py wires REPRO_LOCK_SANITIZER: keep the contract
    visible — for_package() defaults to the src/repro root."""
    san = LockOrderSanitizer.for_package()
    assert san.package_roots == ("src/repro",)


@pytest.mark.parametrize("factory", ["Lock", "RLock"])
def test_both_factories_instrumented(tmp_path, factory):
    san = LockOrderSanitizer()
    module, _ = load_fixture(
        tmp_path,
        f"""
        import threading

        L = threading.{factory}()

        def use():
            with L:
                return 1
        """,
        san,
    )
    with san:
        assert module.use() == 1
    assert list(san.sites.values()) == [factory]
