"""Fault seams threaded through the pipeline: store, exec, service.

Each test activates a small bespoke :class:`FaultPlan` against one
production seam and asserts the hardening path it exercises — retry
absorption, typed errors, breaker-gated spill, quarantine, degraded
health — not merely that the fault fired.
"""

import json
import sqlite3

import numpy as np
import pytest

from repro.exec import ExecutionError, Executor, Job
from repro.exec.telemetry import STATUS_QUARANTINED, StoreSink
from repro.faults import inject
from repro.faults.breaker import BreakerOpen, get_breaker, reset_breakers
from repro.faults.inject import active_plan
from repro.faults.plan import (
    FAULT_DISK_FULL,
    FAULT_HTTP_DISCONNECT,
    FAULT_STORE_LOCKED,
    FAULT_WORKER_CRASH,
    FaultPlan,
    rule,
)
from repro.faults.retry import RetryPolicy
from repro.harness.cache import ResultCache
from repro.store import ResultStore, StoreCache, StoreError, ingest_sideline
from repro.service.client import ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def _isolated_faults():
    reset_breakers()
    inject.deactivate()
    yield
    inject.deactivate()
    reset_breakers()


def instant_retry(**kwargs):
    """A policy that never really sleeps and never really waits."""
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("backoff_s", 0.001)
    kwargs.setdefault("sleep", lambda s: None)
    return RetryPolicy(**kwargs)


# ------------------------------------------------------------- warehouse


class TestWarehouseFaults:
    def test_locked_burst_absorbed_by_retry(self, tmp_path):
        plan = FaultPlan(
            "burst",
            (
                rule(
                    FAULT_STORE_LOCKED, "store.execute",
                    hits=(1, 2), when={"sql": "insert"},
                ),
            ),
        )
        with active_plan(plan) as injector:
            store = ResultStore(tmp_path / "s.db", retry=instant_retry())
            assert store.put_trial("k", np.arange(3.0))
            store.close()
        assert injector.fire_count(FAULT_STORE_LOCKED) == 2
        with ResultStore(tmp_path / "s.db") as clean:
            assert np.array_equal(clean.get_trial("k"), np.arange(3.0))

    def test_locked_past_deadline_raises_typed_store_error(self, tmp_path):
        plan = FaultPlan(
            "wedged",
            (rule(FAULT_STORE_LOCKED, "store.execute", when={"sql": "insert"}),),
        )
        retry = instant_retry(max_attempts=None, deadline_s=0.0)
        with active_plan(plan):
            store = ResultStore(tmp_path / "s.db", retry=retry)
            with pytest.raises(StoreError, match="retry deadline"):
                store.put_trial("k", np.arange(3.0))
            store.close()

    def test_pragmas_and_migration_do_not_fault(self, tmp_path):
        # The insert-scoped rule must not hit connection setup: opening
        # the store (PRAGMAs + migration DDL) stays clean.
        plan = FaultPlan(
            "inserts-only",
            (rule(FAULT_DISK_FULL, "store.execute", when={"sql": "insert"}),),
        )
        with active_plan(plan):
            store = ResultStore(tmp_path / "s.db", retry=instant_retry())
            assert store.trial_keys() == []  # reads fine
            with pytest.raises(OSError):
                store.put_trial("k", np.arange(3.0))
            store.close()

    def test_plain_connection_when_no_plan_active(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        assert isinstance(store._conn, sqlite3.Connection)
        store.close()


class TestStoreCacheDegradation:
    def test_dead_store_degrades_to_memory_tier(self, tmp_path):
        store = ResultStore(tmp_path / "s.db")
        cache = StoreCache(store, directory=tmp_path / "cache")
        store.close()  # the warehouse goes away mid-campaign
        with pytest.warns(UserWarning, match="degrading"):
            value = cache.get_or_compute("k", lambda: np.ones(4))
        assert np.array_equal(value, np.ones(4))
        assert cache.counters()["store_errors"] >= 1
        # The faster tiers still serve it.
        assert np.array_equal(cache.get("k"), np.ones(4))


class TestHarnessCacheFaults:
    def test_disk_write_failure_absorbed(self, tmp_path):
        plan = FaultPlan("df", (rule(FAULT_DISK_FULL, "cache.write"),))
        cache = ResultCache(directory=tmp_path)
        with active_plan(plan):
            value = cache.get_or_compute("k", lambda: np.ones(2))
        assert np.array_equal(value, np.ones(2))
        assert cache.disk_errors == 1
        assert not (tmp_path / "k.npy").exists()
        assert np.array_equal(cache.get("k"), np.ones(2))  # memory tier

    def test_unreadable_disk_entry_recomputed(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", np.ones(2))
        cache.clear_memory()
        plan = FaultPlan("dl", (rule(FAULT_DISK_FULL, "cache.load", hits=(1,)),))
        with active_plan(plan):
            assert cache.get("k") is None
        assert cache.disk_errors == 1
        recomputed = cache.get_or_compute("k", lambda: np.full(2, 7.0))
        assert np.array_equal(recomputed, np.full(2, 7.0))


# ------------------------------------------------------------ store sink


class TestStoreSinkSpill:
    def test_spill_and_replay_round_trip(self, tmp_path):
        store_path = tmp_path / "s.db"
        store = ResultStore(store_path)
        breaker = get_breaker("sink-test", failure_threshold=1)
        breaker.record_failure(OSError("disk full"))  # open from the start
        sink = StoreSink(store, breaker=breaker)
        payload = np.linspace(0.0, 1.0, 7)
        sink.campaign_start("c1", jobs=1, workers=1, mode="serial")
        stored = sink.trials("c1", [("trial-key", payload)])
        assert stored == 0  # nothing reached the warehouse
        assert sink.spilled >= 2
        assert not store.has_trial("trial-key")
        store.close()

        sideline = tmp_path / "s.db.sideline.jsonl"
        assert sideline.exists()
        lines = [json.loads(l) for l in sideline.read_text().splitlines()]
        assert {l["kind"] for l in lines} == {"event", "trial"}

        with ResultStore(store_path) as fresh:
            report = ingest_sideline(fresh, sideline)
            assert report.trials == 1 and report.events == 1
            replayed = fresh.get_trial("trial-key")
            assert replayed.dtype == payload.dtype
            assert np.array_equal(replayed, payload)  # bit-identical
            events = fresh.events(campaign="c1")
            assert any(e["event"] == "campaign_start" for e in events)

    def test_breaker_trips_after_repeated_store_failures(self, tmp_path):
        store_path = tmp_path / "s.db"
        plan = FaultPlan(
            "df", (rule(FAULT_DISK_FULL, "store.execute", when={"sql": "insert"}),)
        )
        # The faulty-connection wrapper is installed at open time, so the
        # store must be built while the plan is active.
        with active_plan(plan):
            store = ResultStore(store_path, retry=instant_retry())
            sink = StoreSink(store)
            for n in range(4):
                sink.campaign_start(f"c{n}", jobs=1, workers=1, mode="serial")
        assert sink.breaker.is_open()
        assert sink.spilled >= 1
        store.close()

    def test_sideline_replay_dedupes(self, tmp_path):
        store_path = tmp_path / "s.db"
        with ResultStore(store_path) as store:
            breaker = get_breaker("sink-dedupe", failure_threshold=1)
            breaker.record_failure(OSError("down"))
            sink = StoreSink(store, breaker=breaker)
            sink.trials("c", [("k", np.ones(3))])
        sideline = tmp_path / "s.db.sideline.jsonl"
        with ResultStore(store_path) as fresh:
            fresh.put_trial("k", np.ones(3))  # landed some other way
            report = ingest_sideline(fresh, sideline)
            assert report.trials == 0 and report.trials_deduped == 1


# -------------------------------------------------------------- executor


def _ok(x, cache=None):
    return np.array([float(x)])


class TestExecutorFaults:
    def test_serial_retry_uses_injected_sleep(self, tmp_path):
        sleeps = []
        retry = RetryPolicy(
            max_attempts=3, backoff_s=0.25, sleep=sleeps.append
        )
        calls = []

        def flaky(cache=None):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return np.ones(1)

        ex = Executor(jobs=1, cache=ResultCache(), retry=retry)
        (value,) = ex.run([Job(fn=flaky, key="f")])
        assert value[0] == 1.0
        # Both pauses went through the policy's seam, none through a raw
        # time.sleep: the list recorded them and the test ran instantly.
        assert sleeps == [pytest.approx(0.25), pytest.approx(0.5)]

    def test_retry_policy_overrides_legacy_knobs(self):
        retry = RetryPolicy(max_attempts=7, backoff_s=0.125)
        ex = Executor(jobs=1, retries=1, backoff_s=99.0, retry=retry)
        assert ex.retries == 6
        assert ex.backoff_s == 0.125

    def test_poison_job_quarantined_in_pool(self, tmp_path):
        # Crash the worker on *every* attempt of the poison job: without
        # quarantine this would burn the whole respawn budget.
        plan = FaultPlan(
            "poison", (rule(FAULT_WORKER_CRASH, "exec.worker.trial"),)
        )
        ex = Executor(
            jobs=2,
            cache=ResultCache(directory=tmp_path / "cache"),
            retry=RetryPolicy(max_attempts=6, backoff_s=0.01),
            poison_crashes=2,
            fault_plan=plan,
        )
        with pytest.raises(ExecutionError):
            ex.run([Job(fn=_ok, args=(1,), key="poison")])
        record = ex.last_records[0]
        assert record.status == STATUS_QUARANTINED
        assert "quarantined after 2 worker crashes" in record.error

    def test_worker_crash_under_quarantine_threshold_still_retries(
        self, tmp_path
    ):
        # First-attempt-only crash: the retry succeeds before the poison
        # threshold, proving quarantine never fires on transient crashes.
        plan = FaultPlan(
            "once",
            (rule(FAULT_WORKER_CRASH, "exec.worker.trial", when={"attempt": 1}),),
        )
        ex = Executor(
            jobs=2,
            cache=ResultCache(directory=tmp_path / "cache"),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.01),
            poison_crashes=3,
            fault_plan=plan,
        )
        (value,) = ex.run([Job(fn=_ok, args=(5,), key="transient")])
        assert value[0] == 5.0
        assert ex.last_records[0].status == "ok"
        assert ex.last_records[0].retried


# --------------------------------------------------------------- service


class TestServiceFaults:
    def test_transport_failure_is_typed_and_retryable(self):
        client = ServiceClient("http://127.0.0.1:9")  # nothing listens
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0
        assert "connection failed" in str(err.value)

    def test_injected_disconnect_maps_to_status_zero(self):
        plan = FaultPlan(
            "hd", (rule(FAULT_HTTP_DISCONNECT, "client.request", hits=(1,)),)
        )
        client = ServiceClient("http://127.0.0.1:9")
        with active_plan(plan):
            with pytest.raises(ServiceError) as err:
                client.health()
        assert err.value.status == 0
        assert "connection reset" in str(err.value)

    def test_submit_blocking_retries_transport_failures(self, tmp_path):
        # All attempts fail with status 0; the policy must keep retrying
        # through its fake sleep until the deadline, then re-raise.
        plan = FaultPlan("hd", (rule(FAULT_HTTP_DISCONNECT, "client.request"),))
        fake = {"now": 0.0}

        def sleep(seconds):
            fake["now"] += seconds

        retry = RetryPolicy(
            max_attempts=None, backoff_s=1.0, backoff_cap_s=1.0,
            deadline_s=4.5, sleep=sleep, clock=lambda: fake["now"],
        )
        client = ServiceClient("http://127.0.0.1:9")
        with active_plan(plan) as injector:
            with pytest.raises(ServiceError):
                client.submit_blocking({"kind": "matrix"}, retry=retry)
        assert injector.fire_count(FAULT_HTTP_DISCONNECT) >= 2

    def test_journal_breaker_rejects_submissions_when_open(self, tmp_path):
        from repro.service.scheduler import Scheduler
        from repro.service.specs import parse_campaign_spec

        scheduler = Scheduler(str(tmp_path / "s.db"), workers=0)
        breaker = get_breaker("service-journal", failure_threshold=1)
        breaker.record_failure(OSError("journal store gone"))
        spec = parse_campaign_spec(
            {
                "kind": "matrix",
                "stacks": ["quiche"],
                "ccas": ["cubic"],
                "conditions": [
                    {"bandwidth_mbps": 8, "rtt_ms": 20, "buffer_bdp": 0.6}
                ],
                "duration_s": 1.0,
                "trials": 1,
            }
        )
        with pytest.raises(BreakerOpen):
            scheduler.submit(spec)
        # Nothing half-registered: the job map stays empty.
        assert scheduler.jobs() == [] if hasattr(scheduler, "jobs") else True
        scheduler.shutdown(drain=False)

    def test_healthz_reports_degraded_while_breaker_open(self, tmp_path):
        from repro.service.server import ServiceApp

        app = ServiceApp(str(tmp_path / "s.db"), port=0, workers=0)
        app.start()
        try:
            client = ServiceClient(app.url)
            assert client.health()["status"] == "ok"
            breaker = get_breaker("store-sink:test", failure_threshold=1)
            breaker.record_failure(OSError("no space left on device"))
            health = client.health()
            assert health["status"] == "degraded"
            assert "store-sink:test" in health["degraded"]
            assert "no space left" in health["degraded"]["store-sink:test"]
            breaker.record_success()
            assert client.health()["status"] == "ok"
        finally:
            app.stop(drain=False)
