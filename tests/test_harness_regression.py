"""Kernel-milestone regression harness (§6 "Keeping up with the kernel")."""

import pytest

from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.regression import (
    MILESTONES,
    KernelMilestone,
    RegressionRow,
    flipped_verdicts,
    regression_matrix,
)

CONDITION = NetworkCondition(bandwidth_mbps=10, rtt_ms=20, buffer_bdp=1)
QUICK = ExperimentConfig(duration_s=10.0, trials=2)


def test_builtin_milestones():
    names = [m.name for m in MILESTONES]
    assert "5.13-stock" in names
    pre = next(m for m in MILESTONES if m.name == "pre-hystart")
    assert pre.variant_for("cubic") == "nohystart"
    assert pre.variant_for("bbr") == "default"


def test_regression_row_verdicts():
    row = RegressionRow("x", "cubic", {"a": 0.8, "b": 0.3})
    assert row.verdicts() == {"a": True, "b": False}
    assert row.verdict_flips
    stable = RegressionRow("y", "cubic", {"a": 0.8, "b": 0.9})
    assert not stable.verdict_flips
    assert flipped_verdicts([row, stable]) == [row]


def test_regression_matrix_runs(fresh_cache):
    rows = regression_matrix(
        milestones=MILESTONES,
        implementations=[("quicgo", "cubic"), ("xquic", "cubic")],
        condition=CONDITION,
        config=QUICK,
        cache=fresh_cache,
    )
    assert len(rows) == 2
    for row in rows:
        assert set(row.conformance) == {"5.13-stock", "pre-hystart"}
        for value in row.conformance.values():
            assert 0 <= value <= 1


def test_custom_milestone_variant_routing(fresh_cache):
    milestone = KernelMilestone("only-nohystart", {"cubic": "nohystart"})
    rows = regression_matrix(
        milestones=[milestone],
        implementations=[("xquic", "cubic")],
        condition=CONDITION,
        config=QUICK,
        cache=fresh_cache,
    )
    assert "only-nohystart" in rows[0].conformance
