"""Stack registry and profiles against the paper's Table 1/2."""

import pytest

from repro.cca.bbr import BBR
from repro.cca.cubic import Cubic
from repro.cca.reno import NewReno
from repro.stacks import UnknownCCAError, UnknownVariantError, registry


def test_eleven_quic_stacks_plus_reference():
    assert len(registry.quic_stacks()) == 11
    assert registry.reference().name == "linux"
    assert registry.reference().is_reference


def test_twenty_two_quic_implementations():
    # Table 1: 11 CUBIC + 4 BBR + 7 Reno QUIC implementations.
    impls = list(registry.iter_implementations())
    assert len(impls) == 22
    by_cca = {}
    for profile, cca in impls:
        by_cca.setdefault(cca, []).append(profile.name)
    assert len(by_cca["cubic"]) == 11
    assert sorted(by_cca["bbr"]) == ["chromium", "lsquic", "mvfst", "xquic"]
    assert len(by_cca["reno"]) == 7


def test_table1_cca_availability():
    expectations = {
        "mvfst": {"cubic", "bbr", "reno"},
        "chromium": {"cubic", "bbr"},
        "msquic": {"cubic"},
        "quiche": {"cubic", "reno"},
        "lsquic": {"cubic", "bbr"},
        "quicgo": {"cubic", "reno"},
        "quicly": {"cubic", "reno"},
        "quinn": {"cubic", "reno"},
        "s2n-quic": {"cubic"},
        "xquic": {"cubic", "bbr", "reno"},
        "neqo": {"cubic", "reno"},
    }
    for name, ccas in expectations.items():
        assert set(registry.get_stack(name).available_ccas()) == ccas


def test_known_stacks_table2():
    assert len(registry.KNOWN_STACKS) == 22
    studied = [k.stack for k in registry.KNOWN_STACKS if k.studied]
    assert len(studied) == 11
    # Every studied stack has a profile.
    for name in studied:
        assert name in registry.STACKS


def test_documented_deviations_are_wired():
    # mvfst BBR paces 25 % hot.
    cca = registry.get_stack("mvfst").variant("bbr").factory(1448)
    assert isinstance(cca, BBR)
    assert cca.config.pacing_rate_scale == pytest.approx(1.25)
    # xquic BBR cwnd gain 2.5; the fix restores 2.0.
    assert registry.get_stack("xquic").variant("bbr").factory(1448).config.cwnd_gain == 2.5
    assert (
        registry.get_stack("xquic").variant("bbr", "fixed").factory(1448).config.cwnd_gain
        == 2.0
    )
    # chromium CUBIC emulates 2 connections.
    assert (
        registry.get_stack("chromium").variant("cubic").factory(1448).config.emulated_connections
        == 2
    )
    # quiche CUBIC rolls back spurious congestion events.
    assert registry.get_stack("quiche").variant("cubic").factory(1448).config.spurious_loss_rollback
    assert not registry.get_stack("quiche").variant("cubic", "fixed").factory(
        1448
    ).config.spurious_loss_rollback
    # xquic CUBIC lacks HyStart.
    assert not registry.get_stack("xquic").variant("cubic").factory(1448).config.enable_hystart
    # Kernel reference has a no-HyStart variant for the Table 4 check.
    assert not registry.get_stack("linux").variant("cubic", "nohystart").factory(
        1448
    ).config.enable_hystart


def test_stack_level_artifacts():
    assert registry.get_stack("xquic").sender_config.cwnd_scale < 1.0
    assert registry.get_stack("neqo").sender_config.cwnd_scale < 1.0
    assert registry.get_stack("quiche").sender_config.spurious_undo is not None
    # The artifact is exempted for xquic BBR (pacing-driven).
    spec = registry.get_stack("xquic").flow_spec("bbr")
    assert spec.sender_config.cwnd_scale == 1.0
    spec = registry.get_stack("xquic").flow_spec("reno")
    assert spec.sender_config.cwnd_scale < 1.0


def test_flow_spec_construction():
    spec = registry.get_stack("quicgo").flow_spec("cubic", label="x")
    assert spec.label == "x"
    cca = spec.cca_factory()
    assert isinstance(cca, Cubic)
    assert cca.mss == spec.sender_config.mss
    spec2 = registry.get_stack("quicgo").flow_spec("reno")
    assert isinstance(spec2.cca_factory(), NewReno)
    assert "quicgo" in spec2.label


def test_flow_specs_are_independent():
    a = registry.get_stack("quicgo").flow_spec("cubic")
    b = registry.get_stack("quicgo").flow_spec("cubic")
    assert a.sender_config is not b.sender_config
    assert a.cca_factory() is not b.cca_factory()


def test_unknown_lookups_raise():
    with pytest.raises(KeyError):
        registry.get_stack("nosuch")
    with pytest.raises(UnknownCCAError):
        registry.get_stack("msquic").variant("bbr")
    with pytest.raises(UnknownVariantError):
        registry.get_stack("msquic").variant("cubic", "nosuch")


def test_loss_styles():
    assert registry.get_stack("linux").sender_config.loss_style == "tcp"
    for profile in registry.quic_stacks():
        assert profile.sender_config.loss_style == "quic"


class TestRegistryDerivedCapabilities:
    """stacks.registry derives from the ccax registry, not hard-coding."""

    def test_study_set_is_the_kernel_reference_set(self):
        from repro.ccax import registry as ccax

        assert registry.CCAS == ccax.kernel_reference_ccas()
        assert registry.CCAS == ("cubic", "bbr", "reno")

    def test_new_families_hosted_via_capability_fallback(self):
        # bbr2/bbr3/gcc are not in any profile's own ccas table, yet
        # every stack hosts them through host_stacks="*".
        quiche = registry.get_stack("quiche")
        assert "bbr3" not in quiche.ccas
        assert quiche.supports("bbr3")
        assert quiche.supports("gcc")
        spec = quiche.flow_spec("gcc")
        from repro.cca.gcc import GccController

        assert isinstance(spec.cca_factory(), GccController)

    def test_external_registration_reaches_profiles_with_zero_edits(self):
        from repro.cca.reno import NewReno
        from repro.ccax import registry as ccax
        from repro.ccax import register_congestion_control

        try:
            register_congestion_control(
                "stacktestcca", lambda mss: NewReno(mss)
            )
            profile = registry.get_stack("quicgo")
            assert profile.supports("stacktestcca")
            assert "stacktestcca" in profile.hosted_ccas()
            # Table 1 stays as published: hosted extras never leak in.
            assert "stacktestcca" not in profile.available_ccas()
            assert isinstance(
                profile.flow_spec("stacktestcca").cca_factory(), NewReno
            )
        finally:
            ccax.unregister("stacktestcca")
        assert not registry.get_stack("quicgo").supports("stacktestcca")

    def test_kernel_trio_never_blanket_hosted(self):
        # Hosting cubic/bbr/reno is a per-stack deviation-table decision
        # (Table 1); the registry fallback must not invent support.
        from repro.ccax import registry as ccax

        for cca in registry.CCAS:
            for profile in registry.quic_stacks():
                assert profile.supports(cca) == (cca in profile.ccas)
                assert not ccax.hosted_by(profile.name, cca)
