"""Packaging via classic setup.py.

Deliberately *not* PEP 517/pyproject-based: this repository must install
with ``pip install -e .`` on fully offline machines, where pip's build
isolation cannot download setuptools/wheel.  Without a pyproject.toml pip
takes the legacy ``setup.py develop`` path, which has no such requirement.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Containing the Cambrian Explosion in QUIC "
        "Congestion Control' (IMC 2023): a conformance-testing framework "
        "for QUIC congestion-control implementations."
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["quicbench = repro.cli:main"]},
    keywords="quic congestion-control measurement conformance simulation",
)
