#!/usr/bin/env python3
"""Fairness screening: will a new CCA implementation play nicely?

The scenario from the paper's §4.3: even an implementation with decent
conformance can be unfair, so before deploying a QUIC stack you screen it
against the implementations it will share bottlenecks with.

This example screens three CUBIC implementations (a conformant one, the
aggressive quiche variant and its fixed version) against kernel CUBIC and
kernel BBR, and prints a verdict per pairing.

Run:  python examples/fairness_screening.py
"""

from repro import ExperimentConfig, Impl, bandwidth_share, scenarios
from repro.harness import reporting

CANDIDATES = [
    Impl("quicgo", "cubic"),
    Impl("quiche", "cubic"),
    Impl("quiche", "cubic", "fixed"),
]
INCUMBENTS = [Impl("linux", "cubic"), Impl("linux", "bbr")]


def verdict(share: float) -> str:
    if share > 0.65:
        return "AGGRESSIVE (starves incumbent)"
    if share < 0.35:
        return "weak (starved by incumbent)"
    return "fair"


def main() -> None:
    condition = scenarios.fairness_condition()  # 20 Mbps, 50 ms, 1 BDP
    config = ExperimentConfig(duration_s=40.0, trials=2)

    rows = []
    for candidate in CANDIDATES:
        for incumbent in INCUMBENTS:
            print(f"running {candidate} vs {incumbent}...")
            share = bandwidth_share(candidate, incumbent, condition, config)
            rows.append([str(candidate), str(incumbent), round(share, 2), verdict(share)])

    print()
    print(reporting.format_table(
        ["candidate", "incumbent", "share", "verdict"],
        rows,
        title=f"Bandwidth-share screening at {condition.describe()} "
        "(share > 0.5 = candidate wins)",
    ))
    print()
    print("Note how disabling quiche's RFC8312bis rollback (the 'fixed'")
    print("variant, paper Table 4) moves it from AGGRESSIVE back to fair.")


if __name__ == "__main__":
    main()
