#!/usr/bin/env python3
"""Fleet smoke test: sharded warehouse + rolling upgrade, verified.

The self-healing fabric across real process boundaries (CI's
fabric-smoke flow, extended to the fleet machinery):

1. boot ``repro fabric serve --shards 3`` on a free port — the
   warehouse is a directory of shard files, trials hash-routed across
   them with runs/queue state on the meta shard,
2. boot two ``repro fabric worker --version v1`` subprocesses,
3. submit three conformance campaigns and, while they are in flight,
   roll the fleet to version v2 with
   :meth:`repro.fabric.supervisor.FleetSupervisor.roll` — each v1
   worker finishes its lease, deregisters and exits 0; its v2
   replacement is heartbeating before the old one is ever drained,
4. assert every campaign completed with a single lease attempt
   (nothing lost, nothing doubled by the upgrade),
5. diff the sharded store byte-for-byte against the same campaigns run
   through the single-process scheduler into a single-file warehouse,
6. drain the v2 fleet and SIGTERM the coordinator -> clean exits.

Run:  python examples/fleet_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.fabric.queue import WorkQueue  # noqa: E402
from repro.fabric.supervisor import FleetSupervisor  # noqa: E402
from repro.harness.cache import CACHE_DIR_ENV  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.scheduler import (  # noqa: E402
    DONE,
    TERMINAL_STATES,
    Scheduler,
)
from repro.service.specs import parse_campaign_spec  # noqa: E402
from repro.store import open_store  # noqa: E402

SHARDS = 3


def specs():
    """Three small campaigns with distinct trial identities."""
    return [
        {
            "kind": "conformance",
            "stacks": ["quiche"],
            "ccas": ["cubic"],
            "duration_s": 3 + i,
            "trials": 1,
            "run": "fleet-smoke",
        }
        for i in range(3)
    ]


def wait_for_listening_line(proc, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"fabric serve exited early (code {proc.poll()})")
        print(f"  serve: {line.rstrip()}")
        if "listening on " in line:
            return line.split("listening on ", 1)[1].split()[0]
    raise SystemExit("fabric serve never printed its listening line")


def snapshots(path):
    """Every trial payload in a warehouse (flat or sharded), as bytes."""
    with open_store(path) as store:
        return {
            key: store.get_trial(key).tobytes()
            for key in store.trial_keys()
        }


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-fleet-smoke-"))
    root = workdir / "warehouse"

    def child_env(cache_name):
        return dict(
            os.environ,
            PYTHONPATH=str(ROOT / "src"),
            PYTHONUNBUFFERED="1",
            **{CACHE_DIR_ENV: str(workdir / cache_name)},
        )

    print(f"[1/6] booting repro fabric serve --shards {SHARDS} ({root}) ...")
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "fabric", "serve",
         "--db", str(root), "--shards", str(SHARDS),
         "--port", "0", "--lease-ttl", "10"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=child_env("serve-cache"),
        cwd=str(ROOT),
    )
    v1_workers = []
    v2_workers = []
    try:
        url = wait_for_listening_line(serve)
        client = ServiceClient(url)
        health = client.health()
        assert health["status"] == "ok", health
        assert health["shards"]["shards"] == SHARDS, health

        print("[2/6] booting two v1 fabric workers ...")
        for i in range(2):
            v1_workers.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "fabric", "worker",
                 "--url", url, "--store", str(root),
                 "--name", f"smoke-w{i}", "--version", "v1",
                 "--poll", "0.2", "--ttl", "10"],
                env=child_env(f"worker{i}-cache"),
                cwd=str(ROOT),
            ))

        print(f"[3/6] submitting {len(specs())} campaigns to {url} ...")
        campaigns = [client.submit(spec) for spec in specs()]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            registered = {w["name"] for w in client.fabric_workers()}
            if (
                {"smoke-w0", "smoke-w1"} <= registered
                and client.fabric_status()["leases"]
            ):
                break
            time.sleep(0.1)
        else:
            raise SystemExit("workers never registered and leased work")

        print("[3/6] rolling the fleet to v2 mid-campaign ...")

        def spawn(name, version):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "fabric", "worker",
                 "--url", url, "--store", str(root),
                 "--name", name, "--version", version,
                 "--poll", "0.2", "--ttl", "10"],
                env=child_env(f"{name}-cache"),
                cwd=str(ROOT),
            )
            print(f"  spawned {name} ({version})")
            return proc

        with WorkQueue(str(root)) as queue:
            supervisor = FleetSupervisor(queue, spawn=spawn)
            rolled = supervisor.roll("v2", timeout_s=120.0)
            v2_workers = list(supervisor.handles.values())
        assert sorted(rolled["replaced"]) == ["smoke-w0", "smoke-w1"], rolled
        print(f"  replaced {rolled['replaced']} with {rolled['spawned']}")
        for proc in v1_workers:
            code = proc.wait(timeout=60)
            assert code == 0, f"drained v1 worker exited {code}"
        print("  both v1 workers exited 0 after finishing their leases")

        print("[4/6] waiting for all campaigns to finish ...")
        for campaign in campaigns:
            final = client.wait(campaign["id"], timeout_s=300.0)
            assert final["state"] == "done", final
        workers = client.fabric_workers()
        versions = {w["name"]: w["version"] for w in workers
                    if w["state"] == "active"}
        assert set(versions.values()) == {"v2"}, versions
        with WorkQueue(str(root)) as queue:
            for campaign in campaigns:
                task = queue.task(campaign["id"])
                assert task.attempts == 1, (
                    f"{campaign['id']}: attempts={task.attempts} — the "
                    "roll turned a lease over"
                )
        print("  every campaign: done in exactly one lease attempt")

        print("[5/6] diffing against a single-shard single-process run ...")
        os.environ[CACHE_DIR_ENV] = str(workdir / "direct-cache")
        single = Scheduler(str(workdir / "direct.db"), workers=1)
        for spec in specs():
            job = single.submit(parse_campaign_spec(spec))
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if single.job(job.id).state in TERMINAL_STATES:
                    break
                time.sleep(0.1)
            assert single.job(job.id).state == DONE, single.job(job.id).state
        single.shutdown(drain=True)
        via_fleet = snapshots(root)
        direct = snapshots(workdir / "direct.db")
        assert via_fleet, "fleet run stored no trials"
        assert via_fleet == direct, \
            "sharded fleet trials diverge from the single-process path"
        with open_store(root) as store:
            report = store.run_report("fleet-smoke")
            assert report["partial"] is False, report
        print(f"  {len(via_fleet)} trial payloads bit-identical across "
              f"{SHARDS} shards")

        print("[6/6] draining the v2 fleet, SIGTERM coordinator ...")
        for name in sorted(versions):
            client.fabric_drain(name)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if not client.fabric_workers():
                break
            time.sleep(0.2)
        assert not client.fabric_workers(), client.fabric_workers()
        for proc in v2_workers:
            code = proc.wait(timeout=60)
            assert code == 0, f"drained v2 worker exited {code}"
        serve.send_signal(signal.SIGTERM)
        code = serve.wait(timeout=120)
        assert code == 0, f"fabric serve exited {code} on SIGTERM"
        print("fleet smoke: OK")
    finally:
        for proc in [serve] + v1_workers + v2_workers:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":
    main()
