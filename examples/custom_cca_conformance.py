#!/usr/bin/env python3
"""Testing a brand-new CCA implementation against the kernel reference.

The framework is not limited to the 11 stacks of the paper: any object
implementing :class:`repro.cca.base.CongestionController` can be measured.
This example defines "SluggishReno" — a Reno variant whose author halved
the additive increase "to be gentle" — and shows the conformance metrics
flagging it with a negative Δ-throughput.

It also demonstrates driving the simulator directly (building FlowSpecs
by hand) instead of going through the stack registry.

Run:  python examples/custom_cca_conformance.py
"""

from repro.cca import NewReno
from repro.core import evaluate_conformance, sample_points
from repro.harness import reporting, scenarios
from repro.netsim import FlowSpec, Network, SenderConfig
from repro.stacks import registry


def run_trial(test_factory, seed, condition, duration=60.0):
    """One trial: the candidate vs kernel Reno; returns the PE points."""
    test_spec = FlowSpec(
        label="candidate",
        cca_factory=test_factory,
        sender_config=SenderConfig(mss=1448, loss_style="quic"),
    )
    ref_spec = registry.reference().flow_spec("reno", label="kernel-reno")
    network = Network(
        condition.link_config(),
        [test_spec, ref_spec],
        seed=seed,
        base_jitter_s=condition.jitter_s(),
        start_spread_s=0.5,
    )
    results = network.run(duration)
    return sample_points(results[0].trace, base_rtt_s=condition.rtt_s)


def main() -> None:
    condition = scenarios.shallow_buffer()

    def sluggish_reno():
        # The "gentle" variant: half the additive increase.
        return NewReno(1448, ai_scale=0.5)

    def kernel_reno():
        return NewReno(1448)

    print("Running 3 trials of SluggishReno vs kernel Reno...")
    test_trials = [run_trial(sluggish_reno, seed, condition) for seed in (1, 2, 3)]
    print("Running 3 reference trials (kernel Reno vs itself)...")
    ref_trials = [run_trial(kernel_reno, seed, condition) for seed in (11, 12, 13)]

    result = evaluate_conformance(test_trials, ref_trials)
    rows = [[
        round(result.conformance, 2),
        round(result.conformance_t, 2),
        f"{result.delta_throughput_mbps:+.1f}",
        f"{result.delta_delay_ms:+.1f}",
    ]]
    print()
    print(reporting.format_table(
        ["Conf", "Conf-T", "d-tput (Mbps)", "d-delay (ms)"],
        rows,
        title="SluggishReno conformance to kernel Reno",
    ))
    print()
    if result.delta_throughput_mbps < -0.5:
        print("Δ-tput is negative: the candidate systematically underuses its")
        print("fair share — exactly what halving the additive increase does.")


if __name__ == "__main__":
    main()
