#!/usr/bin/env python3
"""Quickstart: measure one QUIC implementation's conformance.

Runs the paper's core experiment at reduced scale: Cloudflare quiche's
CUBIC against kernel CUBIC through a 20 Mbps / 10 ms / 1 BDP bottleneck,
builds the Performance Envelopes and prints the full metric set —
Conformance, Conformance-T and the (Δ-throughput, Δ-delay) hints.

Expected outcome (paper Table 3): quiche CUBIC is badly non-conformant
(its RFC8312bis rollback undoes congestion back-offs), Conformance-T is
much higher, and Δ-throughput is strongly positive.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, measure_conformance, scenarios
from repro.harness import reporting


def main() -> None:
    condition = scenarios.shallow_buffer()  # 20 Mbps, 10 ms RTT, 1 BDP
    config = ExperimentConfig(duration_s=60.0, trials=3)

    print(f"Measuring quiche/cubic at {condition.describe()} "
          f"({config.trials} trials x {config.duration_s:.0f} s)...")
    measurement = measure_conformance("quiche", "cubic", condition, config)
    result = measurement.result

    print()
    row = measurement.row()
    print(reporting.format_table(list(row.keys()), [list(row.values())]))
    print()
    print("Reading the hints (paper §3.3):")
    print(f"  Conformance   = {result.conformance:.2f}  -> "
          f"{'conformant' if result.conformance >= 0.5 else 'NON-conformant'}")
    print(f"  Conformance-T = {result.conformance_t:.2f}  -> "
          f"{'high: fixable by parameter tuning' if result.conformance_t > result.conformance + 0.15 else 'translation does not help much'}")
    dt, dd = result.delta_throughput_mbps, result.delta_delay_ms
    if dt > 1 and abs(dd) < 2:
        knob = "sending rate set too high (pacing-style overshoot)"
    elif dt > 1 and dd > 1:
        knob = "congestion window set too large (cwnd-style overshoot)"
    elif dt < -1:
        knob = "stack-level throughput deficit"
    else:
        knob = "no systematic offset"
    print(f"  Δ-tput={dt:+.1f} Mbps, Δ-delay={dd:+.1f} ms -> {knob}")

    print()
    print(reporting.format_envelope_ascii(
        result.test_envelope.hulls,
        result.test_envelope.all_points,
        title="quiche CUBIC Performance Envelope (delay->x, throughput->y)",
    ))
    print()
    print(reporting.format_envelope_ascii(
        result.reference_envelope.hulls,
        result.reference_envelope.all_points,
        title="kernel CUBIC reference envelope",
    ))


if __name__ == "__main__":
    main()
