#!/usr/bin/env python3
"""Beyond steady state: short flows and late-comers.

§6 of the paper asks how start times, flow durations and application-
level metrics change the fairness picture.  This example measures

1. flow completion times of web-object-sized transfers, alone and behind
   a long-running background flow, and
2. the share a late-starting flow converges to against an established
   one — with a conformant CUBIC vs the aggressive quiche variant.

Run:  python examples/short_flows.py
"""

from repro import ExperimentConfig, Impl, NetworkCondition
from repro.harness import reporting
from repro.harness.shortflows import fct_sweep, staggered_fairness

CONDITION = NetworkCondition(bandwidth_mbps=20, rtt_ms=20, buffer_bdp=1)
SIZES = [50_000, 500_000, 5_000_000]  # 50 kB page asset .. 5 MB download


def main() -> None:
    print("Flow completion times (kernel CUBIC), alone vs contended...")
    alone = fct_sweep(Impl("linux", "cubic"), SIZES, CONDITION)
    contended = fct_sweep(
        Impl("linux", "cubic"), SIZES, CONDITION, competing=Impl("linux", "cubic")
    )
    rows = []
    for size, a, c in zip(SIZES, alone, contended):
        rows.append(
            [
                f"{size//1000} kB",
                f"{a.fct_s:.2f}" if a.completed else "-",
                f"{c.fct_s:.2f}" if c.completed else "-",
            ]
        )
    print(reporting.format_table(
        ["transfer", "FCT alone (s)", "FCT contended (s)"],
        rows,
        title="Completion times at 20 Mbps / 20 ms / 1 BDP",
    ))

    print("\nLate-comer fairness (flow starts 5 s after an established kernel CUBIC)...")
    cfg = ExperimentConfig(duration_s=40.0, trials=2)
    rows = []
    for late in (Impl("quicgo", "cubic"), Impl("quiche", "cubic")):
        share = staggered_fairness(Impl("linux", "cubic"), late, CONDITION, cfg)
        rows.append([str(late), round(share, 2)])
    print(reporting.format_table(
        ["late flow", "share over overlap"],
        rows,
        title="Late-comer share (0.5 = converges to fair)",
    ))
    print("\nThe aggressive quiche variant grabs more than its share even as")
    print("a late-comer — low conformance hurts whoever was there first.")


if __name__ == "__main__":
    main()
