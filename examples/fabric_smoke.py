#!/usr/bin/env python3
"""Fabric smoke test: coordinator + two worker processes, verified.

The distributed campaign fabric across real process boundaries (CI runs
this):

1. boot ``repro fabric serve`` (async front door) on a free port,
2. boot two ``repro fabric worker`` subprocesses against it, each with
   its own private simulation cache,
3. submit a conformance campaign through :class:`ServiceClient` and
   stream its progress events live,
4. assert the warehouse contents are bit-identical to the same campaign
   run through the single-process :class:`Scheduler`,
5. resubmit the identical spec and assert it is fully cache-served —
   the rerun adds zero trial rows,
6. SIGTERM the workers and the coordinator and require clean exits.

Run:  python examples/fabric_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.harness.cache import CACHE_DIR_ENV  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.scheduler import (  # noqa: E402
    DONE,
    TERMINAL_STATES,
    Scheduler,
)
from repro.service.specs import parse_campaign_spec  # noqa: E402
from repro.store import ResultStore  # noqa: E402

SPEC = {
    "kind": "conformance",
    "stacks": ["quiche", "xquic"],
    "ccas": ["cubic"],
    "duration_s": 4,
    "trials": 2,
    "run": "fabric-smoke",
}


def wait_for_listening_line(proc, timeout_s=60.0):
    """Parse the coordinator URL from the serve subprocess's stdout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"fabric serve exited early (code {proc.poll()})"
            )
        print(f"  serve: {line.rstrip()}")
        if "listening on " in line:
            return line.split("listening on ", 1)[1].split()[0]
    raise SystemExit("fabric serve never printed its listening line")


def snapshots(path):
    """Every trial payload in a warehouse, as raw comparable bytes."""
    with ResultStore(str(path)) as store:
        return {
            key: store.get_trial(key).tobytes()
            for key in store.trial_keys()
        }


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-fabric-smoke-"))
    db = workdir / "store.db"

    def child_env(cache_name):
        return dict(
            os.environ,
            PYTHONPATH=str(ROOT / "src"),
            PYTHONUNBUFFERED="1",
            **{CACHE_DIR_ENV: str(workdir / cache_name)},
        )

    print(f"[1/6] booting repro fabric serve (store: {db}) ...")
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "fabric", "serve",
         "--db", str(db), "--port", "0", "--lease-ttl", "10"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=child_env("serve-cache"),
        cwd=str(ROOT),
    )
    workers = []
    try:
        url = wait_for_listening_line(serve)
        client = ServiceClient(url)
        assert client.health()["status"] == "ok"

        print("[2/6] booting two fabric workers ...")
        for i in range(2):
            workers.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "fabric", "worker",
                 "--url", url, "--store", str(db),
                 "--name", f"smoke-w{i}", "--poll", "0.2", "--ttl", "10"],
                env=child_env(f"worker{i}-cache"),
                cwd=str(ROOT),
            ))

        print(f"[3/6] submitting a conformance campaign to {url} ...")
        campaign = client.submit(SPEC)
        for event in client.stream(campaign["id"]):
            if event["event"] == "trial":
                print(f"  [{event['done']}/{event['total']}] "
                      f"{event['label']}: {event['status']}")
            elif event["event"] == "state":
                print(f"  state -> {event['state']}")
        final = client.status(campaign["id"])
        assert final["state"] == "done", final
        status = client.fabric_status()
        assert status["states"].get("done") == 1, status

        print("[4/6] comparing against a single-process scheduler run ...")
        os.environ[CACHE_DIR_ENV] = str(workdir / "direct-cache")
        single = Scheduler(str(workdir / "direct.db"), workers=1)
        job = single.submit(parse_campaign_spec(SPEC))
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if single.job(job.id).state in TERMINAL_STATES:
                break
            time.sleep(0.1)
        assert single.job(job.id).state == DONE, single.job(job.id).state
        single.shutdown(drain=True)
        via_fabric = snapshots(db)
        direct = snapshots(workdir / "direct.db")
        assert via_fabric, "fabric run stored no trials"
        assert via_fabric == direct, \
            "fabric trials diverge from the single-process path"
        print(f"  {len(via_fabric)} trial payloads bit-identical")

        print("[5/6] resubmitting the identical spec (cache-served) ...")
        rerun = client.submit(SPEC)
        assert rerun["id"] != campaign["id"]
        assert client.wait(rerun["id"], timeout_s=300.0)["state"] == "done"
        assert snapshots(db) == via_fabric, \
            "identical resubmission added trial rows"
        print("  rerun added zero trial rows")

        print("[6/6] SIGTERM workers and coordinator -> clean exits ...")
        for proc in workers:
            proc.send_signal(signal.SIGTERM)
        for proc in workers:
            code = proc.wait(timeout=60)
            assert code == 0, f"worker exited {code} on SIGTERM"
        serve.send_signal(signal.SIGTERM)
        code = serve.wait(timeout=120)
        assert code == 0, f"fabric serve exited {code} on SIGTERM"
        print("fabric smoke: OK")
    finally:
        for proc in [serve] + workers:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":
    main()
