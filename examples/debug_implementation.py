#!/usr/bin/env python3
"""Root-causing a non-conformant implementation with Conformance-T.

Walks the paper's §5 debugging workflow on xquic BBR:

1. measure conformance -> low;
2. notice Conformance-T is much higher -> the envelope is translated, so
   a parameter is mistuned rather than the algorithm being wrong;
3. read the translation vector -> positive Δ-throughput with small
   Δ-delay points at an aggressiveness knob;
4. try the candidate fix (cwnd gain 2.5 -> 2.0) and re-measure.

Run:  python examples/debug_implementation.py
"""

from repro import ExperimentConfig, measure_conformance, scenarios
from repro.harness import reporting

STACK, CCA = "xquic", "bbr"


def show(title, measurement):
    result = measurement.result
    print(f"{title}")
    print(f"  Conformance   = {result.conformance:.2f}")
    print(f"  Conformance-T = {result.conformance_t:.2f}")
    print(f"  Δ-tput = {result.delta_throughput_mbps:+.1f} Mbps, "
          f"Δ-delay = {result.delta_delay_ms:+.1f} ms")
    print()


def main() -> None:
    condition = scenarios.shallow_buffer()
    config = ExperimentConfig(duration_s=80.0, trials=3)

    print(f"Step 1-3: measure {STACK}/{CCA} as shipped...")
    before = measure_conformance(STACK, CCA, condition, config)
    show("shipped implementation:", before)

    if before.result.conformance_t > before.result.conformance + 0.1:
        print("Conformance-T >> Conformance: the envelope is a translated")
        print("copy of the reference -> suspect a mistuned parameter.")
    if before.result.delta_throughput_mbps > 1:
        print("Δ-tput positive -> the implementation is too aggressive;")
        print("for BBR the usual suspects are pacing gain and cwnd gain.")
    print()

    print("Step 4: apply the paper's fix (cwnd gain 2.5 -> 2.0) and re-measure...")
    after = measure_conformance(STACK, CCA, condition, config, variant="fixed")
    show("fixed implementation:", after)

    rows = [
        ["shipped", round(before.conformance, 2), round(before.conformance_t, 2)],
        ["fixed", round(after.conformance, 2), round(after.conformance_t, 2)],
    ]
    print(reporting.format_table(
        ["variant", "Conf", "Conf-T"], rows,
        title="paper Table 4 row: xquic BBR (cwnd gain reduced from 2.5 to 2)",
    ))
    improved = after.conformance > before.conformance
    print(f"\nfix {'IMPROVED' if improved else 'did not improve'} conformance, "
          "matching the paper's Fig 14.")


if __name__ == "__main__":
    main()
