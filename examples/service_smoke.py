#!/usr/bin/env python3
"""Service smoke test: boot ``repro serve``, drive it over HTTP, verify.

The full campaign-service loop as a process boundary test (CI runs this):

1. start ``repro serve`` as a subprocess on a free port,
2. submit a tiny two-stack campaign through :class:`ServiceClient`,
3. stream its progress events live,
4. fetch the stored metrics and assert they are bit-identical to the
   same campaign run directly through :func:`run_matrix`,
5. SIGTERM the service and assert a clean (exit 0) graceful drain.

Run:  python examples/service_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.harness.cache import CACHE_DIR_ENV, ResultCache  # noqa: E402
from repro.harness.matrix import run_matrix  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.specs import parse_campaign_spec  # noqa: E402
from repro.store import ResultStore  # noqa: E402

SPEC = {
    "kind": "matrix",
    "stacks": ["quiche", "xquic"],
    "ccas": ["cubic"],
    "conditions": [{"bandwidth_mbps": 8, "rtt_ms": 20, "buffer_bdp": 0.6}],
    "duration_s": 4,
    "trials": 2,
    "run": "smoke",
}


def wait_for_listening_line(proc, timeout_s=60.0):
    """Parse the service URL from the serve subprocess's stdout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"serve exited early (code {proc.poll()}) before listening"
            )
        print(f"  serve: {line.rstrip()}")
        if "listening on " in line:
            return line.split("listening on ", 1)[1].split()[0]
    raise SystemExit("serve never printed its listening line")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    db = workdir / "store.db"
    env = dict(
        os.environ,
        PYTHONPATH=str(ROOT / "src"),
        PYTHONUNBUFFERED="1",
        **{CACHE_DIR_ENV: str(workdir / "serve-cache")},
    )

    print(f"[1/5] booting repro serve (store: {db}) ...")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", str(db),
         "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    try:
        url = wait_for_listening_line(proc)
        client = ServiceClient(url)
        health = client.health()
        assert health["status"] == "ok", health

        print(f"[2/5] submitting a 2-stack campaign to {url} ...")
        campaign = client.submit(SPEC)

        print("[3/5] streaming progress events ...")
        for event in client.stream(campaign["id"]):
            if event["event"] == "trial":
                print(f"  [{event['done']}/{event['total']}] "
                      f"{event['label']}: {event['status']}")
            elif event["event"] == "state":
                print(f"  state -> {event['state']}")
        final = client.status(campaign["id"])
        assert final["state"] == "done", final

        print("[4/5] comparing service metrics against a direct run_matrix ...")
        rows = client.metrics("smoke")
        via_service = {
            (r["stack"], r["cca"], r["variant"], r["condition"], r["metric"]):
                r["value"]
            for r in rows
        }
        spec = parse_campaign_spec(SPEC)
        with ResultStore(str(workdir / "direct.db")) as direct_store:
            run_matrix(
                conditions=spec.resolved_conditions(),
                implementations=spec.implementations(),
                config=spec.experiment_config(),
                cache=ResultCache(directory=workdir / "direct-cache"),
                store=direct_store,
                store_run="direct",
            )
            direct = {
                (r.stack, r.cca, r.variant, r.condition, r.metric): r.value
                for r in direct_store.query(run="direct")
            }
        assert via_service, "service returned no metric rows"
        assert via_service == direct, "service metrics diverge from direct run"
        print(f"  {len(via_service)} metric values bit-identical")

        print("[5/5] SIGTERM -> graceful drain ...")
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
        assert code == 0, f"serve exited {code} on SIGTERM"
        print("service smoke: OK")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    main()
