#!/usr/bin/env python3
"""Choosing a CCA for an application with Performance Envelopes.

Implements the paper's §6 idea ("Extending the Performance Envelope to
other applications"): an application declares the delay/throughput region
it wants to live in; the framework measures each candidate CCA's envelope
on the target network and ranks the candidates by overlap.

Two applications are profiled here:
* a live-streaming app with a tight delay budget, and
* a bulk-download app that only cares about throughput.

Expected outcome: BBR (which keeps queues short) wins the streaming
profile; CUBIC (the buffer-filler) wins bulk transfer in this deep-ish
buffer.

Run:  python examples/application_cca_selection.py
"""

from repro import ExperimentConfig, NetworkCondition
from repro.core import (
    build_envelope,
    bulk_transfer_region,
    live_streaming_region,
    select_cca,
)
from repro.harness import reporting
from repro.harness.conformance import reference_trials


def main() -> None:
    # The app's target network: a 20 Mbps access link with a deep buffer.
    condition = NetworkCondition(bandwidth_mbps=20, rtt_ms=20, buffer_bdp=3)
    config = ExperimentConfig(duration_s=60.0, trials=3)

    print(f"Profiling kernel CCAs at {condition.describe()}...")
    candidates = {}
    for cca in ("cubic", "bbr", "reno"):
        trials = reference_trials(cca, condition, config)
        candidates[cca] = build_envelope(trials)
        pts = candidates[cca].all_points
        print(f"  {cca:5s}: delay {pts[:,0].mean():5.1f} ms, "
              f"throughput {pts[:,1].mean():5.1f} Mbps over {len(pts)} samples")

    applications = {
        "live streaming (delay <= 45 ms, rate >= 4 Mbps)": live_streaming_region(
            rtt_budget_ms=45, min_rate_mbps=4
        ),
        "bulk download (rate >= 9 Mbps)": bulk_transfer_region(min_rate_mbps=9),
    }

    for name, region in applications.items():
        scores = select_cca(region, candidates)
        rows = [
            [s.name, round(s.point_fraction, 2), round(s.area_fraction, 2)]
            for s in scores
        ]
        print()
        print(reporting.format_table(
            ["CCA", "points in region", "area in region"],
            rows,
            title=f"Ranking for: {name}",
        ))
        print(f"-> recommended: {scores[0].name}")


if __name__ == "__main__":
    main()
