# Convenience targets for the reproduction workflow.

.PHONY: install test bench quick-bench clean-cache loc

install:
	pip install -e .

test:
	pytest tests/

# Regenerates every table/figure; first run simulates (~25 min), later
# runs replay from benchmarks/.quicbench_cache.
bench:
	pytest benchmarks/ --benchmark-only

quick-bench:
	pytest benchmarks/test_bench_stack_tables.py benchmarks/test_bench_fig01_clustered_pe.py --benchmark-only

clean-cache:
	rm -rf benchmarks/.quicbench_cache benchmarks/output

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
