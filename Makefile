# Convenience targets for the reproduction workflow.

# Worker processes for the experiment executor (repro.exec); results are
# numerically identical at any job count.  e.g. `make bench JOBS=4`.
JOBS ?= 1

.PHONY: install test lint lint-graph bench quick-bench store-smoke service-smoke topo-smoke cca-smoke fabric-smoke fleet-smoke chaos clean-cache loc

install:
	pip install -e .

test:
	pytest tests/

# Determinism/concurrency/contract static analysis (the CI gate):
# per-file rule packs plus the whole-program pass (lock-order cycles,
# held-lock blocking chains, determinism taint).  Warm runs replay
# per-file summaries from .lint-cache.json and finish in well under a
# second; `repro lint --no-cache` forces a cold run.
lint:
	PYTHONPATH=src python -m repro lint --stats

# Whole-program graph dumps (imports / calls / locks), e.g. the
# interprocedural lock-order graph with its witness chains.
lint-graph:
	PYTHONPATH=src python -m repro lint --dump-graph locks

# Regenerates every table/figure; first run simulates (~25 min), later
# runs replay from benchmarks/.quicbench_cache.
bench:
	QUICBENCH_JOBS=$(JOBS) pytest benchmarks/ --benchmark-only

quick-bench:
	QUICBENCH_JOBS=$(JOBS) pytest benchmarks/test_bench_stack_tables.py benchmarks/test_bench_fig01_clustered_pe.py --benchmark-only

# Tiny end-to-end warehouse exercise: campaign -> query -> diff (the
# same flow CI runs).
store-smoke:
	PYTHONPATH=src python -m repro regression --stack xquic --cca cubic \
	  --duration 6 --trials 2 --jobs 2 --store /tmp/quicbench-smoke.db
	PYTHONPATH=src python -m repro store runs --db /tmp/quicbench-smoke.db
	PYTHONPATH=src python -m repro store diff --db /tmp/quicbench-smoke.db \
	  --run-a "regression:5.13-stock" --run-b "regression:pre-hystart"

# Campaign-service exercise over a real process boundary: boot `repro
# serve`, submit over HTTP, stream events, verify bit-identical metrics,
# SIGTERM (the same flow CI runs).
service-smoke:
	python examples/service_smoke.py

# Fairness matrix over every built-in topology shape: validates the
# specs, runs the campaign through the executor, and stores per-flow
# shares + Jain's index (the same flow CI's topo-smoke job runs).
topo-smoke:
	PYTHONPATH=src python -m repro topo matrix --ccas cubic \
	  --duration 3 --trials 1 --jobs 2 --store /tmp/quicbench-topo.db
	PYTHONPATH=src python -m repro store runs --db /tmp/quicbench-topo.db

# Reference-free peer-conformance smoke over the registry's built-in
# peer group (one model-based, one loss-based, one real-time CCA): runs
# the matrix campaign through the executor and checks the pairwise +
# aggregate rows landed in the warehouse (the same flow CI's cca-smoke
# job runs).
cca-smoke:
	PYTHONPATH=src python -m repro cca peer-matrix --peers bbr3 cubic gcc \
	  --duration 4 --trials 1 --jobs 2 \
	  --store /tmp/quicbench-cca.db --run cca-smoke
	PYTHONPATH=src python -m repro store query --db /tmp/quicbench-cca.db \
	  --metric peer_score --format csv

# Distributed fabric exercise over real process boundaries: boot the
# coordinator and two worker processes, run a campaign, assert the
# warehouse is bit-identical to the single-process scheduler and that an
# identical resubmission is fully cache-served (the same flow CI's
# fabric-smoke job runs).
fabric-smoke:
	python examples/fabric_smoke.py

# Self-healing fleet exercise: a sharded warehouse (3 shards) behind the
# coordinator, two v1 workers, a rolling upgrade to v2 mid-campaign, and
# a byte-for-byte diff of the sharded store against a single-shard
# single-process run.
fleet-smoke:
	python examples/fleet_smoke.py

# Deterministic fault injection against a real campaign: every trial
# must land bit-identical to the fault-free baseline or fail typed and
# resumable (the same invariant CI's chaos-smoke job asserts).
chaos:
	PYTHONPATH=src python -m repro chaos --matrix smoke

clean-cache:
	rm -rf benchmarks/.quicbench_cache benchmarks/output

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
