# Convenience targets for the reproduction workflow.

# Worker processes for the experiment executor (repro.exec); results are
# numerically identical at any job count.  e.g. `make bench JOBS=4`.
JOBS ?= 1

.PHONY: install test bench quick-bench clean-cache loc

install:
	pip install -e .

test:
	pytest tests/

# Regenerates every table/figure; first run simulates (~25 min), later
# runs replay from benchmarks/.quicbench_cache.
bench:
	QUICBENCH_JOBS=$(JOBS) pytest benchmarks/ --benchmark-only

quick-bench:
	QUICBENCH_JOBS=$(JOBS) pytest benchmarks/test_bench_stack_tables.py benchmarks/test_bench_fig01_clustered_pe.py --benchmark-only

clean-cache:
	rm -rf benchmarks/.quicbench_cache benchmarks/output

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
