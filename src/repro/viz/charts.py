"""Chart builders on top of :class:`~repro.viz.svg.SvgCanvas`.

Three figure types cover every plot in the paper:

* :func:`envelope_figure` — delay/throughput scatter with convex-hull
  outlines for one or two Performance Envelopes (Figs 1-3, 7-10, 14-15);
* :func:`heatmap_figure` — labelled matrix with a sequential or
  diverging color ramp (Figs 6, 11, 12, 13);
* :func:`line_figure` — one or more (x, y) series with axes and a
  legend (Figs 4, 5, and cwnd time series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.envelope import PerformanceEnvelope
from repro.viz.svg import PALETTE, SvgCanvas, diverging_color, sequential_color

MARGIN_LEFT = 64.0
MARGIN_RIGHT = 20.0
MARGIN_TOP = 36.0
MARGIN_BOTTOM = 52.0


@dataclass
class _Axes:
    """Data-space to pixel-space transform for one plot area."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    width: float
    height: float

    def x(self, value: float) -> float:
        span = max(self.x_max - self.x_min, 1e-12)
        return MARGIN_LEFT + (value - self.x_min) / span * (
            self.width - MARGIN_LEFT - MARGIN_RIGHT
        )

    def y(self, value: float) -> float:
        span = max(self.y_max - self.y_min, 1e-12)
        return self.height - MARGIN_BOTTOM - (value - self.y_min) / span * (
            self.height - MARGIN_TOP - MARGIN_BOTTOM
        )


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / count
    magnitude = 10 ** np.floor(np.log10(raw))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if step >= raw:
            break
    start = np.ceil(lo / step) * step
    ticks = []
    tick = start
    while tick <= hi + 1e-9:
        ticks.append(round(float(tick), 10))
        tick += step
    return ticks


def _draw_axes(
    canvas: SvgCanvas,
    axes: _Axes,
    title: str,
    x_label: str,
    y_label: str,
) -> None:
    x0, y0 = MARGIN_LEFT, canvas.height - MARGIN_BOTTOM
    x1, y1 = canvas.width - MARGIN_RIGHT, MARGIN_TOP
    canvas.line(x0, y0, x1, y0)
    canvas.line(x0, y0, x0, y1)
    for tick in _nice_ticks(axes.x_min, axes.x_max):
        px = axes.x(tick)
        canvas.line(px, y0, px, y0 + 4)
        canvas.text(px, y0 + 18, f"{tick:g}", size=10, anchor="middle")
    for tick in _nice_ticks(axes.y_min, axes.y_max):
        py = axes.y(tick)
        canvas.line(x0 - 4, py, x0, py)
        canvas.text(x0 - 8, py + 3, f"{tick:g}", size=10, anchor="end")
    canvas.text(canvas.width / 2, canvas.height - 14, x_label, size=12, anchor="middle")
    canvas.text(16, canvas.height / 2, y_label, size=12, anchor="middle", rotate=-90)
    if title:
        canvas.text(canvas.width / 2, 20, title, size=13, anchor="middle")


def envelope_figure(
    envelopes: Dict[str, PerformanceEnvelope],
    title: str = "",
    width: float = 520.0,
    height: float = 380.0,
) -> SvgCanvas:
    """Scatter + hull outlines for one or more envelopes.

    Axes follow the paper: delay (ms) on x, throughput (Mbps) on y.
    """
    if not envelopes:
        raise ValueError("no envelopes to draw")
    all_points = np.vstack([pe.all_points for pe in envelopes.values()])
    pad = 0.06 * (all_points.max(axis=0) - all_points.min(axis=0) + 1e-9)
    lo = all_points.min(axis=0) - pad
    hi = all_points.max(axis=0) + pad
    axes = _Axes(lo[0], hi[0], lo[1], hi[1], width, height)
    canvas = SvgCanvas(width, height)
    _draw_axes(canvas, axes, title, "delay (ms)", "throughput (Mbps)")

    legend_y = MARGIN_TOP + 6
    for i, (name, pe) in enumerate(envelopes.items()):
        color = PALETTE[i % len(PALETTE)]
        for point in pe.all_points:
            canvas.circle(axes.x(point[0]), axes.y(point[1]), 1.8, fill=color, opacity=0.45)
        for hull in pe.hulls:
            canvas.polygon(
                [(axes.x(x), axes.y(y)) for x, y in hull],
                fill=color,
                stroke=color,
                stroke_width=1.5,
                opacity=0.12,
            )
        canvas.circle(width - 150, legend_y + 16 * i, 4, fill=color)
        canvas.text(width - 140, legend_y + 16 * i + 4, name, size=11)
    return canvas


def heatmap_figure(
    rows: Sequence[str],
    cols: Sequence[str],
    values: np.ndarray,
    title: str = "",
    diverging: bool = False,
    cell: float = 44.0,
    fmt: str = "{:.2f}",
) -> SvgCanvas:
    """Matrix heatmap with value annotations (NaN cells left blank)."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(rows), len(cols)):
        raise ValueError("values shape must match labels")
    label_w = 10 + 7 * max((len(r) for r in rows), default=4)
    width = label_w + cell * len(cols) + 24
    height = MARGIN_TOP + cell * len(rows) + 70
    canvas = SvgCanvas(width, height)
    if title:
        canvas.text(width / 2, 20, title, size=13, anchor="middle")
    color_fn = diverging_color if diverging else sequential_color
    for i, row in enumerate(rows):
        y = MARGIN_TOP + i * cell
        canvas.text(label_w - 6, y + cell / 2 + 4, row, size=10, anchor="end")
        for j in range(len(cols)):
            x = label_w + j * cell
            v = values[i, j]
            if np.isnan(v):
                canvas.rect(x, y, cell, cell, fill="#f4f4f4", stroke="#ddd")
                continue
            fill = color_fn(v)
            canvas.rect(x, y, cell, cell, fill=fill, stroke="#ffffff")
            luminance = 1.0 - abs(v - 0.5) if diverging else v
            text_fill = "#ffffff" if luminance > 0.55 else "#222222"
            canvas.text(
                x + cell / 2, y + cell / 2 + 4, fmt.format(v), size=10,
                anchor="middle", fill=text_fill,
            )
    for j, col in enumerate(cols):
        x = label_w + j * cell + cell / 2
        canvas.text(x, MARGIN_TOP + cell * len(rows) + 16, col, size=10,
                    anchor="middle", rotate=-35)
    return canvas


def line_figure(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: float = 520.0,
    height: float = 340.0,
    y_range: Optional[Tuple[float, float]] = None,
) -> SvgCanvas:
    """One or more line series with markers and a legend."""
    if not series:
        raise ValueError("no series to draw")
    all_xy = np.array([p for pts in series.values() for p in pts], dtype=float)
    if all_xy.size == 0:
        raise ValueError("series are empty")
    lo = all_xy.min(axis=0)
    hi = all_xy.max(axis=0)
    if y_range is not None:
        lo[1], hi[1] = y_range
    pad_x = 0.04 * (hi[0] - lo[0] + 1e-9)
    pad_y = 0.06 * (hi[1] - lo[1] + 1e-9)
    axes = _Axes(lo[0] - pad_x, hi[0] + pad_x, lo[1] - pad_y, hi[1] + pad_y, width, height)
    canvas = SvgCanvas(width, height)
    _draw_axes(canvas, axes, title, x_label, y_label)
    legend_y = MARGIN_TOP + 6
    for i, (name, pts) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        pixel_pts = [(axes.x(x), axes.y(y)) for x, y in pts]
        canvas.polyline(pixel_pts, stroke=color, stroke_width=2.0)
        for px, py in pixel_pts:
            canvas.circle(px, py, 2.5, fill=color)
        canvas.line(width - 160, legend_y + 16 * i, width - 142, legend_y + 16 * i,
                    stroke=color, stroke_width=2.0)
        canvas.text(width - 136, legend_y + 16 * i + 4, name, size=11)
    return canvas


def save_figure(canvas: SvgCanvas, path: str) -> None:
    """Write a figure to disk (directories must exist)."""
    canvas.save(path)
