"""Figures straight from the results warehouse.

Rendering a stored run closes the loop the ROADMAP's longitudinal
workflow needs: measure once (``--store``), then re-render heatmaps for
any past run — or for a metric other than the one originally printed —
without touching the simulator.

The pivot is deliberately simple: rows are stacks, columns are CCAs
(suffixed with the network condition when a run spans several), and the
cell value is the requested metric.  Missing cells render as NaN
(blank), matching :func:`repro.viz.charts.heatmap_figure` semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.viz.charts import heatmap_figure
from repro.viz.svg import SvgCanvas

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import ResultStore


def stored_heatmap_matrix(
    store: "ResultStore", run, metric: str = "conf"
) -> Tuple[List[str], List[str], np.ndarray]:
    """Pivot one run's metric into (row labels, col labels, values)."""
    table = store.metric_table(run, metric)
    if not table:
        raise ValueError(f"run {run!r} holds no {metric!r} metrics")
    conditions = sorted({cond for (_s, _c, _v, cond) in table})
    multi_condition = len(conditions) > 1
    rows = sorted({stack for (stack, _c, _v, _cond) in table})
    cols: List[str] = []
    col_keys: List[Tuple[str, str]] = []
    for cca in sorted({cca for (_s, cca, _v, _cond) in table}):
        for cond in conditions:
            if any(c == cca and cd == cond for (_s, c, _v, cd) in table):
                col_keys.append((cca, cond))
                cols.append(f"{cca}@{cond}" if multi_condition else cca)
    values = np.full((len(rows), len(cols)), np.nan)
    for (stack, cca, variant, cond), value in table.items():
        if variant != "default":
            continue  # variants are queryable but would double-book cells
        i = rows.index(stack)
        j = col_keys.index((cca, cond))
        values[i, j] = value
    return rows, cols, values


def stored_heatmap_figure(
    store: "ResultStore",
    run,
    metric: str = "conf",
    title: Optional[str] = None,
) -> SvgCanvas:
    """Render one stored run as an SVG heatmap (Fig. 6 style)."""
    rows, cols, values = stored_heatmap_matrix(store, run, metric)
    run_name = store.run(run).name
    return heatmap_figure(
        rows,
        cols,
        values,
        title=title or f"{metric} — run {run_name}",
    )


__all__ = ["stored_heatmap_matrix", "stored_heatmap_figure"]
