"""Figures straight from the results warehouse.

Rendering a stored run closes the loop the ROADMAP's longitudinal
workflow needs: measure once (``--store``), then re-render heatmaps for
any past run — or for a metric other than the one originally printed —
without touching the simulator.

The pivot is deliberately simple: rows are stacks, columns are CCAs
(suffixed with the network condition when a run spans several), and the
cell value is the requested metric.  Missing cells render as NaN
(blank), matching :func:`repro.viz.charts.heatmap_figure` semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.viz.charts import heatmap_figure
from repro.viz.svg import SvgCanvas

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import ResultStore


def stored_heatmap_matrix(
    store: "ResultStore", run, metric: str = "conf"
) -> Tuple[List[str], List[str], np.ndarray]:
    """Pivot one run's metric into (row labels, col labels, values)."""
    table = store.metric_table(run, metric)
    if not table:
        raise ValueError(f"run {run!r} holds no {metric!r} metrics")
    conditions = sorted({cond for (_s, _c, _v, cond) in table})
    multi_condition = len(conditions) > 1
    rows = sorted({stack for (stack, _c, _v, _cond) in table})
    cols: List[str] = []
    col_keys: List[Tuple[str, str]] = []
    for cca in sorted({cca for (_s, cca, _v, _cond) in table}):
        for cond in conditions:
            if any(c == cca and cd == cond for (_s, c, _v, cd) in table):
                col_keys.append((cca, cond))
                cols.append(f"{cca}@{cond}" if multi_condition else cca)
    values = np.full((len(rows), len(cols)), np.nan)
    for (stack, cca, variant, cond), value in table.items():
        if variant != "default":
            continue  # variants are queryable but would double-book cells
        i = rows.index(stack)
        j = col_keys.index((cca, cond))
        values[i, j] = value
    return rows, cols, values


def stored_peer_matrix(
    store: "ResultStore", run, metric: str = "peer_conf"
) -> Tuple[List[str], List[str], np.ndarray]:
    """Pivot one run's peer-conformance rows into a square matrix.

    Peer campaigns record pairwise cells under ``variant="peer"`` with
    the row peer in the ``stack`` column and the column peer in ``cca``
    (the share-matrix convention).  The diagonal is reconstructed —
    1 for conformance, 0 for distance — since self-pairs are not
    stored.  Multi-condition runs get one column block per condition.
    """
    table = store.metric_table(run, metric)
    cells = {
        (stack, cca, cond): value
        for (stack, cca, variant, cond), value in table.items()
        if variant == "peer"
    }
    if not cells:
        raise ValueError(f"run {run!r} holds no peer-matrix {metric!r} rows")
    conditions = sorted({cond for (_s, _c, cond) in cells})
    multi_condition = len(conditions) > 1
    peers = sorted(
        {s for (s, _c, _cond) in cells} | {c for (_s, c, _cond) in cells}
    )
    cols: List[str] = []
    col_keys: List[Tuple[str, str]] = []
    for cond in conditions:
        for peer in peers:
            col_keys.append((peer, cond))
            cols.append(f"{peer}@{cond}" if multi_condition else peer)
    diagonal = 1.0 if metric == "peer_conf" else 0.0
    values = np.full((len(peers), len(cols)), np.nan)
    for i, row_peer in enumerate(peers):
        for j, (col_peer, cond) in enumerate(col_keys):
            if row_peer == col_peer:
                values[i, j] = diagonal
            else:
                values[i, j] = cells.get(
                    (row_peer, col_peer, cond), np.nan
                )
    return peers, cols, values


def stored_peer_matrix_figure(
    store: "ResultStore",
    run,
    metric: str = "peer_conf",
    title: Optional[str] = None,
) -> SvgCanvas:
    """Render one stored peer-conformance run as an SVG matrix panel."""
    rows, cols, values = stored_peer_matrix(store, run, metric)
    run_name = store.run(run).name
    return heatmap_figure(
        rows,
        cols,
        values,
        title=title or f"peer {metric} — run {run_name}",
    )


def stored_heatmap_figure(
    store: "ResultStore",
    run,
    metric: str = "conf",
    title: Optional[str] = None,
) -> SvgCanvas:
    """Render one stored run as an SVG heatmap (Fig. 6 style)."""
    rows, cols, values = stored_heatmap_matrix(store, run, metric)
    run_name = store.run(run).name
    return heatmap_figure(
        rows,
        cols,
        values,
        title=title or f"{metric} — run {run_name}",
    )


__all__ = [
    "stored_heatmap_matrix",
    "stored_heatmap_figure",
    "stored_peer_matrix",
    "stored_peer_matrix_figure",
]
