"""A minimal SVG canvas.

Just enough vector drawing for the chart module: primitives accumulate
as elements and serialize to a standalone SVG document.  Coordinates are
in SVG user units (pixels), y growing downward; the chart layer handles
data-space transforms.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape


class SvgCanvas:
    """An append-only SVG element buffer with a fixed viewport."""

    def __init__(self, width: float, height: float, background: str = "white"):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives -----------------------------------------------------
    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}" '
            f'opacity="{opacity:.3f}"/>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.0,
        dash: Optional[str] = None,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"{dash_attr}/>'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "black",
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}" '
            f'opacity="{opacity:.3f}"/>'
        )

    def polygon(
        self,
        points: Sequence[Tuple[float, float]],
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 3:
            return
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polygon points="{coords}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width}" fill-opacity="{opacity:.3f}"/>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: str = "black",
        stroke_width: float = 1.5,
        dash: Optional[str] = None,
    ) -> None:
        if len(points) < 2:
            return
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{stroke_width}"{dash_attr}/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 12.0,
        anchor: str = "start",
        fill: str = "#222",
        rotate: Optional[float] = None,
    ) -> None:
        transform = (
            f' transform="rotate({rotate:.1f} {x:.2f} {y:.2f})"' if rotate else ""
        )
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size:.1f}" '
            f'font-family="Helvetica, Arial, sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{escape(content)}</text>'
        )

    # -- output -----------------------------------------------------------
    def to_svg(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n  {body}\n</svg>\n'
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_svg())


#: A small qualitative palette (colorblind-safe Okabe-Ito subset).
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)


def sequential_color(value: float) -> str:
    """0..1 -> light-to-dark blue ramp for heat cells."""
    v = min(max(value, 0.0), 1.0)
    # Interpolate white (255) -> #0B3D91-ish dark blue.
    r = int(255 + (11 - 255) * v)
    g = int(255 + (61 - 255) * v)
    b = int(255 + (145 - 255) * v)
    return f"#{r:02x}{g:02x}{b:02x}"


def diverging_color(value: float) -> str:
    """0..1 with 0.5 neutral -> blue-white-red ramp (share matrices)."""
    v = min(max(value, 0.0), 1.0)
    if v < 0.5:
        t = v / 0.5
        r, g, b = (
            int(33 + (255 - 33) * t),
            int(102 + (255 - 102) * t),
            int(172 + (255 - 172) * t),
        )
    else:
        t = (v - 0.5) / 0.5
        r, g, b = (
            int(255 + (178 - 255) * t),
            int(255 + (24 - 255) * t),
            int(255 + (43 - 255) * t),
        )
    return f"#{r:02x}{g:02x}{b:02x}"
