"""Publication-style figure rendering without external dependencies.

The paper's results are figures — envelope scatter plots (Figs 1-3,
7-10, 14-15), heatmaps (Figs 6, 11-13) and metric curves (Figs 4-5).
This package renders all three as standalone SVG files using nothing
but the standard library, so the reproduction can produce viewable
figures in the offline environments it targets.
"""

from repro.viz.svg import SvgCanvas
from repro.viz.charts import (
    envelope_figure,
    heatmap_figure,
    line_figure,
    save_figure,
)
from repro.viz.fairness import fairness_panel_figure, stored_fairness_matrix
from repro.viz.store import stored_heatmap_figure, stored_heatmap_matrix

__all__ = [
    "SvgCanvas",
    "envelope_figure",
    "fairness_panel_figure",
    "heatmap_figure",
    "line_figure",
    "save_figure",
    "stored_fairness_matrix",
    "stored_heatmap_figure",
    "stored_heatmap_matrix",
]
