"""Fairness panels for stored topology campaigns.

A ``"topology"`` campaign records one row per flow — keyed by the flow
label as the *variant* and by the topology name as the *condition* —
plus one aggregate row (Jain's index, convergence time, utilization)
per topology.  The panel pivots the per-flow rows into a
flows x topologies heatmap, so a whole fairness matrix (who got what
share, in which topology) reads at a glance; the aggregate Jain's
index per topology is stitched into the column labels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.viz.charts import heatmap_figure
from repro.viz.svg import SvgCanvas

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import ResultStore


def stored_fairness_matrix(
    store: "ResultStore", run, metric: str = "share"
) -> Tuple[List[str], List[str], np.ndarray]:
    """Pivot a topology run's per-flow metric into (flows, topologies).

    Rows are flow labels, columns are topology names, cells are the
    requested per-flow metric (``share``, ``tput_mbps`` or
    ``convergence_s``).  Aggregate rows (``variant == "default"``) are
    excluded — they describe topologies, not flows.
    """
    table = store.metric_table(run, metric)
    per_flow = {
        key: value
        for key, value in table.items()
        if key[2] != "default"  # (stack, cca, variant, condition)
    }
    if not per_flow:
        raise ValueError(
            f"run {run!r} holds no per-flow {metric!r} metrics "
            "(is it a topology campaign run?)"
        )
    rows = sorted({variant for (_s, _c, variant, _cond) in per_flow})
    cols = sorted({cond for (_s, _c, _v, cond) in per_flow})
    values = np.full((len(rows), len(cols)), np.nan)
    for (stack, cca, variant, cond), value in per_flow.items():
        values[rows.index(variant), cols.index(cond)] = value
    return rows, cols, values


def fairness_panel_figure(
    store: "ResultStore",
    run,
    metric: str = "share",
    title: Optional[str] = None,
) -> SvgCanvas:
    """Render one topology run as a flows x topologies fairness panel."""
    rows, cols, values = stored_fairness_matrix(store, run, metric)
    jain = store.metric_table(run, "jain")
    by_topology = {
        cond: value
        for (stack, _c, _v, cond), value in jain.items()
        if stack == "topology"
    }
    labels = [
        f"{col} (J={by_topology[col]:.2f})" if col in by_topology else col
        for col in cols
    ]
    run_name = store.run(run).name
    return heatmap_figure(
        rows,
        labels,
        values,
        title=title or f"{metric} per flow — run {run_name}",
    )


__all__ = ["fairness_panel_figure", "stored_fairness_matrix"]
