"""Conformance metrics (§3.1, §3.3).

*Conformance* weighs the overlap of two Performance Envelopes by the data
points it contains:

    Conformance = #points in the overlapping region
                  / #points in the union of the two PEs

so identical envelopes score 1 and disjoint envelopes score 0.

*Conformance-T* is the maximum conformance achievable by translating the
test PE on the delay-throughput plane; the optimal translation, reported
as (Δ-throughput, Δ-delay) with the sign convention "test minus
reference", hints at which knob (cwnd vs pacing rate) is mistuned:
a cwnd overshoot raises both throughput and delay, a pacing overshoot
raises throughput alone (§3.3).

*conformance_legacy* reimplements the authors' earlier metric [35]
(single convex hull, 5 % centroid-distance outlier trimming) for the
"Conf-old" columns of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.envelope import (
    EnvelopeConfig,
    PerformanceEnvelope,
    build_envelope,
)
from repro.core.geometry import convex_hull, points_in_convex_polygon


def conformance(
    test: PerformanceEnvelope, reference: PerformanceEnvelope
) -> float:
    """Point-weighted overlap of the two envelopes, in [0, 1]."""
    points = np.vstack([test.all_points, reference.all_points])
    if len(points) == 0:
        return 0.0
    in_test = test.contains(points)
    in_ref = reference.contains(points)
    union = in_test | in_ref
    denom = int(union.sum())
    if denom == 0:
        return 0.0
    return float((in_test & in_ref).sum() / denom)


def conformance_legacy(
    test_points: Sequence,
    reference_points: Sequence,
    trim_fraction: float = 0.05,
) -> float:
    """The earlier (IMC'22) definition: one hull, 5 % centroid trimming."""
    test = _trim_outliers(np.asarray(test_points, dtype=float), trim_fraction)
    ref = _trim_outliers(np.asarray(reference_points, dtype=float), trim_fraction)
    hull_test = convex_hull(test)
    hull_ref = convex_hull(ref)
    points = np.vstack([test, ref])
    if len(points) == 0 or len(hull_test) < 3 or len(hull_ref) < 3:
        return 0.0
    in_test = points_in_convex_polygon(points, hull_test)
    in_ref = points_in_convex_polygon(points, hull_ref)
    union = in_test | in_ref
    denom = int(union.sum())
    if denom == 0:
        return 0.0
    return float((in_test & in_ref).sum() / denom)


def _trim_outliers(points: np.ndarray, fraction: float) -> np.ndarray:
    if len(points) == 0 or fraction <= 0:
        return points
    centroid = points.mean(axis=0)
    # Normalize axes so "distance from centroid" is scale-free.
    std = points.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    dist = (((points - centroid) / std) ** 2).sum(axis=1)
    keep = max(int(np.ceil(len(points) * (1 - fraction))), 1)
    order = np.argsort(dist)
    return points[order[:keep]]


@dataclass
class TranslationResult:
    """Outcome of the Conformance-T search."""

    conformance_t: float
    #: Translation applied to the test PE, (Δdelay_ms, Δthroughput_mbps).
    translation: Tuple[float, float]

    @property
    def delta_delay_ms(self) -> float:
        """Test-minus-reference delay offset (paper's Δ-delay)."""
        return -self.translation[0]

    @property
    def delta_throughput_mbps(self) -> float:
        """Test-minus-reference throughput offset (paper's Δ-tput)."""
        return -self.translation[1]


def conformance_post_translation(
    test: PerformanceEnvelope,
    reference: PerformanceEnvelope,
    refine_iters: int = 40,
) -> TranslationResult:
    """Maximize conformance over translations of the test PE.

    The objective is piecewise constant (points crossing hull edges), so
    gradient-free search is used: seed candidates from every pairing of
    test/reference cluster centroids (plus the overall mean shift and the
    identity), then refine the best seeds with a shrinking pattern
    search.
    """
    seeds = _candidate_translations(test, reference)
    scored = [
        ((dx, dy), conformance(test.translated((dx, dy)), reference))
        for dx, dy in seeds
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    best_t, best_score = scored[0]

    # Pattern-search refinement around the strongest seeds.
    spread = reference.all_points.std(axis=0) + test.all_points.std(axis=0)
    step0 = np.maximum(spread / 2, 1e-6)
    for seed_t, seed_score in scored[:3]:
        t = np.asarray(seed_t, dtype=float)
        score = seed_score
        step = step0.copy()
        for _ in range(refine_iters):
            improved = False
            for axis in (0, 1):
                for direction in (+1, -1):
                    candidate = t.copy()
                    candidate[axis] += direction * step[axis]
                    cand_score = conformance(
                        test.translated(candidate), reference
                    )
                    if cand_score > score:
                        t, score = candidate, cand_score
                        improved = True
            if not improved:
                step /= 2
                if (step < 1e-4 * step0).all():
                    break
        if score > best_score:
            best_score, best_t = score, (float(t[0]), float(t[1]))

    return TranslationResult(
        conformance_t=best_score,
        translation=(float(best_t[0]), float(best_t[1])),
    )


def _candidate_translations(
    test: PerformanceEnvelope, reference: PerformanceEnvelope
) -> List[Tuple[float, float]]:
    candidates: List[Tuple[float, float]] = [(0.0, 0.0)]
    tc = test.centroid()
    rc = reference.centroid()
    if tc is not None and rc is not None:
        candidates.append((float(rc[0] - tc[0]), float(rc[1] - tc[1])))
    for ct in test.clusters:
        if ct.centroid is None:
            continue
        for cr in reference.clusters:
            if cr.centroid is None:
                continue
            delta = cr.centroid - ct.centroid
            candidates.append((float(delta[0]), float(delta[1])))
    return candidates


@dataclass
class ConformanceResult:
    """Full metric set for one (stack, CCA, network) measurement."""

    conformance: float
    conformance_t: float
    conformance_legacy: float
    delta_throughput_mbps: float
    delta_delay_ms: float
    test_envelope: PerformanceEnvelope
    reference_envelope: PerformanceEnvelope

    def summary_row(self) -> dict:
        return {
            "conf": round(self.conformance, 3),
            "conf_t": round(self.conformance_t, 3),
            "conf_old": round(self.conformance_legacy, 3),
            "delta_tput_mbps": round(self.delta_throughput_mbps, 2),
            "delta_delay_ms": round(self.delta_delay_ms, 2),
            "k_test": self.test_envelope.k,
            "k_ref": self.reference_envelope.k,
        }


def evaluate_conformance(
    test_trials: Sequence[Sequence],
    reference_trials: Sequence[Sequence],
    config: EnvelopeConfig = EnvelopeConfig(),
) -> ConformanceResult:
    """End-to-end: trials of sampled points -> full conformance metrics."""
    test_pe = build_envelope(test_trials, config)
    ref_pe = build_envelope(reference_trials, config)
    conf = conformance(test_pe, ref_pe)
    translation = conformance_post_translation(test_pe, ref_pe)
    legacy = conformance_legacy(
        np.vstack([np.asarray(t, dtype=float) for t in test_trials]),
        np.vstack([np.asarray(t, dtype=float) for t in reference_trials]),
    )
    return ConformanceResult(
        conformance=conf,
        conformance_t=max(translation.conformance_t, conf),
        conformance_legacy=legacy,
        delta_throughput_mbps=translation.delta_throughput_mbps,
        delta_delay_ms=translation.delta_delay_ms,
        test_envelope=test_pe,
        reference_envelope=ref_pe,
    )
