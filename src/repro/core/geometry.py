"""2-D computational geometry for Performance Envelopes.

Everything the PE needs is convex: hulls of point clouds (Andrew's
monotone chain), intersection of convex polygons (Sutherland–Hodgman
clipping), areas (shoelace) and point-in-polygon tests.  Implemented from
scratch on plain numpy arrays; polygons are (N, 2) float arrays in
counter-clockwise order without a repeated closing vertex.

Degenerate results (fewer than 3 vertices after hull or clipping) are
represented as empty polygons — an envelope cluster that degenerates to a
segment carries no area and contains no points, matching how the paper's
intersection-over-trials naturally discards unstable clusters.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

#: Geometric tolerance for orientation tests, in squared input units.
EPS = 1e-12


def _as_points(points: Sequence) -> np.ndarray:
    arr = np.asarray(points, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (N, 2) array, got shape {arr.shape}")
    return arr


def cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Z-component of (a - o) x (b - o); >0 means a left turn."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Sequence) -> np.ndarray:
    """Convex hull via Andrew's monotone chain, CCW order.

    Collinear boundary points are dropped.  Returns an empty (0, 2) array
    for degenerate inputs (fewer than 3 distinct, non-collinear points).
    """
    arr = _as_points(points)
    if len(arr) < 3:
        return np.empty((0, 2))
    unique = np.unique(arr, axis=0)
    if len(unique) < 3:
        return np.empty((0, 2))
    pts = unique[np.lexsort((unique[:, 1], unique[:, 0]))]

    def half(iterable: Iterable[np.ndarray]) -> List[np.ndarray]:
        chain: List[np.ndarray] = []
        for p in iterable:
            # Pop on non-left turns with the exact zero threshold: an
            # absolute epsilon here can discard true extreme vertices
            # when a chain is nearly collinear at tiny scales.
            while len(chain) >= 2 and cross(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = half(pts)
    upper = half(reversed(pts))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return np.empty((0, 2))
    return np.array(hull)


def polygon_area(polygon: Sequence) -> float:
    """Shoelace area; 0 for degenerate polygons."""
    poly = _as_points(polygon)
    if len(poly) < 3:
        return 0.0
    x = poly[:, 0]
    y = poly[:, 1]
    return 0.5 * abs(
        float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
    )


def polygon_centroid(polygon: Sequence) -> Optional[np.ndarray]:
    """Area centroid of a convex polygon; None when degenerate."""
    poly = _as_points(polygon)
    if len(poly) < 3:
        return None
    x = poly[:, 0]
    y = poly[:, 1]
    cross_terms = x * np.roll(y, -1) - np.roll(x, -1) * y
    area6 = 3 * (np.sum(cross_terms))
    if abs(area6) < EPS:
        return poly.mean(axis=0)
    cx = float(np.sum((x + np.roll(x, -1)) * cross_terms) / area6)
    cy = float(np.sum((y + np.roll(y, -1)) * cross_terms) / area6)
    return np.array([cx, cy])


def _ensure_ccw(polygon: np.ndarray) -> np.ndarray:
    x = polygon[:, 0]
    y = polygon[:, 1]
    signed = float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
    if signed < 0:
        return polygon[::-1]
    return polygon


def convex_intersection(poly_a: Sequence, poly_b: Sequence) -> np.ndarray:
    """Intersection of two convex polygons (Sutherland–Hodgman).

    Returns the (possibly empty) intersection polygon in CCW order.
    """
    a = _as_points(poly_a)
    b = _as_points(poly_b)
    if len(a) < 3 or len(b) < 3:
        return np.empty((0, 2))
    subject = _ensure_ccw(a)
    clipper = _ensure_ccw(b)

    output: List[np.ndarray] = list(subject)
    n = len(clipper)
    for i in range(n):
        if not output:
            return np.empty((0, 2))
        edge_start = clipper[i]
        edge_end = clipper[(i + 1) % n]
        input_pts = output
        output = []
        prev = input_pts[-1]
        prev_inside = cross(edge_start, edge_end, prev) >= -EPS
        for current in input_pts:
            inside = cross(edge_start, edge_end, current) >= -EPS
            if inside:
                if not prev_inside:
                    output.append(_segment_intersection(prev, current, edge_start, edge_end))
                output.append(current)
            elif prev_inside:
                output.append(_segment_intersection(prev, current, edge_start, edge_end))
            prev = current
            prev_inside = inside
    if len(output) < 3:
        return np.empty((0, 2))
    result = np.array(output)
    # Clipping can produce duplicate/collinear vertices; re-hull to clean up.
    cleaned = convex_hull(result)
    return cleaned if len(cleaned) >= 3 else np.empty((0, 2))


def _segment_intersection(
    p1: np.ndarray, p2: np.ndarray, q1: np.ndarray, q2: np.ndarray
) -> np.ndarray:
    """Intersection of line p1p2 with line q1q2 (callers guarantee crossing)."""
    d1 = p2 - p1
    d2 = q2 - q1
    denom = d1[0] * d2[1] - d1[1] * d2[0]
    if abs(denom) < EPS:
        return p2.copy()
    t = ((q1[0] - p1[0]) * d2[1] - (q1[1] - p1[1]) * d2[0]) / denom
    return p1 + t * d1


def intersect_polygons(polygons: Sequence[Sequence]) -> np.ndarray:
    """Intersection of many convex polygons (the over-trials PE operation)."""
    polys = [(_as_points(p)) for p in polygons]
    if not polys:
        return np.empty((0, 2))
    result = polys[0]
    for poly in polys[1:]:
        result = convex_intersection(result, poly)
        if len(result) < 3:
            return np.empty((0, 2))
    return result


def point_in_convex_polygon(point: Sequence, polygon: Sequence) -> bool:
    """True when ``point`` lies inside or on the convex polygon."""
    poly = _as_points(polygon)
    if len(poly) < 3:
        return False
    p = np.asarray(point, dtype=float)
    n = len(poly)
    for i in range(n):
        if cross(poly[i], poly[(i + 1) % n], p) < -1e-9 * _scale(poly):
            return False
    return True


def points_in_convex_polygon(points: Sequence, polygon: Sequence) -> np.ndarray:
    """Vectorized membership test: boolean mask over ``points``."""
    pts = _as_points(points)
    poly = _as_points(polygon)
    if len(poly) < 3 or len(pts) == 0:
        return np.zeros(len(pts), dtype=bool)
    poly = _ensure_ccw(poly)
    mask = np.ones(len(pts), dtype=bool)
    tol = -1e-9 * _scale(poly)
    n = len(poly)
    for i in range(n):
        o = poly[i]
        e = poly[(i + 1) % n]
        crossv = (e[0] - o[0]) * (pts[:, 1] - o[1]) - (e[1] - o[1]) * (
            pts[:, 0] - o[0]
        )
        mask &= crossv >= tol
        if not mask.any():
            break
    return mask


def _scale(poly: np.ndarray) -> float:
    """Characteristic squared length used for relative tolerances."""
    span = poly.max(axis=0) - poly.min(axis=0)
    return max(float(span[0] * span[1]), 1e-6)


def translate_polygon(polygon: Sequence, offset: Sequence) -> np.ndarray:
    """The polygon rigidly shifted by ``offset``."""
    poly = _as_points(polygon)
    return poly + np.asarray(offset, dtype=float)
