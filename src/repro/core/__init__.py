"""The paper's primary contribution: Performance-Envelope conformance.

Pipeline (one conformance measurement):

1. :mod:`repro.core.timeseries` — turn packet traces into throughput and
   delay time series, computed offline exactly like the paper's
   trace-based post-processing.
2. :mod:`repro.core.sampling` — truncate 10 % at both ends and sample
   (delay, throughput) pairs every 10 RTTs.
3. :mod:`repro.core.envelope` — cluster each trial's point cloud
   (k selected by the IOU-drop rule), build per-cluster convex hulls and
   intersect them across trials (outlier removal).
4. :mod:`repro.core.conformance` — Conformance (point-weighted overlap of
   the two envelopes), Conformance-T (max conformance over translations),
   and the translation vector (Δ-throughput, Δ-delay).
"""

from repro.core.geometry import (
    convex_hull,
    polygon_area,
    convex_intersection,
    point_in_convex_polygon,
    polygon_centroid,
)
from repro.core.timeseries import FlowTimeSeries, compute_time_series
from repro.core.sampling import sample_points, SamplingConfig
from repro.core.clustering import kmeans, select_k, KMeansResult
from repro.core.envelope import PerformanceEnvelope, build_envelope, EnvelopeConfig
from repro.core.conformance import (
    conformance,
    conformance_legacy,
    conformance_post_translation,
    evaluate_conformance,
    ConformanceResult,
    TranslationResult,
)
from repro.core.apps import (
    DesiredRegion,
    MatchScore,
    bulk_transfer_region,
    live_streaming_region,
    match_envelope,
    select_cca,
)
from repro.core.peer import (
    PeerConformanceResult,
    cluster_peers,
    evaluate_peer_conformance,
    pairwise_conformance_matrix,
    peer_distance_matrix,
    peer_scores,
)

__all__ = [
    "convex_hull",
    "polygon_area",
    "convex_intersection",
    "point_in_convex_polygon",
    "polygon_centroid",
    "FlowTimeSeries",
    "compute_time_series",
    "sample_points",
    "SamplingConfig",
    "kmeans",
    "select_k",
    "KMeansResult",
    "PerformanceEnvelope",
    "build_envelope",
    "EnvelopeConfig",
    "conformance",
    "conformance_legacy",
    "conformance_post_translation",
    "evaluate_conformance",
    "ConformanceResult",
    "TranslationResult",
    "DesiredRegion",
    "MatchScore",
    "bulk_transfer_region",
    "live_streaming_region",
    "match_envelope",
    "select_cca",
    "PeerConformanceResult",
    "cluster_peers",
    "evaluate_peer_conformance",
    "pairwise_conformance_matrix",
    "peer_distance_matrix",
    "peer_scores",
]
