"""Performance Envelope construction (§3.1–§3.2 of the paper).

A PE is built from several trials of the same measurement:

1. pool all trials' (delay, throughput) points and fix a common
   standardization so clusters are comparable across trials;
2. for a given k, cluster *each trial* with k-means and match the
   clusters across trials by centroid (Hungarian assignment);
3. each final cluster region is the *intersection* of that cluster's
   convex hulls over all trials — this is the paper's principled outlier
   removal (points from natural network variation do not recur across
   trials, so their hull area is cut away);
4. k itself is chosen by the retention-drop rule
   (:func:`repro.core.clustering.select_k`): the final PE for each k
   retains some fraction R(k) of all points, and the natural k is the
   last value before R's steepest drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.clustering import kmeans, match_clusters, select_k
from repro.core.geometry import (
    convex_hull,
    intersect_polygons,
    points_in_convex_polygon,
    polygon_area,
    polygon_centroid,
    translate_polygon,
)


@dataclass(frozen=True)
class EnvelopeConfig:
    """PE construction parameters."""

    #: Fixed number of clusters; None selects k by the retention rule.
    k: Optional[int] = None
    k_max: int = 5
    kmeans_seed: int = 0
    #: Retention floor below which larger k values are rejected.
    min_retention: float = 0.05
    #: Build a single hull per trial without clustering (the legacy PE of
    #: the authors' earlier paper, used for the Conf-old comparisons).
    single_hull: bool = False

    def validate(self) -> None:
        if self.k is not None and self.k < 1:
            raise ValueError("k must be >= 1")
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")


@dataclass
class EnvelopeCluster:
    """One final PE cluster: an intersected hull plus its member points."""

    hull: np.ndarray  # (V, 2) or empty when the intersection vanished
    points: np.ndarray  # members pooled over trials
    centroid: Optional[np.ndarray]

    @property
    def empty(self) -> bool:
        return len(self.hull) < 3

    @property
    def area(self) -> float:
        return polygon_area(self.hull)


@dataclass
class PerformanceEnvelope:
    """The final PE: a set of convex hulls on the delay-throughput plane."""

    clusters: List[EnvelopeCluster]
    all_points: np.ndarray
    k: int
    #: R(k) curve (None when k was fixed by the caller).
    retention_curve: Optional[np.ndarray] = None

    @property
    def hulls(self) -> List[np.ndarray]:
        return [c.hull for c in self.clusters if not c.empty]

    def contains(self, points: Sequence) -> np.ndarray:
        """Mask: which points fall inside the union of the PE's hulls."""
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            return np.zeros(0, dtype=bool)
        mask = np.zeros(len(pts), dtype=bool)
        for hull in self.hulls:
            mask |= points_in_convex_polygon(pts, hull)
        return mask

    def retained_fraction(self) -> float:
        """Fraction of this PE's own points inside the PE (≈0.95 in the
        paper: the trial intersection removes ~5 % as outliers)."""
        if len(self.all_points) == 0:
            return 0.0
        return float(self.contains(self.all_points).mean())

    def total_area(self) -> float:
        return sum(c.area for c in self.clusters)

    def centroid(self) -> Optional[np.ndarray]:
        if len(self.all_points) == 0:
            return None
        return self.all_points.mean(axis=0)

    def translated(self, offset: Sequence) -> "PerformanceEnvelope":
        """The PE (hulls and points) shifted by ``offset`` on the plane."""
        off = np.asarray(offset, dtype=float)
        clusters = [
            EnvelopeCluster(
                hull=translate_polygon(c.hull, off) if not c.empty else c.hull,
                points=c.points + off,
                centroid=None if c.centroid is None else c.centroid + off,
            )
            for c in self.clusters
        ]
        return PerformanceEnvelope(
            clusters=clusters,
            all_points=self.all_points + off,
            k=self.k,
            retention_curve=self.retention_curve,
        )


def _clusters_for_k(
    trials: List[np.ndarray],
    k: int,
    seed: int,
) -> List[EnvelopeCluster]:
    """Cluster every trial with the same k, match and intersect hulls."""
    results = [kmeans(t, k, seed=seed) for t in trials]
    reference = results[0]
    # Represent centroids in original units for matching: recompute from
    # members (kmeans centroids live in standardized space).
    def original_centroids(result, trial):
        cents = np.empty((result.k, 2))
        for j in range(result.k):
            members = trial[result.labels == j]
            # Empty clusters get a huge-but-finite sentinel so Hungarian
            # matching pushes them onto whatever is left over.
            cents[j] = members.mean(axis=0) if len(members) else np.array([1e9, 1e9])
        return cents

    ref_cents = original_centroids(reference, trials[0])
    per_cluster_hulls: List[List[np.ndarray]] = [[] for _ in range(reference.k)]
    per_cluster_points: List[List[np.ndarray]] = [[] for _ in range(reference.k)]

    for trial, result in zip(trials, results):
        cents = original_centroids(result, trial)
        if result.k != reference.k:
            # A degenerate trial (fewer points than k): skip its hulls; the
            # intersection then simply ignores this trial for that k.
            continue
        mapping = match_clusters(ref_cents, cents)
        for i in range(reference.k):
            members = trial[result.labels == mapping[i]]
            per_cluster_points[i].append(members)
            per_cluster_hulls[i].append(convex_hull(members))

    clusters: List[EnvelopeCluster] = []
    for i in range(reference.k):
        hulls = per_cluster_hulls[i]
        points = (
            np.vstack(per_cluster_points[i])
            if per_cluster_points[i]
            else np.empty((0, 2))
        )
        if hulls and all(len(h) >= 3 for h in hulls):
            final = intersect_polygons(hulls)
        else:
            final = np.empty((0, 2))
        clusters.append(
            EnvelopeCluster(
                hull=final,
                points=points,
                centroid=polygon_centroid(final) if len(final) >= 3 else (
                    points.mean(axis=0) if len(points) else None
                ),
            )
        )
    return clusters


def build_envelope(
    trials: Sequence[Sequence],
    config: EnvelopeConfig = EnvelopeConfig(),
) -> PerformanceEnvelope:
    """Build the final PE from one point cloud per trial."""
    config.validate()
    trial_arrays = [np.asarray(t, dtype=float) for t in trials if len(t) > 0]
    if not trial_arrays:
        raise ValueError("cannot build an envelope from empty trials")
    all_points = np.vstack(trial_arrays)

    if config.single_hull:
        clusters = _clusters_for_k(trial_arrays, 1, config.kmeans_seed)
        return PerformanceEnvelope(clusters=clusters, all_points=all_points, k=1)

    if config.k is not None:
        clusters = _clusters_for_k(trial_arrays, config.k, config.kmeans_seed)
        return PerformanceEnvelope(
            clusters=clusters, all_points=all_points, k=config.k
        )

    cache: dict[int, List[EnvelopeCluster]] = {}

    def retention(k: int) -> float:
        clusters = cache.setdefault(
            k, _clusters_for_k(trial_arrays, k, config.kmeans_seed)
        )
        pe = PerformanceEnvelope(clusters=clusters, all_points=all_points, k=k)
        return pe.retained_fraction()

    k_max = min(config.k_max, min(len(t) for t in trial_arrays))
    selection = select_k(retention, k_max=k_max, min_retention=config.min_retention)
    return PerformanceEnvelope(
        clusters=cache[selection.k],
        all_points=all_points,
        k=selection.k,
        retention_curve=selection.retention,
    )
