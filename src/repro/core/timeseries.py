"""Offline throughput/delay time series from packet traces.

The paper computes both series "offline via packet trace" (§3.1).  We do
the same: the only input is the receiver-side delivery trace.  Throughput
over a window is delivered payload divided by window length; delay is the
mean RTT experienced by the packets delivered in the window, reconstructed
as (one-way forward delay, which includes all queueing) plus the constant
reverse-path propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netsim.trace import FlowTrace


@dataclass
class FlowTimeSeries:
    """Evenly-windowed throughput/delay series for one flow."""

    #: Window start times, seconds.
    times: np.ndarray
    #: Mbps delivered per window.
    throughput_mbps: np.ndarray
    #: Mean RTT per window, milliseconds.
    delay_ms: np.ndarray
    window_s: float

    def __len__(self) -> int:
        return len(self.times)

    def truncated(self, fraction: float) -> "FlowTimeSeries":
        """Drop ``fraction`` of the windows at each end (paper: 10 %)."""
        if not 0 <= fraction < 0.5:
            raise ValueError("truncation fraction must be in [0, 0.5)")
        n = len(self.times)
        cut = int(n * fraction)
        sl = slice(cut, n - cut if cut else n)
        return FlowTimeSeries(
            times=self.times[sl],
            throughput_mbps=self.throughput_mbps[sl],
            delay_ms=self.delay_ms[sl],
            window_s=self.window_s,
        )

    def points(self) -> np.ndarray:
        """(delay_ms, throughput_mbps) pairs — the PE point cloud axes."""
        return np.column_stack([self.delay_ms, self.throughput_mbps])


def compute_time_series(
    trace: FlowTrace,
    window_s: float,
    reverse_delay_s: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> FlowTimeSeries:
    """Window the delivery trace of one flow.

    ``reverse_delay_s`` is the constant reverse-path propagation used to
    turn measured one-way delays into RTT estimates.  Windows with no
    deliveries inherit zero throughput and the previous window's delay
    (a silent flow still observes the path's last known delay).
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    records = trace.records
    if not records:
        return FlowTimeSeries(
            times=np.empty(0),
            throughput_mbps=np.empty(0),
            delay_ms=np.empty(0),
            window_s=window_s,
        )
    arrivals = np.fromiter((r.arrival_time for r in records), dtype=float, count=len(records))
    sizes = np.fromiter((r.payload_bytes for r in records), dtype=float, count=len(records))
    owds = np.fromiter((r.one_way_delay for r in records), dtype=float, count=len(records))

    t0 = arrivals[0] if start is None else start
    t1 = arrivals[-1] if end is None else end
    if t1 <= t0:
        return FlowTimeSeries(
            times=np.empty(0),
            throughput_mbps=np.empty(0),
            delay_ms=np.empty(0),
            window_s=window_s,
        )
    n_windows = max(int((t1 - t0) / window_s), 1)
    edges = t0 + np.arange(n_windows + 1) * window_s
    index = np.clip(np.searchsorted(edges, arrivals, side="right") - 1, 0, n_windows - 1)
    in_range = (arrivals >= t0) & (arrivals < edges[-1])

    throughput = np.zeros(n_windows)
    delay_sum = np.zeros(n_windows)
    counts = np.zeros(n_windows)
    np.add.at(throughput, index[in_range], sizes[in_range])
    np.add.at(delay_sum, index[in_range], owds[in_range])
    np.add.at(counts, index[in_range], 1)

    throughput_mbps = throughput * 8 / window_s / 1e6
    rtts = np.zeros(n_windows)
    have = counts > 0
    rtts[have] = delay_sum[have] / counts[have] + reverse_delay_s
    # Forward-fill delay through silent windows.
    last = rtts[have][0] if have.any() else 0.0
    for i in range(n_windows):
        if have[i]:
            last = rtts[i]
        else:
            rtts[i] = last

    return FlowTimeSeries(
        times=edges[:-1],
        throughput_mbps=throughput_mbps,
        delay_ms=rtts * 1e3,
        window_s=window_s,
    )
