"""Application-driven CCA selection via envelope matching.

§6 "Extending the Performance Envelope to other applications": an
application knows the delay/throughput region it wants to operate in
(live streaming wants low delay, bulk transfer wants high throughput);
pick the congestion control whose Performance Envelope overlaps that
desired region the most.

The desired region is expressed as an axis-aligned box (or any convex
polygon) on the delay-throughput plane; candidates are ranked by the
fraction of their envelope points inside the region, tie-broken by area
overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.envelope import PerformanceEnvelope
from repro.core.geometry import (
    convex_intersection,
    points_in_convex_polygon,
    polygon_area,
)


@dataclass(frozen=True)
class DesiredRegion:
    """An application's target operating region on the (delay, tput) plane."""

    max_delay_ms: float = float("inf")
    min_delay_ms: float = 0.0
    min_throughput_mbps: float = 0.0
    max_throughput_mbps: float = float("inf")
    label: str = ""

    def validate(self) -> None:
        if self.min_delay_ms < 0 or self.min_throughput_mbps < 0:
            raise ValueError("bounds must be non-negative")
        if self.min_delay_ms >= self.max_delay_ms:
            raise ValueError("empty delay range")
        if self.min_throughput_mbps >= self.max_throughput_mbps:
            raise ValueError("empty throughput range")

    def polygon(self, delay_cap_ms: float = 10_000.0, tput_cap_mbps: float = 100_000.0) -> np.ndarray:
        """The region as a convex polygon (infinite bounds clamped)."""
        self.validate()
        x0 = self.min_delay_ms
        x1 = min(self.max_delay_ms, delay_cap_ms)
        y0 = self.min_throughput_mbps
        y1 = min(self.max_throughput_mbps, tput_cap_mbps)
        return np.array([[x0, y0], [x1, y0], [x1, y1], [x0, y1]], dtype=float)

    def contains(self, points: Sequence) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            return np.zeros(0, dtype=bool)
        return (
            (pts[:, 0] >= self.min_delay_ms)
            & (pts[:, 0] <= self.max_delay_ms)
            & (pts[:, 1] >= self.min_throughput_mbps)
            & (pts[:, 1] <= self.max_throughput_mbps)
        )


#: Ready-made profiles for the §6 examples.
def live_streaming_region(rtt_budget_ms: float, min_rate_mbps: float) -> DesiredRegion:
    """Latency-sensitive: bounded delay, modest rate floor."""
    return DesiredRegion(
        max_delay_ms=rtt_budget_ms,
        min_throughput_mbps=min_rate_mbps,
        label="live-streaming",
    )


def bulk_transfer_region(min_rate_mbps: float) -> DesiredRegion:
    """Throughput-hungry: rate floor, delay-indifferent."""
    return DesiredRegion(min_throughput_mbps=min_rate_mbps, label="bulk-transfer")


@dataclass
class MatchScore:
    """How well one candidate envelope fits the desired region."""

    name: str
    #: Fraction of the envelope's points inside the region.
    point_fraction: float
    #: Fraction of the envelope's hull area inside the region.
    area_fraction: float

    @property
    def score(self) -> float:
        # Points carry the behaviour; area breaks ties between candidates
        # whose clouds sit fully inside the region.
        return self.point_fraction + 0.01 * self.area_fraction


def match_envelope(region: DesiredRegion, envelope: PerformanceEnvelope) -> Tuple[float, float]:
    """(point_fraction, area_fraction) of an envelope inside the region."""
    region.validate()
    points = envelope.all_points
    point_fraction = float(region.contains(points).mean()) if len(points) else 0.0

    region_poly = region.polygon()
    total_area = envelope.total_area()
    if total_area <= 0:
        return point_fraction, 0.0
    inside_area = sum(
        polygon_area(convex_intersection(hull, region_poly)) for hull in envelope.hulls
    )
    return point_fraction, float(inside_area / total_area)


def select_cca(
    region: DesiredRegion,
    candidates: Dict[str, PerformanceEnvelope],
) -> List[MatchScore]:
    """Rank candidate CCAs for an application, best first."""
    if not candidates:
        raise ValueError("no candidate envelopes supplied")
    scores = []
    for name, envelope in candidates.items():
        point_fraction, area_fraction = match_envelope(region, envelope)
        scores.append(
            MatchScore(name=name, point_fraction=point_fraction, area_fraction=area_fraction)
        )
    scores.sort(key=lambda s: s.score, reverse=True)
    return scores
