"""(delay, throughput) sampling for Performance Envelopes.

Methodology from §3.1 of the paper: run the flow to steady state,
truncate 10 % of the trace at both ends to drop transients, then sample
the throughput and delay time series every 10 RTTs and plot the pairs on
the delay-throughput plane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.timeseries import compute_time_series
from repro.netsim.trace import FlowTrace


@dataclass(frozen=True)
class SamplingConfig:
    """PE sampling parameters (paper defaults)."""

    #: Sampling period in units of base RTTs (§3.1: every 10 RTTs).
    sample_rtts: float = 10.0
    #: Fraction truncated at each end of the trace (§3.1: 10 %).
    truncate_fraction: float = 0.10

    def validate(self) -> None:
        if self.sample_rtts <= 0:
            raise ValueError("sample period must be positive")
        if not 0 <= self.truncate_fraction < 0.5:
            raise ValueError("truncation must be in [0, 0.5)")


def sample_points(
    trace: FlowTrace,
    base_rtt_s: float,
    config: SamplingConfig = SamplingConfig(),
) -> np.ndarray:
    """Produce the (delay_ms, throughput_mbps) point cloud for one trial.

    Each sample aggregates one ``sample_rtts * base_rtt`` window, which is
    equivalent to sampling the windowed time series at that period.
    """
    config.validate()
    if base_rtt_s <= 0:
        raise ValueError("base RTT must be positive")
    window = config.sample_rtts * base_rtt_s
    series = compute_time_series(
        trace,
        window_s=window,
        reverse_delay_s=base_rtt_s / 2,
    )
    series = series.truncated(config.truncate_fraction)
    return series.points()
