"""k-means clustering and the paper's IOU-based choice of k.

§3.2: a single convex hull overestimates conformance, so the point cloud
is clustered (standard k-means) and the PE becomes one hull per cluster.
The usual elbow method "was not satisfactory", so the paper selects k by
the information-retention curve: for each k, build the final PE
(per-cluster hulls intersected across trials) and compute R(k), the
fraction of all points contained in the PE.  R is strictly decreasing in
k; the natural k is the value just before R's steepest drop.

Delay (ms) and throughput (Mbps) live on different scales, so points are
standardized before distance computations; hulls are built in original
units by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment


@dataclass
class KMeansResult:
    """Outcome of one k-means run."""

    centroids: np.ndarray  # (k, 2), in the input (possibly scaled) space
    labels: np.ndarray  # (n,)
    inertia: float
    k: int

    def cluster_points(self, points: np.ndarray, cluster: int) -> np.ndarray:
        return points[self.labels == cluster]


def _standardize(points: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = points.mean(axis=0)
    std = points.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    return (points - mean) / std, mean, std


def kmeans(
    points: Sequence,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    n_init: int = 4,
    standardize: bool = True,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding, deterministic per seed."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError("points must be an (N, d) array")
    n = len(pts)
    if k < 1:
        raise ValueError("k must be >= 1")
    if n == 0:
        raise ValueError("cannot cluster an empty point set")
    k = min(k, n)
    work = pts
    if standardize:
        work, _, _ = _standardize(pts)

    best: Optional[KMeansResult] = None
    rng = np.random.default_rng(seed)
    for _ in range(n_init):
        centroids = _kmeans_pp_init(work, k, rng)
        labels = np.zeros(n, dtype=int)
        for _ in range(max_iter):
            distances = ((work[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            new_labels = distances.argmin(axis=1)
            if (new_labels == labels).all() and _ > 0:
                break
            labels = new_labels
            for j in range(k):
                members = work[labels == j]
                if len(members):
                    centroids[j] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    far = distances.min(axis=1).argmax()
                    centroids[j] = work[far]
        inertia = float(
            ((work - centroids[labels]) ** 2).sum()
        )
        if best is None or inertia < best.inertia:
            best = KMeansResult(
                centroids=centroids.copy(), labels=labels.copy(), inertia=inertia, k=k
            )
    assert best is not None
    return best


def _kmeans_pp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = len(points)
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(n)]
    closest = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[j:] = points[rng.integers(n, size=k - j)]
            break
        probs = closest / total
        centroids[j] = points[rng.choice(n, p=probs)]
        dist = ((points - centroids[j]) ** 2).sum(axis=1)
        closest = np.minimum(closest, dist)
    return centroids


def match_clusters(
    reference_centroids: np.ndarray, other_centroids: np.ndarray
) -> np.ndarray:
    """Optimal assignment of ``other`` clusters onto reference clusters.

    Returns ``mapping`` such that other cluster ``mapping[i]`` corresponds
    to reference cluster ``i`` (Hungarian algorithm on centroid
    distances).  Both inputs must have the same k.
    """
    if reference_centroids.shape != other_centroids.shape:
        raise ValueError("centroid arrays must have identical shapes")
    cost = (
        (reference_centroids[:, None, :] - other_centroids[None, :, :]) ** 2
    ).sum(axis=2)
    rows, cols = linear_sum_assignment(cost)
    mapping = np.empty(len(reference_centroids), dtype=int)
    mapping[rows] = cols
    return mapping


@dataclass
class KSelection:
    """Outcome of the IOU-drop rule."""

    k: int
    #: R(k) for each candidate k, indexed by k-1.
    retention: np.ndarray
    candidates: np.ndarray


def select_k(
    retention_fn: Callable[[int], float],
    k_max: int = 6,
    min_retention: float = 0.0,
) -> KSelection:
    """Pick k by the steepest-drop rule on the retention curve R(k).

    ``retention_fn(k)`` must return the fraction of points the final PE
    with k clusters retains (the paper's IOU).  The chosen k is the value
    *before* the largest drop R(k) - R(k+1); when the curve is flat the
    smallest k wins.
    """
    if k_max < 1:
        raise ValueError("k_max must be >= 1")
    ks = np.arange(1, k_max + 1)
    retention = np.array([retention_fn(int(k)) for k in ks], dtype=float)
    if k_max == 1:
        return KSelection(k=1, retention=retention, candidates=ks)
    drops = retention[:-1] - retention[1:]
    best_drop = float(drops.max())
    if best_drop <= 0.05:
        # Essentially flat: no cluster structure beyond k = 1.
        chosen = 1
    else:
        # "The value of k before the drop": the first k whose drop is
        # comparable to the steepest one.  Taking the global argmax alone
        # overshoots when an over-split PE still decays further.
        significant = np.nonzero(drops >= 0.5 * best_drop)[0]
        chosen = int(ks[significant[0]])
    # Guard: never choose a k whose PE retains almost nothing.
    while chosen > 1 and retention[chosen - 1] < min_retention:
        chosen -= 1
    return KSelection(k=chosen, retention=retention, candidates=ks)
