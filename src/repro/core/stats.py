"""Statistical utilities for conformance measurements.

The paper reports single conformance values per condition.  With a
simulator we can afford uncertainty estimates: bootstrap confidence
intervals obtained by resampling *trials* (the natural unit of
independent variation) and re-running the envelope pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.conformance import conformance
from repro.core.envelope import EnvelopeConfig, build_envelope


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    samples: int

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return f"{self.estimate:.2f} [{self.low:.2f}, {self.high:.2f}]"


def bootstrap_metric(
    values_fn: Callable[[Sequence[int]], float],
    n_trials: int,
    resamples: int = 200,
    confidence: float = 0.90,
    seed: int = 0,
) -> BootstrapResult:
    """Generic trial-level bootstrap.

    ``values_fn`` receives a list of trial indices (with replacement) and
    returns the metric computed on that resample.
    """
    if n_trials < 1:
        raise ValueError("need at least one trial")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimate = values_fn(list(range(n_trials)))
    samples = [
        values_fn(list(rng.integers(0, n_trials, size=n_trials)))
        for _ in range(resamples)
    ]
    alpha = (1 - confidence) / 2
    low, high = np.quantile(samples, [alpha, 1 - alpha])
    return BootstrapResult(
        estimate=float(estimate), low=float(low), high=float(high), samples=resamples
    )


def bootstrap_conformance(
    test_trials: Sequence[np.ndarray],
    reference_trials: Sequence[np.ndarray],
    config: EnvelopeConfig = EnvelopeConfig(),
    resamples: int = 100,
    confidence: float = 0.90,
    seed: int = 0,
) -> BootstrapResult:
    """Bootstrap CI for the conformance of one measurement.

    Trials are resampled with replacement on both sides; degenerate
    resamples (a single repeated trial makes the cross-trial intersection
    trivial) are legitimate members of the bootstrap distribution.
    """
    test_trials = [np.asarray(t) for t in test_trials]
    reference_trials = [np.asarray(t) for t in reference_trials]
    n = min(len(test_trials), len(reference_trials))

    def metric(indices: Sequence[int]) -> float:
        test = [test_trials[i % len(test_trials)] for i in indices]
        ref = [reference_trials[i % len(reference_trials)] for i in indices]
        return conformance(build_envelope(test, config), build_envelope(ref, config))

    return bootstrap_metric(
        metric, n_trials=n, resamples=resamples, confidence=confidence, seed=seed
    )


def jains_fairness_index(throughputs: Sequence[float]) -> float:
    """Jain's index over per-flow throughputs: 1 = perfectly fair."""
    values = np.asarray(list(throughputs), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one throughput")
    if (values < 0).any():
        raise ValueError("throughputs must be non-negative")
    denom = values.size * float((values**2).sum())
    if denom == 0:
        return 1.0
    return float(values.sum() ** 2 / denom)
