"""Reference-free peer conformance: clustering CCAs against each other.

The paper's conformance metric anchors every implementation to a
Linux-kernel reference.  The next wave of algorithms (BBRv2/BBRv3,
GCC-style real-time CCAs, learned CCAs) has no kernel reference, so
this module replaces the anchor with the *peer group* itself:

1. Build one Performance Envelope per peer from its self-competition
   trials (X vs X under the same condition — the same construction the
   kernel reference uses for itself).
2. Compute the pairwise conformance matrix over the peer group; the
   point-weighted PE overlap (:func:`repro.core.conformance.conformance`)
   is symmetric, so ``1 - conformance`` is a proper distance.
3. Cluster the peers against each other — each peer's feature vector
   is its row of the conformance matrix — with the deterministic
   k-means of :mod:`repro.core.clustering`, selecting k by the same
   steepest-drop rule the PE construction uses, applied to the
   *within-cluster conformance mass* retained at each k.
4. Score each peer by its mean conformance to the other members of its
   cluster: the **peer-conformance score**, the drop-in replacement for
   the kernel-reference conformance number.  A singleton peer scores
   its best conformance to *any* peer, so "conforms to nothing" reads
   as a low score rather than a vacuous 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.clustering import KSelection, kmeans, select_k
from repro.core.conformance import conformance
from repro.core.envelope import (
    EnvelopeConfig,
    PerformanceEnvelope,
    build_envelope,
)


def pairwise_conformance_matrix(
    envelopes: Mapping[str, PerformanceEnvelope],
) -> Tuple[List[str], np.ndarray]:
    """Symmetric peer-to-peer conformance matrix, diagonal = 1.

    Peers keep the mapping's insertion order so the matrix layout is
    deterministic for identical inputs.
    """
    names = list(envelopes)
    n = len(names)
    matrix = np.eye(n, dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            value = conformance(envelopes[names[i]], envelopes[names[j]])
            matrix[i, j] = matrix[j, i] = value
    return names, matrix


def peer_distance_matrix(matrix: np.ndarray) -> np.ndarray:
    """PE distance: ``1 - conformance``, zero diagonal."""
    return 1.0 - np.asarray(matrix, dtype=float)


def _within_cluster_retention(matrix: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of off-diagonal conformance mass kept within clusters."""
    n = len(labels)
    total = 0.0
    within = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            total += matrix[i, j]
            if labels[i] == labels[j]:
                within += matrix[i, j]
    if total <= 1e-12:
        # No conformance mass anywhere: every split is as good as none.
        return 1.0
    return within / total


def cluster_peers(
    matrix: np.ndarray,
    seed: int = 0,
    k_max: int = 4,
) -> Tuple[np.ndarray, KSelection]:
    """k-means over conformance-matrix rows with steepest-drop k choice.

    R(k) is the within-cluster conformance mass retained by the k-way
    split: R(1) = 1 and R is non-increasing, the same shape as the PE
    retention curve, so :func:`repro.core.clustering.select_k` applies
    unchanged.
    """
    matrix = np.asarray(matrix, dtype=float)
    n = len(matrix)
    if n == 0:
        raise ValueError("cannot cluster an empty peer group")
    k_max = max(1, min(k_max, n))

    def retention(k: int) -> float:
        result = kmeans(matrix, k, seed=seed, standardize=False)
        return _within_cluster_retention(matrix, result.labels)

    selection = select_k(retention, k_max=k_max)
    labels = kmeans(matrix, selection.k, seed=seed, standardize=False).labels
    return labels, selection


def peer_scores(
    matrix: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Per-peer conformance score against its own cluster.

    Mean conformance to the peer's cluster-mates; a singleton falls
    back to its best conformance to any other peer (0 when alone in
    the whole group is impossible — a one-peer group scores 1.0, its
    self-conformance).
    """
    matrix = np.asarray(matrix, dtype=float)
    n = len(labels)
    if n == 1:
        return np.ones(1, dtype=float)
    scores = np.zeros(n, dtype=float)
    for i in range(n):
        mates = [j for j in range(n) if j != i and labels[j] == labels[i]]
        if mates:
            scores[i] = float(np.mean([matrix[i, j] for j in mates]))
        else:
            others = [matrix[i, j] for j in range(n) if j != i]
            scores[i] = float(np.max(others))
    return scores


@dataclass
class PeerConformanceResult:
    """Full outcome of a reference-free peer-conformance evaluation."""

    peers: List[str]
    #: Symmetric pairwise conformance, diagonal = 1.
    matrix: np.ndarray
    #: Cluster label per peer (aligned with ``peers``).
    labels: np.ndarray
    #: The k-selection trace (retention curve and chosen k).
    selection: KSelection
    #: Peer-conformance score per peer (aligned with ``peers``).
    scores: np.ndarray
    #: The per-peer envelopes the matrix was computed from.
    envelopes: Dict[str, PerformanceEnvelope]

    @property
    def k(self) -> int:
        return self.selection.k

    def distance_matrix(self) -> np.ndarray:
        return peer_distance_matrix(self.matrix)

    def clusters(self) -> Dict[str, int]:
        return {name: int(label) for name, label in zip(self.peers, self.labels)}

    def score_of(self, peer: str) -> float:
        return float(self.scores[self.peers.index(peer)])

    def pair_conformance(self, a: str, b: str) -> float:
        return float(self.matrix[self.peers.index(a), self.peers.index(b)])

    def summary(self) -> dict:
        """JSON-ready digest (matrix row-major, retention curve included)."""
        return {
            "peers": list(self.peers),
            "k": int(self.k),
            "clusters": self.clusters(),
            "scores": {
                name: round(float(score), 4)
                for name, score in zip(self.peers, self.scores)
            },
            "matrix": [
                [round(float(v), 4) for v in row] for row in self.matrix
            ],
            "retention": [round(float(r), 4) for r in self.selection.retention],
        }


def evaluate_peer_conformance(
    trials_by_peer: Mapping[str, Sequence[Sequence]],
    config: EnvelopeConfig = EnvelopeConfig(),
    seed: int = 0,
    k_max: int = 4,
    envelopes: Optional[Mapping[str, PerformanceEnvelope]] = None,
) -> PeerConformanceResult:
    """End-to-end: per-peer trials -> matrix -> clusters -> scores.

    ``trials_by_peer`` maps each peer name to its self-competition
    trials (lists of sampled (delay, throughput) points).  Passing
    pre-built ``envelopes`` skips the PE construction (the campaign
    path builds them once for recording anyway).
    """
    if envelopes is None:
        envelopes = {
            name: build_envelope(trials, config)
            for name, trials in trials_by_peer.items()
        }
    else:
        envelopes = dict(envelopes)
    if not envelopes:
        raise ValueError("peer group must not be empty")
    peers, matrix = pairwise_conformance_matrix(envelopes)
    labels, selection = cluster_peers(matrix, seed=seed, k_max=k_max)
    scores = peer_scores(matrix, labels)
    return PeerConformanceResult(
        peers=peers,
        matrix=matrix,
        labels=labels,
        selection=selection,
        scores=scores,
        envelopes=dict(envelopes),
    )


__all__ = [
    "PeerConformanceResult",
    "cluster_peers",
    "evaluate_peer_conformance",
    "pairwise_conformance_matrix",
    "peer_distance_matrix",
    "peer_scores",
]
