"""Command-line interface: ``quicbench`` (or ``python -m repro``).

Subcommands mirror the paper's experiments:

* ``quicbench stacks`` — Table 1 / Table 2 stack inventory.
* ``quicbench conformance --stack quiche --cca cubic`` — one measurement
  with the full metric set and an ASCII envelope plot.
* ``quicbench heatmap --buffer 1`` — a Fig. 6 style conformance bar list.
* ``quicbench fairness --cca cubic`` — a Fig. 12 bandwidth-share matrix.
* ``quicbench intercca`` — a Fig. 13 CUBIC x BBR matrix.
* ``quicbench fixes`` — Table 4 before/after fix verification.
* ``quicbench sweep`` — the Fig. 5 cwnd-gain sweep.

Campaign-style subcommands (heatmap, fairness, intercca, sweep, matrix,
regression) accept ``--jobs N`` to run their trials on N worker
processes via ``repro.exec`` (results are identical to serial),
``--progress`` for per-job progress lines, ``--manifest PATH`` for a
JSONL run log, and ``--store PATH`` to persist trials and metrics into
the ``repro.store`` results warehouse (``--run`` names the stored run).

The warehouse itself is driven by ``quicbench store``:

* ``store ingest`` — load JSONL manifests and disk-cache directories.
* ``store runs`` — list recorded runs and row counts.
* ``store query`` — filtered metric export (table, CSV, JSON).
* ``store diff`` — run-vs-run or run-vs-baseline comparison flagging
  conformance-verdict flips.
* ``store baseline`` — name a run as a regression anchor.
* ``store render`` — re-render a stored run as an SVG heatmap.
* ``store gc`` — purge trial payloads no run links to, then vacuum.

Declarative topologies (``repro.topo``) are driven by ``quicbench topo``:

* ``topo validate`` — strict-parse topology spec files, print fingerprints.
* ``topo run`` — run a topology campaign from files and/or builtin shapes.
* ``topo matrix`` — the fairness matrix: builtin shapes x CCAs.

The pluggable CCA registry (``repro.ccax``) is driven by ``quicbench cca``:

* ``cca list`` — every registered CCA with its capability record.
* ``cca describe`` — one CCA's full registration record as JSON.
* ``cca peer-matrix`` — a reference-free peer-conformance campaign:
  pairwise PE conformance, k-selected clusters and peer scores for a
  CCA group (``--modules`` loads external CCAs with zero core edits).

The long-running campaign service (``repro.service``) is driven by:

* ``quicbench serve`` — boot the HTTP API + scheduler on a warehouse.
* ``quicbench submit`` — POST a campaign spec (JSON file or stdin).
* ``quicbench watch`` — stream a campaign's live progress events.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.harness import reporting
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import conformance_heatmap, measure_conformance
from repro.harness.fairness import inter_cca_matrix, intra_cca_matrix
from repro.stacks import registry


def _add_condition_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bandwidth", type=float, default=20.0, help="Mbps")
    parser.add_argument("--rtt", type=float, default=10.0, help="ms")
    parser.add_argument("--buffer", type=float, default=1.0, help="x BDP")


def _add_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=None, help="seconds")
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trial jobs (1 = serial; results "
        "are identical either way)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-job progress and an executor summary",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="append a JSONL run manifest (per-job status and timing) here",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="persist trials and metrics into this SQLite results "
        "warehouse (repro.store); safe with --jobs",
    )
    parser.add_argument(
        "--run",
        default=None,
        help="run name inside the store (default: derived from the command)",
    )


def _executor(args):
    """Build a repro.exec Executor from CLI flags, or None for pure serial."""
    jobs = getattr(args, "jobs", 1)
    progress = getattr(args, "progress", False)
    manifest = getattr(args, "manifest", None)
    store_path = getattr(args, "store", None)
    if jobs <= 1 and not progress and not manifest and not store_path:
        return None
    from repro.exec import Executor, ProgressPrinter

    cache = None
    store = None
    if store_path:
        from repro.store import StoreCache, open_store

        store = open_store(store_path)
        # Three-tier cache: campaigns reuse any trial the warehouse
        # already holds and write new ones through.
        cache = StoreCache(store)
    return Executor(
        jobs=jobs,
        cache=cache,
        progress=ProgressPrinter() if progress else None,
        manifest_path=manifest,
        store=store,
        store_run=getattr(args, "run", None),
    )


def _store_of(executor):
    """The warehouse an executor was built around, if any."""
    if executor is not None and executor.store_sink is not None:
        return executor.store_sink.store
    return None


def _report_executor(executor) -> None:
    if executor is None:
        return
    if getattr(executor, "telemetry", None) is not None:
        print(executor.telemetry.summary())
    store = _store_of(executor)
    executor.close()
    if store is not None:
        counts = store.counts()
        print(
            f"store: {counts['trials']} trials, {counts['measurements']} "
            f"measurements across {counts['runs']} runs"
        )
        store.close()


def _record_share_matrix(store, run_name, matrix, condition) -> None:
    """Persist a fairness/inter-CCA share matrix: one measurement per pair.

    The row label is stored in the ``stack`` column and the column label
    in ``cca`` — a share cell's subject is the (row, col) pairing, not a
    single implementation.
    """
    if store is None:
        return
    import numpy as np

    run = store.ensure_run(run_name, note="bandwidth-share matrix")
    for i, row in enumerate(matrix.rows):
        for j, col in enumerate(matrix.cols):
            value = float(matrix.shares[i, j])
            if np.isnan(value):
                continue
            store.record_metrics(
                run, stack=row, cca=col, metrics={"share": value},
                condition=condition,
            )


def _condition(args) -> NetworkCondition:
    return NetworkCondition(
        bandwidth_mbps=args.bandwidth, rtt_ms=args.rtt, buffer_bdp=args.buffer
    )


def _config(args) -> ExperimentConfig:
    base = ExperimentConfig()
    kwargs = {}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if not kwargs:
        return base
    from dataclasses import replace

    return replace(base, **kwargs)


def cmd_stacks(args) -> int:
    """Print Tables 1 and 2 (stack inventory)."""
    rows = []
    for profile in registry.STACKS.values():
        rows.append(
            [
                profile.organization,
                profile.name,
                profile.version[:12],
                "y" if profile.supports("cubic") else "-",
                "y" if profile.supports("bbr") else "-",
                "y" if profile.supports("reno") else "-",
            ]
        )
    print(
        reporting.format_table(
            ["Organization", "Stack", "Version", "CUBIC", "BBR", "Reno"],
            rows,
            title="Studied stacks and available CCAs (paper Table 1)",
        )
    )
    print()
    rows = [
        [k.organization, k.stack]
        + ["y" if f else "-" for f in (k.open_source, k.implements_cc, k.stable, k.deployed, k.studied)]
        for k in registry.KNOWN_STACKS
    ]
    print(
        reporting.format_table(
            ["Organization", "Stack", "Open", "CC", "Stable", "Deployed", "Studied"],
            rows,
            title="All known IETF QUIC stacks (paper Table 2)",
        )
    )
    return 0


def cmd_conformance(args) -> int:
    """Measure one implementation and print the full metric set."""
    measurement = measure_conformance(
        args.stack, args.cca, _condition(args), _config(args), variant=args.variant
    )
    row = measurement.row()
    print(
        reporting.format_table(
            list(row.keys()), [list(row.values())], title="Conformance measurement"
        )
    )
    if args.svg:
        from repro.viz.charts import envelope_figure

        envelope_figure(
            {
                f"{args.stack} {args.cca}": measurement.result.test_envelope,
                f"kernel {args.cca}": measurement.result.reference_envelope,
            },
            title=f"{args.stack}/{args.cca} vs reference "
            f"(Conf={measurement.conformance:.2f})",
        ).save(args.svg)
        print(f"wrote envelope figure to {args.svg}")
    if args.plot:
        pe = measurement.result.test_envelope
        print()
        print(
            reporting.format_envelope_ascii(
                pe.hulls, pe.all_points, title=f"{args.stack}/{args.cca} envelope"
            )
        )
        ref = measurement.result.reference_envelope
        print()
        print(
            reporting.format_envelope_ascii(
                ref.hulls, ref.all_points, title="kernel reference envelope"
            )
        )
    return 0


def cmd_heatmap(args) -> int:
    """Fig 6-style conformance bars for every implementation."""
    condition = _condition(args)
    executor = _executor(args)
    measurements = conformance_heatmap(
        condition,
        _config(args),
        executor=executor,
        store=_store_of(executor),
        store_run=args.run,
    )
    values = {key: m.conformance for key, m in measurements.items()}
    print(
        reporting.format_conformance_bars(
            values,
            title=f"Conformance at {condition.describe()} (paper Fig. 6)",
        )
    )
    _report_executor(executor)
    return 0


def cmd_fairness(args) -> int:
    """Fig 12-style intra-CCA bandwidth-share matrix."""
    condition = NetworkCondition(
        bandwidth_mbps=args.bandwidth, rtt_ms=args.rtt, buffer_bdp=args.buffer
    )
    executor = _executor(args)
    matrix = intra_cca_matrix(args.cca, condition, _config(args), executor=executor)
    _record_share_matrix(
        _store_of(executor),
        args.run or f"fairness:{args.cca}@{condition.describe()}",
        matrix,
        condition,
    )
    _report_executor(executor)
    print(
        reporting.format_heatmap(
            matrix.rows,
            matrix.cols,
            matrix.shares,
            title=f"Bandwidth shares, {args.cca} (paper Fig. 12); "
            "row value > 0.5 = row wins",
        )
    )
    aggressive = matrix.unfair_rows()
    if aggressive:
        print("\nOverly aggressive:", ", ".join(aggressive))
    return 0


def cmd_intercca(args) -> int:
    """Fig 13-style BBR x CUBIC interaction matrix."""
    condition = NetworkCondition(
        bandwidth_mbps=args.bandwidth, rtt_ms=args.rtt, buffer_bdp=args.buffer
    )
    executor = _executor(args)
    matrix = inter_cca_matrix(
        "bbr", "cubic", condition, _config(args), executor=executor
    )
    _record_share_matrix(
        _store_of(executor),
        args.run or f"intercca:bbr-cubic@{condition.describe()}",
        matrix,
        condition,
    )
    _report_executor(executor)
    print(
        reporting.format_heatmap(
            matrix.rows,
            matrix.cols,
            matrix.shares,
            title="BBR (rows) vs CUBIC (cols) bandwidth share (paper Fig. 13)",
        )
    )
    return 0


def cmd_fixes(args) -> int:
    """Table 4 fix verification (before/after conformance)."""
    from repro.analysis.fixes import evaluate_all_fixes

    outcomes = evaluate_all_fixes(_condition(args), _config(args))
    headers = [
        "stack", "cca", "conf", "conf-T", "dtput", "ddelay",
        "conf'", "conf-T'", "LoC", "remark",
    ]
    rows = []
    for outcome in outcomes:
        r = outcome.row()
        rows.append(
            [
                r["stack"], r["cca"], r["conf_before"], r["conf_t_before"],
                r["dtput_before"], r["ddelay_before"],
                r.get("conf_after", "-"), r.get("conf_t_after", "-"),
                r["loc"] if r["loc"] is not None else "-", r["remark"],
            ]
        )
    print(reporting.format_table(headers, rows, title="Fix verification (paper Table 4)"))
    return 0


def cmd_rootcause(args) -> int:
    """Classify a stack's deviations and run the stack-level screen."""
    from repro.analysis.rootcause import classify, diagnose_stack

    profile = registry.get_stack(args.stack)
    condition = _condition(args)
    config = _config(args)
    measurements = []
    rows = []
    for cca in profile.available_ccas():
        measurement = measure_conformance(args.stack, cca, condition, config)
        measurements.append(measurement)
        hint = classify(measurement.result)
        rows.append(
            [cca, round(measurement.conformance, 2),
             round(measurement.conformance_t, 2),
             f"{measurement.result.delta_throughput_mbps:+.1f}",
             f"{measurement.result.delta_delay_ms:+.1f}",
             hint.suspect.value]
        )
    print(
        reporting.format_table(
            ["CCA", "Conf", "Conf-T", "d-tput", "d-delay", "suspected knob"],
            rows,
            title=f"Root-cause hints for {args.stack} (paper §3.3/§5 reasoning)",
        )
    )
    diagnosis = diagnose_stack(args.stack, measurements)
    print(f"\nstack-level screen: {diagnosis.rationale}")
    return 0


def cmd_regression(args) -> int:
    """Conformance across kernel milestones (§6)."""
    from repro.harness.regression import (
        MILESTONES,
        REGRESSION_RUN_PREFIX,
        flipped_verdicts,
        regression_matrix,
        regression_matrix_from_store,
    )

    if args.from_store:
        if not args.store:
            print("--from-store requires --store PATH", file=sys.stderr)
            return 2
        from repro.store import open_store

        with open_store(args.store) as store:
            rows_data = regression_matrix_from_store(
                store, MILESTONES, run_prefix=args.run or REGRESSION_RUN_PREFIX
            )
        if not rows_data:
            print("store holds no complete milestone runs", file=sys.stderr)
            return 1
    else:
        impls = None
        if args.stack:
            profile = registry.get_stack(args.stack)
            ccas = [args.cca] if args.cca else profile.available_ccas()
            impls = [(args.stack, cca) for cca in ccas]
        executor = _executor(args)
        rows_data = regression_matrix(
            implementations=impls,
            condition=_condition(args),
            config=_config(args),
            executor=executor,
            store=_store_of(executor),
            run_prefix=args.run or REGRESSION_RUN_PREFIX,
        )
        _report_executor(executor)
    milestone_names = [m.name for m in MILESTONES]
    rows = [
        [r.stack, r.cca] + [round(r.conformance[m], 2) for m in milestone_names]
        + ["FLIPS" if r.verdict_flips else ""]
        for r in rows_data
    ]
    print(
        reporting.format_table(
            ["Stack", "CCA"] + milestone_names + ["verdict"],
            rows,
            title="Conformance across kernel milestones (§6 'Keeping up with the kernel')",
        )
    )
    flips = flipped_verdicts(rows_data)
    if flips:
        print("\nimplementations whose verdict depends on the kernel version:")
        for r in flips:
            print(f"  {r.stack}/{r.cca}")
    return 0


def cmd_select(args) -> int:
    """Rank kernel CCAs for an application's desired region."""
    from repro.core.apps import DesiredRegion, select_cca
    from repro.core.envelope import build_envelope
    from repro.harness.conformance import reference_trials

    condition = _condition(args)
    config = _config(args)
    region = DesiredRegion(
        max_delay_ms=args.max_delay,
        min_throughput_mbps=args.min_tput,
        label="cli",
    )
    candidates = {}
    for cca in registry.CCAS:
        trials = reference_trials(cca, condition, config)
        candidates[cca] = build_envelope(trials)
    scores = select_cca(region, candidates)
    rows = [
        [s.name, round(s.point_fraction, 2), round(s.area_fraction, 2)]
        for s in scores
    ]
    print(
        reporting.format_table(
            ["CCA", "points in region", "area in region"],
            rows,
            title=f"CCA ranking for delay<={args.max_delay} ms, "
            f"tput>={args.min_tput} Mbps at {condition.describe()} "
            "(§6 'Extending the PE to other applications')",
        )
    )
    print(f"\nbest match: {scores[0].name}")
    return 0


def cmd_qlog(args) -> int:
    """Run one flow vs the reference and export its qlog/pcap traces."""
    from repro.harness.runner import Impl, reference_impl, run_pair
    from repro.netsim.qlog import write_qlog

    condition = _condition(args)
    config = _config(args)
    result = run_pair(
        Impl(args.stack, args.cca, args.variant),
        reference_impl(args.cca),
        condition,
        duration_s=config.duration_s,
        seed=config.seed,
    )
    write_qlog(result.first.trace, args.out, title=f"{args.stack}/{args.cca}")
    print(f"wrote qlog trace of {args.stack}/{args.cca} to {args.out}")
    print("(view with qvis: https://qvis.quictools.info)")
    if args.pcap:
        from repro.netsim.pcap import write_pcap

        count = write_pcap(result.first.trace, args.pcap)
        print(f"wrote {count}-packet pcap to {args.pcap} (open with wireshark/tcptrace)")
    return 0


def cmd_matrix(args) -> int:
    """Sweep implementations over conditions; export the dataset as CSV."""
    from repro.harness.matrix import run_matrix
    from repro.harness.scenarios import buffer_sweep

    conditions = buffer_sweep(bandwidth_mbps=args.bandwidth, rtt_ms=args.rtt)
    implementations = None
    if args.stack:
        profile = registry.get_stack(args.stack)
        implementations = [(args.stack, cca) for cca in profile.available_ccas()]
    executor = _executor(args)
    result = run_matrix(
        conditions=conditions,
        implementations=implementations,
        config=_config(args),
        progress=lambda msg: print(f"  running {msg}", flush=True),
        executor=executor,
        store=_store_of(executor),
        store_run=args.run or "matrix",
    )
    _report_executor(executor)
    result.save_csv(args.out)
    print(f"wrote {len(result.measurements)} measurements to {args.out}")
    worst = result.worst_cells(3)
    for m in worst:
        print(
            f"  lowest conformance: {m.impl} @ {m.condition.describe()} "
            f"-> {m.conformance:.2f}"
        )
    return 0


def cmd_sweep(args) -> int:
    """Fig 5 cwnd-gain sweep for modified kernel BBR."""
    from repro.analysis.sweeps import cwnd_gain_sweep

    executor = _executor(args)
    points = cwnd_gain_sweep(config=_config(args), executor=executor)
    store = _store_of(executor)
    if store is not None:
        from repro.harness import scenarios

        run = store.ensure_run(
            args.run or "sweep:cwnd_gain", note="Fig. 5 cwnd-gain sweep"
        )
        for p in points:
            store.record_metrics(
                run,
                stack="linux-mod",
                cca="bbr",
                variant=f"cwnd_gain={p.cwnd_gain:g}",
                condition=scenarios.shallow_buffer(),
                metrics={
                    "conf": p.conformance,
                    "conf_t": p.conformance_t,
                    "delta_tput_mbps": p.delta_throughput_mbps,
                    "delta_delay_ms": p.delta_delay_ms,
                },
            )
    _report_executor(executor)
    rows = [list(p.row().values()) for p in points]
    print(
        reporting.format_table(
            ["cwnd_gain", "conf", "conf-T", "dtput", "ddelay"],
            rows,
            title="Kernel BBR cwnd-gain sweep (paper Fig. 5)",
        )
    )
    return 0


def _topo_specs_from_args(args) -> list:
    """Resolve --spec files and --shape builders into TopologySpecs."""
    from repro.topo import spec as topospec

    topologies = []
    for path in args.spec or []:
        topologies.append(topospec.load_topology_spec(path))
    for shape in args.shape or []:
        if shape not in topospec.SHAPES:
            raise topospec.TopoSpecError(
                f"unknown shape {shape!r} "
                f"(known: {', '.join(sorted(topospec.SHAPES))})"
            )
        topologies.append(topospec.SHAPES[shape](args.cca))
    if not topologies:
        raise topospec.TopoSpecError(
            "nothing to run: give --spec FILE and/or --shape NAME"
        )
    return topologies


def _print_topology_results(result: dict) -> None:
    for topo in result["topologies"]:
        rows = [
            [
                f["label"],
                round(f["share"], 3),
                round(f["tput_mbps"], 2),
                "-" if f["convergence_s"] is None else f["convergence_s"],
            ]
            for f in topo["flows"]
        ]
        print(
            reporting.format_table(
                ["flow", "share", "tput_mbps", "convergence_s"],
                rows,
                title=(
                    f"{topo['topology']} [{topo['fingerprint']}]: "
                    f"Jain {topo['jain']:.3f}, "
                    f"utilization {topo['utilization']:.3f}"
                ),
            )
        )
        print()


def cmd_topo_validate(args) -> int:
    """Validate topology spec files; print their fingerprints."""
    from repro.topo import spec as topospec

    status = 0
    for path in args.files:
        try:
            topo = topospec.load_topology_spec(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID: {exc}")
            status = 1
        else:
            print(
                f"{path}: ok — {topo.name} [{topo.fingerprint()}], "
                f"{len(topo.links)} link(s), {len(topo.flows)} flow(s)"
            )
    return status


def cmd_topo_run(args) -> int:
    """Run one topology campaign (files and/or builtin shapes)."""
    from repro.service.specs import SpecError, execute_campaign, parse_campaign_spec
    from repro.topo.spec import TopoSpecError

    try:
        topologies = _topo_specs_from_args(args)
        payload = {
            "kind": "topology",
            "topologies": [t.canonical() for t in topologies],
        }
        if args.duration is not None:
            payload["duration_s"] = args.duration
        if args.trials is not None:
            payload["trials"] = args.trials
        if args.seed is not None:
            payload["seed"] = args.seed
        if args.run:
            payload["run"] = args.run
        spec = parse_campaign_spec(payload)
    except (TopoSpecError, SpecError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    executor = _executor(args)
    result = execute_campaign(spec, _store_of(executor), executor)
    _report_executor(executor)
    _print_topology_results(result)
    print(f"campaign {spec.fingerprint()}: {result['cells']} cells recorded")
    return 0


def cmd_topo_matrix(args) -> int:
    """Fairness matrix: every builtin shape x every requested CCA."""
    from repro.service.specs import SpecError, execute_campaign, parse_campaign_spec
    from repro.topo import spec as topospec

    ccas = args.ccas or list(registry.CCAS)
    topologies = []
    for shape_name in sorted(topospec.SHAPES):
        for cca in ccas:
            topologies.append(topospec.SHAPES[shape_name](cca))
    payload = {
        "kind": "topology",
        "topologies": [t.canonical() for t in topologies],
        "run": args.run or "topo-matrix",
    }
    if args.duration is not None:
        payload["duration_s"] = args.duration
    if args.trials is not None:
        payload["trials"] = args.trials
    if args.seed is not None:
        payload["seed"] = args.seed
    try:
        spec = parse_campaign_spec(payload)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    executor = _executor(args)
    result = execute_campaign(spec, _store_of(executor), executor)
    _report_executor(executor)
    rows = [
        [
            t["topology"],
            round(t["jain"], 3),
            round(t["utilization"], 3),
            "-" if t["convergence_s"] is None else t["convergence_s"],
        ]
        for t in result["topologies"]
    ]
    print(
        reporting.format_table(
            ["topology", "jain", "utilization", "convergence_s"],
            rows,
            title="Fairness matrix (builtin shapes x CCAs)",
        )
    )
    print(f"campaign {spec.fingerprint()}: {result['cells']} cells recorded")
    return 0


def _ccax_registry(args):
    """The ccax registry, with any user modules from --modules loaded."""
    from repro.ccax import registry as ccax

    modules = getattr(args, "modules", None) or []
    if modules:
        ccax.load_modules(modules)
    return ccax


def cmd_cca_list(args) -> int:
    """List every CCA registered with repro.ccax."""
    ccax = _ccax_registry(args)
    rows = []
    for info in ccax.entries():
        caps = info.capabilities
        if caps.host_stacks == "*":
            hosts = "*"
        else:
            hosts = ",".join(caps.host_stacks) or "(deviation tables)"
        rows.append(
            [
                info.name,
                caps.family,
                info.origin,
                "yes" if caps.kernel_reference else "no",
                "yes" if caps.paced else "no",
                "yes" if caps.delay_based else "no",
                hosts,
            ]
        )
    print(
        reporting.format_table(
            ["cca", "family", "origin", "kernel-ref", "paced",
             "delay-based", "hosts"],
            rows,
            title="registered congestion-control algorithms (repro.ccax)",
        )
    )
    return 0


def cmd_cca_describe(args) -> int:
    """One CCA's full registration record, as JSON."""
    ccax = _ccax_registry(args)
    try:
        info = ccax.get(args.name)
    except ccax.UnknownCCA as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(info.describe(), indent=2, sort_keys=True))
    return 0


def cmd_cca_peer_matrix(args) -> int:
    """Reference-free peer-conformance matrix for a CCA peer group."""
    from repro.service.specs import SpecError, execute_campaign, parse_campaign_spec

    payload = {
        "kind": "peer_conformance",
        "peers": list(args.peers),
        "conditions": [
            {
                "bandwidth_mbps": args.bandwidth,
                "rtt_ms": args.rtt,
                "buffer_bdp": args.buffer,
            }
        ],
    }
    if args.host_stack:
        payload["host_stack"] = args.host_stack
    if args.modules:
        payload["cca_modules"] = list(args.modules)
    if args.duration is not None:
        payload["duration_s"] = args.duration
    if args.trials is not None:
        payload["trials"] = args.trials
    if args.seed is not None:
        payload["seed"] = args.seed
    if getattr(args, "run", None):
        payload["run"] = args.run
    try:
        spec = parse_campaign_spec(payload)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    executor = _executor(args)
    result = execute_campaign(spec, _store_of(executor), executor)
    _report_executor(executor)
    for group in result["peer_conformance"]:
        peers = group["peers"]
        matrix_rows = [
            [peer] + [f"{value:.3f}" for value in row]
            for peer, row in zip(peers, group["matrix"])
        ]
        print(
            reporting.format_table(
                ["peer"] + peers,
                matrix_rows,
                title=(
                    f"pairwise conformance @ {group['condition']} "
                    f"(k={group['k']})"
                ),
            )
        )
        print(
            reporting.format_table(
                ["peer", "cluster", "peer-score"],
                [
                    [peer, group["clusters"][peer],
                     f"{group['scores'][peer]:.3f}"]
                    for peer in peers
                ],
            )
        )
        print()
    if args.svg:
        import numpy as np

        from repro.viz.charts import heatmap_figure

        group = result["peer_conformance"][0]
        figure = heatmap_figure(
            group["peers"],
            group["peers"],
            np.array(group["matrix"], dtype=float),
            title=f"peer conformance @ {group['condition']}",
        )
        with open(args.svg, "w") as fh:
            fh.write(figure.to_svg())
        print(f"wrote {args.svg}")
    print(f"campaign {spec.fingerprint()}: {result['cells']} cells recorded")
    return 0


def cmd_store_ingest(args) -> int:
    """Load manifests, a cache directory and/or a sideline spill."""
    from repro.store import (
        ingest_cache_dir,
        ingest_manifest,
        ingest_sideline,
        open_store,
    )

    with open_store(args.db) as store:
        for path in args.manifest:
            report = ingest_manifest(store, path, run_prefix=args.run)
            print(f"{path}: {report.summary()}")
        if args.cache_dir:
            run = store.ensure_run(args.run) if args.run else None
            report = ingest_cache_dir(store, args.cache_dir, run=run)
            print(f"{args.cache_dir}: {report.summary()}")
        for path in args.sideline:
            report = ingest_sideline(store, path)
            print(f"{path}: {report.summary()}")
        if not args.manifest and not args.cache_dir and not args.sideline:
            print(
                "nothing to ingest "
                "(pass --manifest, --cache-dir and/or --sideline)"
            )
            return 2
    return 0


def cmd_chaos(args) -> int:
    """Run the deterministic fault-injection campaign (``repro chaos``)."""
    from repro.faults.chaos import run_chaos

    report = run_chaos(
        matrix=args.matrix,
        workdir=args.workdir,
        duration_s=args.duration,
        trials=args.trials,
        jobs=args.jobs,
        seed=args.seed,
        log=print,
    )
    print()
    print(report.summary())
    return 0 if report.ok() else 1


def cmd_store_runs(args) -> int:
    """List a warehouse's runs and overall row counts."""
    from repro.store import open_store

    with open_store(args.db) as store:
        runs = store.runs()
        baselines = {run: name for name, run in store.baselines().items()}
        rows = []
        for info in runs:
            metric_rows = store.query(run=info.id)
            subjects = {r.subject() for r in metric_rows}
            rows.append(
                [info.id, info.name, len(subjects), len(metric_rows),
                 len(store.trial_keys(info.id)),
                 baselines.get(info.name, "-"),
                 info.note or "-"]
            )
        print(
            reporting.format_table(
                ["id", "run", "subjects", "metrics", "trials", "baseline", "note"],
                rows,
                title=f"runs in {args.db}",
            )
        )
        counts = store.counts()
        print(
            f"\ntotals: {counts['runs']} runs, {counts['trials']} trials, "
            f"{counts['measurements']} measurements, "
            f"{counts['metrics']} metric values, {counts['events']} events"
        )
    return 0


def cmd_store_query(args) -> int:
    """Filtered metric export from a warehouse (table, CSV or JSON)."""
    from repro.store import QUERY_HEADERS, ResultStore, open_store

    with open_store(args.db) as store:
        rows = store.query(
            run=args.run,
            stack=args.stack,
            cca=args.cca,
            variant=args.variant,
            condition=args.condition,
            metric=args.metric,
        )
        if args.format == "csv":
            text = reporting.to_csv(
                QUERY_HEADERS, ResultStore.rows_as_lists(rows)
            )
        elif args.format == "json":
            text = ResultStore.export_json(rows)
        else:
            text = reporting.format_metric_rows(
                rows, title=f"{len(rows)} metric rows"
            )
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text if text.endswith("\n") else text + "\n")
            print(f"wrote {len(rows)} rows to {args.out}")
        else:
            print(text)
    return 0


def cmd_store_diff(args) -> int:
    """Diff two stored runs (or a run against a named baseline)."""
    from repro.store import diff_against_baseline, diff_runs, open_store

    if not args.baseline and not args.run_a:
        print("store diff needs --run-a or --baseline", file=sys.stderr)
        return 2
    with open_store(args.db) as store:
        if args.baseline:
            diff = diff_against_baseline(
                store, args.run_b, args.baseline,
                metric=args.metric, threshold=args.threshold, atol=args.atol,
            )
        else:
            diff = diff_runs(
                store, args.run_a, args.run_b,
                metric=args.metric, threshold=args.threshold, atol=args.atol,
            )
        print(reporting.format_run_diff(diff))
        if args.fail_on_flips and diff.flips:
            return 1
    return 0


def cmd_store_baseline(args) -> int:
    """Name a run as a regression anchor, or list the anchors."""
    from repro.store import open_store

    with open_store(args.db) as store:
        if args.set:
            if not args.run:
                print("--set requires --run", file=sys.stderr)
                return 2
            info = store.run(args.run)
            store.set_baseline(args.set, info)
            print(f"baseline {args.set!r} -> run {info.name!r} (id {info.id})")
            return 0
        baselines = store.baselines()
        if not baselines:
            print("no baselines set")
        for name, run_name in sorted(baselines.items()):
            print(f"{name}: {run_name}")
    return 0


def cmd_store_gc(args) -> int:
    """Purge unlinked trial payloads and vacuum the warehouse file."""
    from repro.store import open_store

    with open_store(args.db) as store:
        report = store.gc(dry_run=args.dry_run)
    verb = "would purge" if args.dry_run else "purged"
    print(
        f"{verb} {report['unlinked']} of {report['trials_total']} trials "
        f"({report['unlinked_bytes'] / 1e6:.2f} MB of payload)"
    )
    if not args.dry_run:
        print(
            f"vacuumed: {report['size_before'] / 1e6:.2f} MB -> "
            f"{report['size_after'] / 1e6:.2f} MB"
        )
    return 0


def cmd_serve(args) -> int:
    """Boot the campaign service (HTTP API + scheduler) on a warehouse."""
    from repro.service import ServiceApp

    app = ServiceApp(
        store_path=args.db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        exec_jobs=args.jobs,
        max_pending=args.max_pending,
    )
    app.install_signal_handlers()
    app.start()
    if app.resumed:
        print(f"resumed {len(app.resumed)} pending campaign(s) from the journal")
    print(f"repro service listening on {app.url} (store: {args.db})", flush=True)
    app.wait()
    print("repro service stopped (pending campaigns remain journaled)")
    return 0


def _read_spec(path: str) -> dict:
    import json

    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"spec is not valid JSON: {exc}")


def _print_event(event: dict) -> None:
    kind = event.get("event", "?")
    if kind == "trial":
        print(
            f"  [{event.get('done')}/{event.get('total')}] "
            f"{event.get('label')}: {event.get('status')}"
        )
    elif kind == "state":
        suffix = f" ({event['error']})" if event.get("error") else ""
        print(f"state: {event.get('state')}{suffix}")
    else:
        print(f"{kind}")


def cmd_submit(args) -> int:
    """Submit a campaign spec to a running service."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    spec = _read_spec(args.spec)
    try:
        campaign = client.submit_blocking(
            spec, priority=args.priority, tenant=args.tenant
        )
    except ServiceError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        return 1
    print(f"campaign {campaign['id']} queued (runs: {', '.join(campaign['runs'])})")
    if not args.wait and not args.watch:
        return 0
    if args.watch:
        for event in client.stream(campaign["id"]):
            _print_event(event)
    final = client.wait(campaign["id"], raise_on_failure=False)
    statuses = ", ".join(
        f"{count} {status}" for status, count in
        sorted(final["trial_statuses"].items())
    ) or "no trials"
    print(f"campaign {final['id']}: {final['state']} ({statuses})")
    return 0 if final["state"] == "done" else 1


def cmd_watch(args) -> int:
    """Stream one campaign's live progress events from a service."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        for event in client.stream(args.id, after=args.after):
            _print_event(event)
        final = client.wait(args.id, raise_on_failure=False)
    except ServiceError as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return 1
    return 0 if final["state"] == "done" else 1


def cmd_fabric_serve(args) -> int:
    """Boot the fabric coordinator: durable queue + HTTP front door."""
    from repro.fabric.coordinator import Coordinator
    from repro.fabric.frontdoor import FabricFrontDoor
    from repro.service.server import ServiceApp

    if args.shards and args.shards > 1:
        # Materialise (or open) the sharded layout up front so every
        # later open_store() on this path sees the manifest.
        from repro.store import open_store

        with open_store(args.db, shards=args.shards) as store:
            report = store.shard_report()
        print(
            f"sharded warehouse at {args.db} "
            f"({report['shards']} shards, {len(report['lost'])} lost)"
        )
    coordinator = Coordinator(
        args.db,
        exec_jobs=args.jobs,
        max_pending=args.max_pending,
        lease_ttl_s=args.lease_ttl,
        max_attempts=args.max_attempts,
    )
    for entry in args.tenant or []:
        name, _, weight = entry.partition(":")
        coordinator.ensure_tenant(name, weight=int(weight) if weight else 1)
    if args.threaded:
        app = ServiceApp(
            args.db, host=args.host, port=args.port, scheduler=coordinator
        )
    else:
        app = FabricFrontDoor(
            args.db, host=args.host, port=args.port, scheduler=coordinator
        )
    app.install_signal_handlers()
    app.start()
    if app.resumed:
        print(f"resumed {len(app.resumed)} pending campaign(s) from the journal")
    front = "threaded" if args.threaded else "async"
    print(
        f"repro fabric coordinator listening on {app.url} "
        f"({front} front door, store: {args.db})",
        flush=True,
    )
    app.wait()
    print("repro fabric coordinator stopped (queue remains durable)")
    return 0


def cmd_fabric_worker(args) -> int:
    """Run a fabric worker: lease campaigns from a coordinator and
    execute them through the standard exec+store pipeline."""
    import os as _os
    import signal

    from repro.fabric.worker import FabricWorker, HttpTransport

    name = args.name or f"worker-{_os.getpid()}"
    worker = FabricWorker(
        HttpTransport(args.url),
        name=name,
        store_path=args.store,
        scratch_dir=args.scratch,
        jobs=args.jobs,
        poll_s=args.poll,
        ttl_s=args.ttl,
        version=args.worker_version,
        drain_policy=args.drain_policy,
        log=lambda msg: print(msg, flush=True),
    )

    def _terminate(signum, frame):
        worker.stop()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    mode = "shared store" if args.store else "remote (result bundles)"
    print(f"{name}: polling {args.url} ({mode})", flush=True)
    handled = worker.run(once=args.once, max_tasks=args.max_tasks)
    print(f"{name}: exiting after {handled} task(s)")
    return 0


def cmd_fabric_status(args) -> int:
    """Snapshot a coordinator's queue: depth, tenants, live leases."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        status = client.fabric_status()
    except ServiceError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    states = ", ".join(
        f"{count} {state}" for state, count in sorted(status["states"].items())
    ) or "empty"
    print(f"queue depth {status['depth']} ({states})")
    if status["tenants"]:
        print("tenants:")
        for name, t in sorted(status["tenants"].items()):
            quota = ""
            if t.get("max_pending") is not None:
                quota += f" max_pending={t['max_pending']}"
            if t.get("max_active") is not None:
                quota += f" max_active={t['max_active']}"
            print(
                f"  {name:<16} weight={t['weight']} "
                f"pending={t['pending']} leased={t['leased']} "
                f"done={t['done']} failed={t['failed']}{quota}"
            )
    if status["leases"]:
        print("leases:")
        for lease in status["leases"]:
            print(
                f"  {lease['campaign']} -> {lease['owner']} "
                f"(tenant {lease['tenant']}, attempt {lease['attempt']}, "
                f"expires in {lease['expires_in_s']:.1f}s)"
            )
    if status.get("workers"):
        print("workers:")
        for w in status["workers"]:
            version = f" v{w['version']}" if w.get("version") else ""
            print(
                f"  {w['name']:<16} {w['state']}{version} "
                f"heartbeat {w['heartbeat_age_s']:.1f}s ago, "
                f"{w['leases']} lease(s) held, "
                f"{w['leases_total']} completed"
            )
    return 0


def cmd_fabric_drain(args) -> int:
    """Set the durable drain directive on a worker: it finishes (or
    hands back) its lease, deregisters and exits — never killed."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        info = client.fabric_drain(args.worker)
    except ServiceError as exc:
        print(f"drain failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"{info['name']}: draining ({info['leases']} lease(s) "
        "to finish before exit)"
    )
    return 0


def cmd_fabric_supervise(args) -> int:
    """Run the fleet supervisor: liveness reaping, backlog autoscaling
    and (with --roll) a lease-safe rolling upgrade."""
    import subprocess

    from repro.fabric.queue import WorkQueue
    from repro.fabric.supervisor import FleetSupervisor, SupervisorConfig

    def spawn(name: str, version: str):
        cmd = [
            sys.executable, "-m", "repro", "fabric", "worker",
            "--url", args.url, "--name", name,
            "--poll", str(args.poll), "--ttl", str(args.ttl),
        ]
        if version:
            cmd += ["--version", version]
        if args.store:
            cmd += ["--store", args.store]
        if args.jobs != 1:
            cmd += ["--jobs", str(args.jobs)]
        print(f"supervisor: spawning {name}" + (f" v{version}" if version else ""))
        return subprocess.Popen(cmd)

    config = SupervisorConfig(
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        backlog_per_worker=args.backlog_per_worker,
        heartbeat_timeout_s=args.heartbeat_timeout,
        version=args.fleet_version,
    )
    with WorkQueue(args.db) as queue:
        supervisor = FleetSupervisor(queue, config=config, spawn=spawn)
        if args.roll:
            result = supervisor.roll(args.roll)
            print(
                f"rolled fleet to {args.roll!r}: replaced "
                f"{len(result['replaced'])} worker(s) "
                f"({', '.join(result['replaced']) or 'none'})"
            )
            return 0
        import time as _time

        remaining = args.ticks
        try:
            while True:
                d = supervisor.tick().as_dict()
                if d["spawned"] or d["drained"] or d["dead"]:
                    print(
                        f"supervisor: backlog={d['backlog']} "
                        f"live={d['live']} desired={d['desired']} "
                        f"spawned={d['spawned']} drained={d['drained']} "
                        f"dead={d['dead']}"
                    )
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        break
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            print("supervisor: interrupted (fleet keeps running)")
    return 0


def cmd_store_render(args) -> int:
    """Re-render a stored run as an SVG heatmap."""
    from repro.store import open_store
    from repro.viz import stored_heatmap_figure

    with open_store(args.db) as store:
        figure = stored_heatmap_figure(store, args.run, metric=args.metric)
        figure.save(args.out)
    print(f"wrote {args.metric} heatmap of run {args.run!r} to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The quicbench argument parser (one subcommand per experiment)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="quicbench",
        description="Conformance testing for QUIC congestion control "
        "(reproduction of Mishra & Leong, IMC 2023).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stacks", help="list studied and known stacks").set_defaults(
        fn=cmd_stacks
    )

    p = sub.add_parser("conformance", help="measure one implementation")
    p.add_argument("--stack", required=True, choices=sorted(registry.STACKS))
    p.add_argument("--cca", required=True,
                   choices=list(registry.registered_ccas()))
    p.add_argument("--variant", default="default")
    p.add_argument("--plot", action="store_true", help="ASCII envelope plots")
    p.add_argument("--svg", default=None, help="write an SVG envelope figure")
    _add_condition_args(p)
    _add_experiment_args(p)
    p.set_defaults(fn=cmd_conformance)

    p = sub.add_parser("heatmap", help="conformance of all implementations")
    _add_condition_args(p)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_heatmap)

    p = sub.add_parser("fairness", help="intra-CCA bandwidth-share matrix")
    p.add_argument("--cca", required=True,
                   choices=list(registry.registered_ccas()))
    _add_condition_args(p)
    p.set_defaults(bandwidth=20.0, rtt=50.0, buffer=1.0)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_fairness)

    p = sub.add_parser("intercca", help="BBR vs CUBIC interaction matrix")
    _add_condition_args(p)
    p.set_defaults(bandwidth=20.0, rtt=50.0, buffer=1.0)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_intercca)

    p = sub.add_parser("fixes", help="Table 4 fix verification")
    _add_condition_args(p)
    _add_experiment_args(p)
    p.set_defaults(fn=cmd_fixes)

    p = sub.add_parser("sweep", help="Fig. 5 cwnd-gain sweep")
    _add_condition_args(p)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("rootcause", help="classify a stack's deviations")
    p.add_argument("--stack", required=True, choices=sorted(registry.STACKS))
    _add_condition_args(p)
    _add_experiment_args(p)
    p.set_defaults(fn=cmd_rootcause)

    p = sub.add_parser("regression", help="conformance across kernel milestones")
    p.add_argument("--stack", default=None, choices=sorted(registry.STACKS))
    p.add_argument("--cca", default=None, choices=list(registry.CCAS),
                   help="restrict to one CCA (requires --stack)")
    p.add_argument("--from-store", action="store_true",
                   help="rebuild the matrix from stored milestone runs "
                   "instead of recomputing (requires --store)")
    _add_condition_args(p)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_regression)

    p = sub.add_parser("select", help="rank CCAs for an application's region")
    p.add_argument("--max-delay", type=float, required=True, help="ms")
    p.add_argument("--min-tput", type=float, default=0.0, help="Mbps")
    _add_condition_args(p)
    _add_experiment_args(p)
    p.set_defaults(fn=cmd_select)

    p = sub.add_parser("qlog", help="export a flow's qlog (and pcap) trace")
    p.add_argument("--stack", required=True, choices=sorted(registry.STACKS))
    p.add_argument("--cca", required=True,
                   choices=list(registry.registered_ccas()))
    p.add_argument("--variant", default="default")
    p.add_argument("--out", required=True)
    p.add_argument("--pcap", default=None, help="also write a pcap here")
    _add_condition_args(p)
    _add_experiment_args(p)
    p.set_defaults(fn=cmd_qlog)

    p = sub.add_parser("matrix", help="buffer-sweep dataset export (CSV)")
    p.add_argument("--stack", default=None, choices=sorted(registry.STACKS),
                   help="restrict to one stack (default: all 22 impls)")
    p.add_argument("--out", required=True)
    _add_condition_args(p)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_matrix)

    store = sub.add_parser(
        "store", help="query the repro.store results warehouse"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_parser(name: str, help_text: str) -> argparse.ArgumentParser:
        sp = store_sub.add_parser(name, help=help_text)
        sp.add_argument("--db", required=True, help="warehouse SQLite file")
        return sp

    p = _store_parser("ingest", "load manifests / cache dirs into a store")
    p.add_argument("--manifest", action="append", default=[],
                   help="JSONL run manifest to ingest (repeatable)")
    p.add_argument("--cache-dir", default=None,
                   help="disk-cache directory of .npy trial payloads")
    p.add_argument("--sideline", action="append", default=[],
                   help="sideline spill file written while the store "
                   "sink's circuit breaker was open (repeatable)")
    p.add_argument("--run", default=None,
                   help="run-name prefix for manifests / run for cache trials")
    p.set_defaults(fn=cmd_store_ingest)

    p = _store_parser("runs", "list recorded runs and row counts")
    p.set_defaults(fn=cmd_store_runs)

    p = _store_parser("query", "filtered metric export")
    p.add_argument("--run", default=None, help="restrict to one run (name)")
    p.add_argument("--stack", default=None)
    p.add_argument("--cca", default=None)
    p.add_argument("--variant", default=None)
    p.add_argument("--condition", default=None,
                   help="condition describe() string, e.g. 20mbps-10ms-1bdp")
    p.add_argument("--metric", default=None, help="e.g. conf, conf_t, share")
    p.add_argument("--format", choices=["table", "csv", "json"],
                   default="table")
    p.add_argument("--out", default=None, help="write here instead of stdout")
    p.set_defaults(fn=cmd_store_query)

    p = _store_parser("diff", "compare two runs; flag verdict flips")
    p.add_argument("--run-a", default=None, help="before run (name)")
    p.add_argument("--run-b", required=True, help="after run (name)")
    p.add_argument("--baseline", default=None,
                   help="diff --run-b against this named baseline instead "
                   "of --run-a")
    p.add_argument("--metric", default="conf")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="conformance verdict threshold")
    p.add_argument("--atol", type=float, default=0.0,
                   help="ignore value moves at or below this tolerance")
    p.add_argument("--fail-on-flips", action="store_true",
                   help="exit 1 if any verdict flipped (for CI)")
    p.set_defaults(fn=cmd_store_diff)

    p = _store_parser("baseline", "set or list named baselines")
    p.add_argument("--set", default=None, metavar="NAME",
                   help="name the baseline to (re)point")
    p.add_argument("--run", default=None, help="run the baseline points at")
    p.set_defaults(fn=cmd_store_baseline)

    p = _store_parser("render", "SVG heatmap of one stored run")
    p.add_argument("--run", required=True)
    p.add_argument("--metric", default="conf")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_store_render)

    p = _store_parser("gc", "purge unlinked trial payloads and vacuum")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would be purged without touching the file")
    p.set_defaults(fn=cmd_store_gc)

    p = sub.add_parser(
        "serve", help="run the campaign service (HTTP API + scheduler)"
    )
    p.add_argument("--db", required=True, help="warehouse SQLite file")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8437,
                   help="TCP port (0 = pick a free one; the chosen port "
                   "is printed on the listening line)")
    p.add_argument("--workers", type=int, default=1,
                   help="campaigns that may run concurrently")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per campaign (per-campaign "
                   "concurrency limit)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="queued-campaign cap; beyond it POST /campaigns "
                   "returns 429 + Retry-After")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="submit a campaign spec to a service")
    p.add_argument("--url", required=True, help="service base URL")
    p.add_argument("--spec", required=True,
                   help="campaign spec JSON file ('-' reads stdin)")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--tenant", default=None,
                   help="tenant the campaign is billed to (fabric "
                   "deployments schedule fairly across tenants)")
    p.add_argument("--wait", action="store_true",
                   help="block until the campaign finishes")
    p.add_argument("--watch", action="store_true",
                   help="stream progress events while waiting")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("watch", help="stream a campaign's progress events")
    p.add_argument("--url", required=True, help="service base URL")
    p.add_argument("id", help="campaign id (from submit)")
    p.add_argument("--after", type=int, default=0,
                   help="resume the event stream after this cursor")
    p.set_defaults(fn=cmd_watch)

    topo = sub.add_parser(
        "topo", help="declarative topology & flow-spec campaigns (repro.topo)"
    )
    topo_sub = topo.add_subparsers(dest="topo_command", required=True)

    p = topo_sub.add_parser("validate", help="validate topology spec files")
    p.add_argument("files", nargs="+", help="topology spec JSON files")
    p.set_defaults(fn=cmd_topo_validate)

    def _topo_inputs(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--spec", action="append", default=[],
                        help="topology spec JSON file (repeatable)")
        sp.add_argument("--shape", action="append", default=[],
                        help="builtin shape: dumbbell, chain, parking-lot "
                        "(repeatable)")
        sp.add_argument("--cca", default="cubic",
                        help="CCA used by builtin shapes")

    p = topo_sub.add_parser(
        "run", help="run a topology campaign from files and/or shapes"
    )
    _topo_inputs(p)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_topo_run)

    p = topo_sub.add_parser(
        "matrix", help="fairness matrix: builtin shapes x CCAs"
    )
    p.add_argument("--ccas", nargs="*", default=None,
                   choices=list(registry.registered_ccas()),
                   help="CCAs to sweep (default: the kernel-reference trio)")
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_topo_matrix)

    cca = sub.add_parser(
        "cca", help="the pluggable CCA registry (repro.ccax)"
    )
    cca_sub = cca.add_subparsers(dest="cca_command", required=True)

    def _cca_modules(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--modules", action="append", default=[],
                        help="user module (file path or import name) "
                        "registering external CCAs (repeatable)")

    p = cca_sub.add_parser("list", help="list registered CCAs")
    _cca_modules(p)
    p.set_defaults(fn=cmd_cca_list)

    p = cca_sub.add_parser(
        "describe", help="one CCA's registration record as JSON"
    )
    p.add_argument("name", help="registered CCA name")
    _cca_modules(p)
    p.set_defaults(fn=cmd_cca_describe)

    p = cca_sub.add_parser(
        "peer-matrix",
        help="reference-free peer-conformance matrix for a CCA group",
    )
    p.add_argument("--peers", nargs="+", required=True,
                   help="CCA peer group (registered names)")
    p.add_argument("--host-stack", default=None,
                   help="neutral host stack carrying the peers "
                   "(default: linux)")
    p.add_argument("--svg", default=None,
                   help="write the matrix panel SVG here")
    _cca_modules(p)
    _add_condition_args(p)
    _add_experiment_args(p)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_cca_peer_matrix)

    fabric = sub.add_parser(
        "fabric", help="distributed campaign fabric (repro.fabric)"
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    p = fabric_sub.add_parser(
        "serve", help="run the coordinator: durable queue + front door"
    )
    p.add_argument("--db", required=True, help="warehouse SQLite file")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8437,
                   help="TCP port (0 = pick a free one; the chosen port "
                   "is printed on the listening line)")
    p.add_argument("--jobs", type=int, default=1,
                   help="executor jobs per campaign (workers inherit)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="queued-campaign cap; beyond it POST /campaigns "
                   "returns 429 + Retry-After")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   help="seconds a worker lease lives between heartbeats")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="lease attempts before a task fails for good")
    p.add_argument("--tenant", action="append", default=[],
                   metavar="NAME[:WEIGHT]",
                   help="pre-register a tenant with a DRR weight "
                   "(repeatable)")
    p.add_argument("--threaded", action="store_true",
                   help="serve on the thread-per-connection front end "
                   "instead of the asyncio front door")
    p.add_argument("--shards", type=int, default=None,
                   help="open/create the warehouse as a sharded layout "
                   "with this many shards (a directory of shard-NNN.db "
                   "files; trials are hash-routed, meta stays in shard 0)")
    p.set_defaults(fn=cmd_fabric_serve)

    p = fabric_sub.add_parser(
        "worker", help="run a worker agent against a coordinator"
    )
    p.add_argument("--url", required=True, help="coordinator base URL")
    p.add_argument("--name", default=None,
                   help="worker name (default: worker-<pid>)")
    p.add_argument("--store", default=None,
                   help="shared warehouse file (same host/filesystem as "
                   "the coordinator); omit to run remote and ship "
                   "result bundles")
    p.add_argument("--scratch", default=None,
                   help="scratch directory for remote-mode stores")
    p.add_argument("--jobs", type=int, default=1,
                   help="executor processes per campaign")
    p.add_argument("--poll", type=float, default=0.5,
                   help="seconds between empty lease polls")
    p.add_argument("--ttl", type=float, default=30.0,
                   help="lease TTL requested from the coordinator")
    p.add_argument("--once", action="store_true",
                   help="exit at the first empty poll (drain mode)")
    p.add_argument("--max-tasks", type=int, default=None,
                   help="exit after handling this many tasks")
    p.add_argument("--version", dest="worker_version", default="",
                   help="code version stamped in the worker registry "
                   "(rolling upgrades drain workers on stale versions)")
    p.add_argument("--drain-policy", choices=("finish", "handback"),
                   default="finish",
                   help="on drain: finish the current lease (default) "
                   "or hand it back retryably and exit at once")
    p.set_defaults(fn=cmd_fabric_worker)

    p = fabric_sub.add_parser(
        "status", help="queue depth, tenants, live leases and workers"
    )
    p.add_argument("--url", required=True, help="coordinator base URL")
    p.set_defaults(fn=cmd_fabric_status)

    p = fabric_sub.add_parser(
        "drain", help="ask one worker to finish its lease and exit"
    )
    p.add_argument("--url", required=True, help="coordinator base URL")
    p.add_argument("worker", help="registered worker name")
    p.set_defaults(fn=cmd_fabric_drain)

    p = fabric_sub.add_parser(
        "supervise",
        help="fleet supervisor: liveness, autoscaling, rolling upgrade",
    )
    p.add_argument("--db", required=True,
                   help="the coordinator's warehouse (registry + queue)")
    p.add_argument("--url", required=True,
                   help="coordinator base URL handed to spawned workers")
    p.add_argument("--min-workers", type=int, default=1)
    p.add_argument("--max-workers", type=int, default=4)
    p.add_argument("--backlog-per-worker", type=int, default=2,
                   help="pending+leased tasks each worker should absorb")
    p.add_argument("--heartbeat-timeout", type=float, default=60.0,
                   help="heartbeat age past which a worker is declared "
                   "dead and reaped from the registry")
    p.add_argument("--fleet-version", default="",
                   help="version stamped on workers this supervisor spawns")
    p.add_argument("--roll", default=None, metavar="VERSION",
                   help="perform a lease-safe rolling upgrade to VERSION "
                   "and exit (spawn replacement, await heartbeat, drain "
                   "old, await exit — one worker at a time)")
    p.add_argument("--store", default=None,
                   help="--store passed to spawned workers (shared-store "
                   "mode); omit for remote result bundles")
    p.add_argument("--jobs", type=int, default=1,
                   help="--jobs passed to spawned workers")
    p.add_argument("--poll", type=float, default=0.5,
                   help="--poll passed to spawned workers")
    p.add_argument("--ttl", type=float, default=30.0,
                   help="--ttl passed to spawned workers")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between supervision ticks")
    p.add_argument("--ticks", type=int, default=None,
                   help="stop after this many ticks (default: run forever)")
    p.set_defaults(fn=cmd_fabric_supervise)

    p = sub.add_parser(
        "chaos",
        help="fault-injection campaign proving the pipeline invariant",
    )
    p.add_argument("--matrix", default="smoke",
                   help="named fault matrix: smoke (fast, CI) or default "
                   "(every fault class incl. the service round trip)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="simulated seconds per trial")
    p.add_argument("--trials", type=int, default=1)
    p.add_argument("--jobs", type=int, default=2,
                   help="pool workers for the worker-fault classes")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-schedule seed (same seed, same faults)")
    p.add_argument("--workdir", default=None,
                   help="scratch directory (default: a fresh temp dir); "
                   "per-class stores/manifests/sidelines are left here")
    p.set_defaults(fn=cmd_chaos)

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
