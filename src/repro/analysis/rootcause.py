"""Automatic root-cause hints from conformance metrics.

§6 "Systematic Root Cause Analysis" sketches the paper's future work:
correlate the metric set (Conformance, Conformance-T, Δ-throughput,
Δ-delay) with the knob most likely mistuned.  This module implements that
classifier using the paper's own reasoning (§3.3):

* high Conf-T with (Δ-tput > 0, Δ-delay ≈ 0) — the implementation pushes
  more *rate* without queueing more: a pacing/sending-rate overshoot
  (mvfst BBR's 1.25x pacing);
* high Conf-T with (Δ-tput > 0, Δ-delay > 0) — more data in flight *and*
  more queueing: a cwnd-style overshoot (BBR cwnd gain, CUBIC emulated
  connections);
* high Conf-T with Δ-tput < 0 — a systematic deficit; with the CCA code
  verified compliant this indicates a stack-level artifact (xquic Reno,
  neqo CUBIC);
* low Conf-T — the envelope *shape* differs, pointing at algorithmic or
  missing-mechanism differences (e.g. missing HyStart) rather than
  parameter tuning.

It also implements the paper's stack-level screen: if all CCAs of one
stack deviate the same qualitative way, suspect the stack, not the CCAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List

from repro.core.conformance import ConformanceResult
from repro.harness.conformance import ConformanceMeasurement


class Suspect(Enum):
    """The knob (or layer) a deviation points at."""

    CONFORMANT = "conformant"
    SENDING_RATE = "sending-rate/pacing overshoot"
    CWND_OVERSHOOT = "cwnd overshoot"
    STACK_DEFICIT = "stack-level throughput deficit"
    DELAY_SHIFT = "queueing/delay offset"
    ALGORITHMIC = "algorithmic or missing-mechanism difference"


@dataclass(frozen=True)
class RootCauseHint:
    """Classifier verdict for one implementation."""

    suspect: Suspect
    #: How confidently the metric pattern matches the verdict, [0, 1].
    confidence: float
    rationale: str

    def __str__(self) -> str:
        return f"{self.suspect.value} (confidence {self.confidence:.2f}): {self.rationale}"


#: Thresholds, in the units the metrics are reported in.
CONFORMANT_THRESHOLD = 0.5
TUNABLE_GAP = 0.15
TPUT_EPS_MBPS = 1.0
DELAY_EPS_MS = 1.5


def classify(result: ConformanceResult) -> RootCauseHint:
    """Map one metric set to a root-cause hint (§3.3 reasoning)."""
    conf = result.conformance
    conf_t = result.conformance_t
    dt = result.delta_throughput_mbps
    dd = result.delta_delay_ms

    if conf >= CONFORMANT_THRESHOLD:
        return RootCauseHint(
            Suspect.CONFORMANT,
            confidence=min(1.0, conf),
            rationale=f"conformance {conf:.2f} is above the {CONFORMANT_THRESHOLD} bar",
        )

    translatable = conf_t - conf >= TUNABLE_GAP
    if not translatable:
        return RootCauseHint(
            Suspect.ALGORITHMIC,
            confidence=min(1.0, 1 - conf_t + conf),
            rationale=(
                f"Conf-T {conf_t:.2f} barely improves on Conf {conf:.2f}: the "
                "envelope shape itself differs, so suspect the algorithm or a "
                "missing mechanism, not a parameter"
            ),
        )

    # The envelope is a translated copy: read the translation vector.
    if dt > TPUT_EPS_MBPS and abs(dd) <= DELAY_EPS_MS:
        return RootCauseHint(
            Suspect.SENDING_RATE,
            confidence=_confidence(conf_t, conf),
            rationale=(
                f"Δ-tput {dt:+.1f} Mbps with Δ-delay {dd:+.1f} ms: more "
                "throughput without more queueing points at the sending "
                "rate (pacing) knob"
            ),
        )
    if dt > TPUT_EPS_MBPS and dd > DELAY_EPS_MS:
        return RootCauseHint(
            Suspect.CWND_OVERSHOOT,
            confidence=_confidence(conf_t, conf),
            rationale=(
                f"Δ-tput {dt:+.1f} Mbps and Δ-delay {dd:+.1f} ms both "
                "positive: more data in flight points at the cwnd knob"
            ),
        )
    if dt < -TPUT_EPS_MBPS:
        return RootCauseHint(
            Suspect.STACK_DEFICIT,
            confidence=_confidence(conf_t, conf),
            rationale=(
                f"Δ-tput {dt:+.1f} Mbps: a systematic deficit; if the CCA "
                "code audits clean, suspect the surrounding stack"
            ),
        )
    return RootCauseHint(
        Suspect.DELAY_SHIFT,
        confidence=0.5 * _confidence(conf_t, conf),
        rationale=(
            f"throughput matches (Δ-tput {dt:+.1f} Mbps) but the envelope "
            f"is shifted in delay (Δ-delay {dd:+.1f} ms)"
        ),
    )


def _confidence(conf_t: float, conf: float) -> float:
    return max(0.0, min(1.0, conf_t - conf + 0.4))


@dataclass(frozen=True)
class StackDiagnosis:
    """Stack-level screen over all of one stack's CCA implementations."""

    stack: str
    per_cca: Dict[str, RootCauseHint]
    stack_level_suspected: bool
    rationale: str


def diagnose_stack(
    stack: str,
    measurements: Iterable[ConformanceMeasurement],
) -> StackDiagnosis:
    """§6: same qualitative deviation across all CCAs -> blame the stack.

    ``measurements`` must all belong to ``stack`` (one per CCA).
    """
    per_cca: Dict[str, RootCauseHint] = {}
    signs: List[int] = []
    nonconformant = 0
    for m in measurements:
        if m.impl.stack != stack:
            raise ValueError(f"measurement {m.impl} does not belong to {stack!r}")
        hint = classify(m.result)
        per_cca[m.impl.cca] = hint
        if hint.suspect is not Suspect.CONFORMANT:
            nonconformant += 1
            dt = m.result.delta_throughput_mbps
            signs.append(0 if abs(dt) <= TPUT_EPS_MBPS else (1 if dt > 0 else -1))

    if not per_cca:
        raise ValueError("no measurements supplied")

    same_direction = len(set(signs)) == 1 and signs and signs[0] != 0
    stack_level = nonconformant == len(per_cca) and len(per_cca) >= 2 and same_direction
    if stack_level:
        direction = "below" if signs[0] < 0 else "above"
        rationale = (
            f"all {len(per_cca)} CCA implementations of {stack} deviate "
            f"{direction} the reference in the same direction: the root "
            "cause likely lies in the stack, not the CCAs"
        )
    else:
        rationale = (
            f"{nonconformant}/{len(per_cca)} CCA implementations deviate; "
            "no common direction, so treat each CCA separately"
        )
    return StackDiagnosis(
        stack=stack,
        per_cca=per_cca,
        stack_level_suspected=stack_level,
        rationale=rationale,
    )
