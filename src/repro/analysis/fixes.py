"""Fix verification: Table 4 and Figures 14/15.

The paper proposes small modifications to four low-conformance
implementations and verifies each by re-measuring conformance.  Every
case is encoded here as a :class:`FixCase` (stack, CCA, the fixed
variant, and the reference variant to measure against), and
:func:`evaluate_fix` reproduces the before/after comparison.

The xquic CUBIC row is special: the paper did not fix it but verified the
root cause (missing HyStart) by measuring against *kernel CUBIC with
HyStart disabled* — expressed here as ``reference_variant="nohystart"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.conformance import ConformanceMeasurement, measure_conformance
from repro.harness.runner import Impl, reference_impl, run_pair, _trial_seed
from repro.harness import scenarios


@dataclass(frozen=True)
class FixCase:
    """One row of Table 4."""

    stack: str
    cca: str
    #: Variant implementing the fix, or None when the paper only verified
    #: the root cause without fixing (xquic CUBIC).
    fixed_variant: Optional[str]
    #: Kernel variant used as the reference for the *verification* run.
    reference_variant: str = "default"
    #: Paper's description of the modification.
    remark: str = ""
    #: Lines of code the paper's modification took (None when unfixed).
    loc: Optional[int] = None


FIXES: List[FixCase] = [
    FixCase(
        "chromium",
        "cubic",
        "fixed",
        remark="Emulated flows reduced from 2 to 1",
        loc=1,
    ),
    FixCase(
        "mvfst",
        "bbr",
        "fixed",
        remark="pacing gain reduced from 1.25 to 1",
        loc=2,
    ),
    FixCase(
        "xquic",
        "bbr",
        "fixed",
        remark="cwnd gain reduced from 2.5 to 2",
        loc=2,
    ),
    FixCase(
        "quiche",
        "cubic",
        "fixed",
        remark="Disabled RFC8312bis spurious-loss rollback",
        loc=14,
    ),
    FixCase(
        "xquic",
        "cubic",
        None,
        reference_variant="nohystart",
        remark="xquic does not implement HyStart; verified against "
        "TCP CUBIC with HyStart disabled",
    ),
]

#: Cases the paper verified as CCA-compliant but could not fix (stack-level
#: artifacts, §5 "Indications of wider stack-level issues").
UNFIXED: List[Tuple[str, str]] = [("xquic", "reno"), ("neqo", "cubic")]


@dataclass
class FixOutcome:
    """Before/after conformance for one fix case."""

    case: FixCase
    before: ConformanceMeasurement
    after: Optional[ConformanceMeasurement]

    @property
    def improved(self) -> bool:
        if self.after is None:
            return False
        return self.after.conformance > self.before.conformance

    def row(self) -> dict:
        out = {
            "stack": self.case.stack,
            "cca": self.case.cca,
            "conf_before": round(self.before.conformance, 2),
            "conf_t_before": round(self.before.conformance_t, 2),
            "dtput_before": round(self.before.result.delta_throughput_mbps, 1),
            "ddelay_before": round(self.before.result.delta_delay_ms, 1),
            "remark": self.case.remark,
            "loc": self.case.loc,
        }
        if self.after is not None:
            out.update(
                conf_after=round(self.after.conformance, 2),
                conf_t_after=round(self.after.conformance_t, 2),
                dtput_after=round(self.after.result.delta_throughput_mbps, 1),
                ddelay_after=round(self.after.result.delta_delay_ms, 1),
            )
        return out


def evaluate_fix(
    case: FixCase,
    condition: Optional[NetworkCondition] = None,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
) -> FixOutcome:
    """Measure one Table 4 row: default variant, then the fix/verification."""
    condition = condition or scenarios.shallow_buffer()
    before = measure_conformance(
        case.stack, case.cca, condition, config, variant="default", cache=cache
    )
    after: Optional[ConformanceMeasurement] = None
    if case.fixed_variant is not None:
        after = measure_conformance(
            case.stack,
            case.cca,
            condition,
            config,
            variant=case.fixed_variant,
            cache=cache,
        )
    elif case.reference_variant != "default":
        # Verification against a modified kernel reference.
        after = measure_conformance(
            case.stack,
            case.cca,
            condition,
            config,
            variant="default",
            reference_variant=case.reference_variant,
            cache=cache,
        )
    return FixOutcome(case=case, before=before, after=after)


def evaluate_all_fixes(
    condition: Optional[NetworkCondition] = None,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
) -> List[FixOutcome]:
    """Measure every Table 4 fix case at one condition."""
    return [evaluate_fix(case, condition, config, cache=cache) for case in FIXES]


def cwnd_time_series(
    stack: str,
    cca: str,
    variant: str = "default",
    condition: Optional[NetworkCondition] = None,
    duration_s: float = 30.0,
    seed: int = 1,
) -> np.ndarray:
    """(time, cwnd_bytes) samples of one flow vs the kernel reference.

    Reproduces the time-series views of Fig. 15, which the paper uses to
    show quiche CUBIC's cwnd never backing off until the rollback is
    disabled.
    """
    condition = condition or scenarios.shallow_buffer()
    seed = _trial_seed(seed, "cwnd_ts", stack, cca, variant)
    result = run_pair(
        Impl(stack, cca, variant),
        reference_impl(cca),
        condition,
        duration_s=duration_s,
        seed=seed,
    )
    return np.asarray(result.first.trace.cwnd_samples, dtype=float)
