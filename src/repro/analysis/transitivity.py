"""Transitivity of the "beats" relation (§6 "Transitivity").

The paper reports that among the 11 QUIC stacks, *intra*-CCA performance
is transitive (if X beats Y and Y beats Z, X beats Z for implementations
of the same CCA) while *inter*-CCA performance is not (their example:
lsquic CUBIC beats msquic CUBIC, msquic CUBIC beats chromium BBR, but
lsquic CUBIC does not beat chromium BBR in deep buffers).

This module derives the beats relation from bandwidth shares and counts
the violating triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness.fairness import bandwidth_share
from repro.harness.runner import Impl
from repro.harness import scenarios


@dataclass
class TransitivityReport:
    impls: List[Impl]
    #: beats[i][j] True when impl i's share against j exceeds 0.5.
    beats: np.ndarray
    violations: List[Tuple[Impl, Impl, Impl]]

    @property
    def is_transitive(self) -> bool:
        return not self.violations


def beats_matrix(
    impls: Sequence[Impl],
    condition: Optional[NetworkCondition] = None,
    config: ExperimentConfig = ExperimentConfig(),
    threshold: float = 0.5,
    cache: Optional[ResultCache] = None,
) -> np.ndarray:
    """Pairwise beats relation from bandwidth shares."""
    condition = condition or scenarios.fairness_condition()
    n = len(impls)
    beats = np.zeros((n, n), dtype=bool)
    for i, a in enumerate(impls):
        for j, b in enumerate(impls):
            if i == j:
                continue
            share = bandwidth_share(a, b, condition, config, cache=cache)
            beats[i, j] = share > threshold
    return beats


def transitivity_violations(
    impls: Sequence[Impl],
    beats: np.ndarray,
) -> List[Tuple[Impl, Impl, Impl]]:
    """All (X, Y, Z) with X>Y, Y>Z but not X>Z."""
    n = len(impls)
    violations = []
    for i in range(n):
        for j in range(n):
            if i == j or not beats[i, j]:
                continue
            for k in range(n):
                if k in (i, j):
                    continue
                if beats[j, k] and not beats[i, k]:
                    violations.append((impls[i], impls[j], impls[k]))
    return violations


def analyze(
    impls: Sequence[Impl],
    condition: Optional[NetworkCondition] = None,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
) -> TransitivityReport:
    """Beats matrix plus its transitivity violations for a set of implementations."""
    beats = beats_matrix(impls, condition, config, cache=cache)
    return TransitivityReport(
        impls=list(impls),
        beats=beats,
        violations=transitivity_violations(impls, beats),
    )
