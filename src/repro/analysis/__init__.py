"""Root-cause analysis and fix verification (§5, §6 and Fig. 5 of the paper)."""

from repro.analysis.fixes import (
    FIXES,
    FixCase,
    FixOutcome,
    evaluate_fix,
    evaluate_all_fixes,
    cwnd_time_series,
)
from repro.analysis.sweeps import cwnd_gain_sweep, SweepPoint
from repro.analysis.rootcause import (
    RootCauseHint,
    StackDiagnosis,
    Suspect,
    classify,
    diagnose_stack,
)
from repro.analysis.transitivity import (
    beats_matrix,
    transitivity_violations,
    TransitivityReport,
)

__all__ = [
    "FIXES",
    "FixCase",
    "FixOutcome",
    "evaluate_fix",
    "evaluate_all_fixes",
    "cwnd_time_series",
    "cwnd_gain_sweep",
    "SweepPoint",
    "RootCauseHint",
    "StackDiagnosis",
    "Suspect",
    "classify",
    "diagnose_stack",
    "beats_matrix",
    "transitivity_violations",
    "TransitivityReport",
]
