"""Parameter sweeps (Fig. 5): Conformance vs Conformance-T for modified BBR.

The paper's sanity check for Conformance-T: take the *kernel* BBR, vary
``cwnd_gain`` from 1.0 to 4.0 (default 2.0), and measure each modified
version against vanilla kernel BBR.  Conformance should peak at 2.0 and
fall off as the gain departs from the default, while Conformance-T stays
high — a parameter-mistuned implementation is exactly a translated
envelope.  Δ-throughput and Δ-delay should grow with the gain (a cwnd
knob moves both axes, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.exec import Executor

from repro.cca.bbr import BBR, BBRConfig
from repro.core.conformance import evaluate_conformance
from repro.core.sampling import sample_points
from repro.harness.cache import DEFAULT_CACHE, ResultCache, cache_key
from repro.harness.config import ExperimentConfig, NetworkCondition
from repro.harness import scenarios
from repro.netsim.network import Network
from repro.stacks import registry


@dataclass
class SweepPoint:
    """One x-position of Fig. 5."""

    cwnd_gain: float
    conformance: float
    conformance_t: float
    delta_throughput_mbps: float
    delta_delay_ms: float

    def row(self) -> dict:
        return {
            "cwnd_gain": self.cwnd_gain,
            "conf": round(self.conformance, 3),
            "conf_t": round(self.conformance_t, 3),
            "delta_tput_mbps": round(self.delta_throughput_mbps, 2),
            "delta_delay_ms": round(self.delta_delay_ms, 2),
        }


def sweep_cache_key(
    cwnd_gain: float,
    condition: NetworkCondition,
    config: ExperimentConfig,
    trial: int,
) -> str:
    """Cache key (and seed source) of one modified-BBR trial."""
    return cache_key(
        kind="bbr_gain_sweep",
        gain=cwnd_gain,
        condition=(condition.bandwidth_mbps, condition.rtt_ms, condition.buffer_bdp),
        duration=config.duration_s,
        trial=trial,
        seed=config.seed,
    )


def compute_gain_trial(
    cwnd_gain: float,
    condition: NetworkCondition,
    config: ExperimentConfig,
    trial: int,
    cache: Optional[ResultCache] = None,
) -> np.ndarray:
    """One modified-BBR trial, cached.  Module-level (picklable) so the
    sweep can run through ``repro.exec`` with identical seeds/keys."""
    cache = cache or DEFAULT_CACHE
    key = sweep_cache_key(cwnd_gain, condition, config, trial)

    def compute() -> np.ndarray:
        linux = registry.reference()
        test_spec = linux.flow_spec("bbr", label=f"bbr-gain-{cwnd_gain}")
        mss = test_spec.sender_config.mss
        test_spec.cca_factory = lambda: BBR(mss, BBRConfig(cwnd_gain=cwnd_gain))
        ref_spec = linux.flow_spec("bbr", label="bbr-ref")
        seed = int(cache_key(kind="seed", base=key)[:8], 16)
        network = Network(
            condition.link_config(),
            [test_spec, ref_spec],
            seed=seed,
            base_jitter_s=condition.jitter_s(),
            start_spread_s=0.5,
        )
        results = network.run(config.duration_s)
        return sample_points(
            results[0].trace, base_rtt_s=condition.rtt_s, config=config.sampling
        )

    return cache.get_or_compute(key, compute)


def cwnd_gain_sweep(
    gains: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
    condition: Optional[NetworkCondition] = None,
    config: ExperimentConfig = ExperimentConfig(),
    cache: Optional[ResultCache] = None,
    executor: Optional["Executor"] = None,
) -> List[SweepPoint]:
    """Reproduce Fig. 5 over the given cwnd-gain values.

    With an ``executor`` every (gain, trial) simulation runs as one
    parallel campaign first, then the points are evaluated from cache.
    """
    condition = condition or scenarios.shallow_buffer()
    if executor is not None:
        from repro.exec.jobs import sweep_trial_jobs

        executor.run(
            sweep_trial_jobs(gains, condition, config),
            campaign=f"sweep:cwnd-gain@{condition.describe()}",
        )
        cache = executor.cache
    cache = cache or DEFAULT_CACHE
    reference_trials = [
        compute_gain_trial(2.0, condition, config, trial + 1000, cache)
        for trial in range(config.trials)
    ]
    points: List[SweepPoint] = []
    for gain in gains:
        test_trials = [
            compute_gain_trial(gain, condition, config, trial, cache)
            for trial in range(config.trials)
        ]
        result = evaluate_conformance(test_trials, reference_trials, config.envelope)
        points.append(
            SweepPoint(
                cwnd_gain=gain,
                conformance=result.conformance,
                conformance_t=result.conformance_t,
                delta_throughput_mbps=result.delta_throughput_mbps,
                delta_delay_ms=result.delta_delay_ms,
            )
        )
    return points
