"""Experiment topology: N flows through one shared bottleneck.

This mirrors the paper's dumbbell: senders on one machine, receivers on the
other, a single shaped bottleneck in between (tc/Mahimahi), and an
uncongested reverse path for ACKs.

The forward one-way delay is split so that the propagation happens after
the bottleneck (as with Mahimahi's delay shell); the reverse path carries
the other half of the base RTT.  Per-flow delay jitter models the natural
run-to-run variation of a real testbed and is what makes repeated trials
differ, which the paper's outlier-removal (intersection over trials)
relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cca.base import CongestionController
from repro.netsim.crosstraffic import CrossTrafficConfig, OnOffSource
from repro.netsim.engine import EventLoop
from repro.netsim.link import BottleneckLink, bdp_bytes
from repro.netsim.endpoint import Receiver, ReceiverConfig, Sender, SenderConfig
from repro.netsim.packet import Packet
from repro.netsim.path import NetemConfig, Path, PERFECT
from repro.netsim.trace import FlowTrace


@dataclass(frozen=True)
class LinkConfig:
    """The bottleneck and base path."""

    bandwidth_bps: float = 20e6
    rtt_s: float = 0.05
    #: Queue capacity as a multiple of the bandwidth-delay product.
    buffer_bdp: float = 1.0
    #: Absolute override for the queue size in bytes (wins over buffer_bdp).
    buffer_bytes: Optional[int] = None
    #: Bottleneck queue discipline: "droptail" (the paper's setting) or
    #: any name in the repro.netsim.aqm DISCIPLINES registry ("red",
    #: "codel", "pie", "fq_codel", ...).
    queue_discipline: str = "droptail"

    def queue_capacity(self) -> int:
        if self.buffer_bytes is not None:
            return self.buffer_bytes
        capacity = int(self.buffer_bdp * bdp_bytes(self.bandwidth_bps, self.rtt_s))
        # Even "zero" buffers fit a couple of packets in real shapers.
        return max(capacity, 3 * 1500)

    def validate(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt_s <= 0:
            raise ValueError("RTT must be positive")
        if self.buffer_bdp <= 0 and self.buffer_bytes is None:
            raise ValueError("buffer must be positive")
        from repro.netsim.aqm import DISCIPLINES, disciplines

        if self.queue_discipline not in DISCIPLINES:
            raise ValueError(
                f"unknown queue discipline {self.queue_discipline!r} "
                f"(known: {', '.join(disciplines())})"
            )


@dataclass
class FlowSpec:
    """One flow: a CCA factory plus the stack's sender/receiver behaviour."""

    label: str
    cca_factory: Callable[[], CongestionController]
    sender_config: SenderConfig = field(default_factory=SenderConfig)
    receiver_config: ReceiverConfig = field(default_factory=ReceiverConfig)
    start_time: float = 0.0
    #: Extra netem impairments on this flow's forward path.
    forward_netem: NetemConfig = PERFECT
    #: Extra one-way delay relative to the base RTT (keeps both flows at
    #: the same RTT in conformance runs, per the paper's methodology).
    extra_delay_s: float = 0.0


@dataclass
class FlowResult:
    """Outcome of one flow in a finished run."""

    label: str
    trace: FlowTrace
    packets_sent: int
    retransmissions: int
    congestion_events: int
    spurious_events: int

    @property
    def mean_throughput_bps(self) -> float:
        return self.trace.mean_throughput_bps()


class Network:
    """A wired-up dumbbell experiment, ready to run."""

    def __init__(
        self,
        link: LinkConfig,
        flows: List[FlowSpec],
        seed: int = 0,
        cross_traffic: Optional[CrossTrafficConfig] = None,
        base_jitter_s: float = 0.0,
        start_spread_s: float = 0.0,
    ):
        link.validate()
        if not flows:
            raise ValueError("at least one flow is required")
        self.link_config = link
        self.loop = EventLoop()
        self._rng = random.Random(seed)
        #: Random per-flow start offsets: real flows never start in the
        #: same microsecond (handshakes, process scheduling), and launching
        #: them in lockstep locks deterministic startup phases together.
        self._start_offsets = [
            self._rng.uniform(0.0, start_spread_s) if start_spread_s > 0 else 0.0
            for _ in flows
        ]

        from repro.netsim.aqm import make_queue

        # NOTE: seeded independently of self._rng so the per-flow RNG draw
        # sequence (and thus every droptail result) is unchanged by the
        # AQM extension.
        queue = make_queue(
            link.queue_discipline,
            link.queue_capacity(),
            clock=lambda: self.loop.now,
            rng=random.Random(seed ^ 0x51ED),
        )
        self._receiver_by_flow: dict[int, Receiver] = {}
        self._trace_by_flow: dict[int, FlowTrace] = {}
        #: Bottleneck drops per flow id (diagnostics).
        self.drops_by_flow: dict[int, int] = {}
        self.link = BottleneckLink(
            self.loop,
            link.bandwidth_bps,
            queue,
            on_deliver=self._after_bottleneck,
            on_drop=self._on_bottleneck_drop,
        )

        self.senders: List[Sender] = []
        self.receivers: List[Receiver] = []
        self.traces: List[FlowTrace] = []
        self._post_paths: dict[int, Path] = {}
        self._specs = flows

        one_way = link.rtt_s / 2
        for flow_id, spec in enumerate(flows):
            trace = FlowTrace(flow_id, label=spec.label)
            self.traces.append(trace)
            self._trace_by_flow[flow_id] = trace

            # Forward: sender -> bottleneck -> delay -> receiver.
            post_netem = NetemConfig(
                jitter_s=max(spec.forward_netem.jitter_s, base_jitter_s),
                loss_rate=spec.forward_netem.loss_rate,
                reorder_rate=spec.forward_netem.reorder_rate,
                reorder_extra_s=spec.forward_netem.reorder_extra_s,
            )
            post_path = Path(
                self.loop,
                one_way + spec.extra_delay_s,
                deliver=self._make_receiver_delivery(flow_id),
                netem=post_netem,
                rng=random.Random(self._rng.getrandbits(32)),
            )
            self._post_paths[flow_id] = post_path

            # Reverse: receiver -> delay -> sender (uncongested).
            sender_box: list[Sender] = []
            return_path = Path(
                self.loop,
                one_way + spec.extra_delay_s,
                deliver=lambda pkt, box=sender_box: box[0].on_ack(pkt),
                rng=random.Random(self._rng.getrandbits(32)),
            )
            receiver = Receiver(
                self.loop,
                flow_id,
                send_ack=return_path.send,
                config=spec.receiver_config,
                trace=trace,
            )
            self.receivers.append(receiver)
            self._receiver_by_flow[flow_id] = receiver

            sender = Sender(
                self.loop,
                flow_id,
                cca=spec.cca_factory(),
                transmit=self.link.send,
                config=spec.sender_config,
                trace=trace,
            )
            sender_box.append(sender)
            self.senders.append(sender)

        self.cross_source: Optional[OnOffSource] = None
        if cross_traffic is not None:
            self.cross_source = OnOffSource(
                self.loop,
                flow_id=len(flows),
                transmit=self.link.send,
                config=cross_traffic,
                rng=random.Random(self._rng.getrandbits(32)),
            )

    # -- plumbing -----------------------------------------------------
    def _make_receiver_delivery(self, flow_id: int):
        def deliver(packet: Packet) -> None:
            self._receiver_by_flow[flow_id].on_packet(packet)
        return deliver

    def _after_bottleneck(self, packet: Packet) -> None:
        path = self._post_paths.get(packet.flow_id)
        if path is not None:
            path.send(packet)
        # Cross-traffic packets vanish after the bottleneck: only their
        # queue occupancy matters.

    def _on_bottleneck_drop(self, packet: Packet) -> None:
        # The sender discovers the loss later through its own loss
        # detection; here we only keep the bottleneck's tally (a tcpdump
        # at the switch would see exactly this).
        self.drops_by_flow[packet.flow_id] = (
            self.drops_by_flow.get(packet.flow_id, 0) + 1
        )

    # -- execution -------------------------------------------------------
    def run(self, duration: float) -> List[FlowResult]:
        """Run the experiment for ``duration`` seconds and collect results."""
        for sender, spec, offset in zip(self.senders, self._specs, self._start_offsets):
            start_at = spec.start_time + offset
            if start_at <= self.loop.now:
                sender.start()
            else:
                self.loop.schedule_at(start_at, sender.start)
        if self.cross_source is not None:
            self.cross_source.start()
        self.loop.run(duration)
        for sender in self.senders:
            sender.stop()
        if self.cross_source is not None:
            self.cross_source.stop()
        results = []
        for sender, spec, trace in zip(self.senders, self._specs, self.traces):
            results.append(
                FlowResult(
                    label=spec.label,
                    trace=trace,
                    packets_sent=sender.packets_sent,
                    retransmissions=sender.retransmissions,
                    congestion_events=sender._congestion_events,
                    spurious_events=sender.spurious_events,
                )
            )
        return results


def run_flows(
    link: LinkConfig,
    flows: List[FlowSpec],
    duration: float,
    seed: int = 0,
    cross_traffic: Optional[CrossTrafficConfig] = None,
    base_jitter_s: float = 0.0,
    start_spread_s: float = 0.0,
) -> List[FlowResult]:
    """Convenience one-shot experiment runner."""
    network = Network(
        link,
        flows,
        seed=seed,
        cross_traffic=cross_traffic,
        base_jitter_s=base_jitter_s,
        start_spread_s=start_spread_s,
    )
    return network.run(duration)
