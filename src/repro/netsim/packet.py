"""Packet and ACK models.

Packets are deliberately lightweight (``__slots__``) because a single
120-second trial at 20 Mbps moves several hundred thousand of them.

A single :class:`Packet` type models both data packets and ACKs; ACKs carry
an :class:`AckInfo` payload.  The ACK model is a superset of TCP cumulative
ACKs and QUIC ACK frames: it carries the cumulative ack point (next expected
packet number, TCP semantics), the largest packet number seen so far and the
list of packet numbers newly delivered since the previous ACK (QUIC / SACK
semantics).  Loss detectors consume whichever view matches the stack they
emulate.
"""

from __future__ import annotations

from typing import List, Optional


class AckInfo:
    """Acknowledgment payload carried by an ACK packet."""

    __slots__ = (
        "cum_ack",
        "largest_acked",
        "newly_acked",
        "largest_sent_time",
        "ack_delay",
        "delivered_bytes",
    )

    def __init__(
        self,
        cum_ack: int,
        largest_acked: int,
        newly_acked: List[int],
        largest_sent_time: float,
        ack_delay: float,
        delivered_bytes: int,
    ):
        #: Next packet number expected in order (TCP cumulative semantics).
        self.cum_ack = cum_ack
        #: Largest packet number received so far (QUIC semantics).
        self.largest_acked = largest_acked
        #: Packet numbers delivered since the previous ACK was emitted.
        self.newly_acked = newly_acked
        #: Send timestamp of the largest newly acked packet (for RTT).
        self.largest_sent_time = largest_sent_time
        #: Delay the receiver held this ACK for (QUIC ack_delay field).
        self.ack_delay = ack_delay
        #: Total payload bytes delivered in order at the receiver.
        self.delivered_bytes = delivered_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AckInfo(cum={self.cum_ack}, largest={self.largest_acked}, "
            f"new={self.newly_acked})"
        )


class Packet:
    """A simulated packet.

    ``seq`` is a packet number (monotonically increasing per flow for data
    packets, QUIC style); retransmissions reuse the *stream* identity via
    ``retx_of`` while getting a fresh packet number, which is how QUIC
    numbers retransmissions.  ``size`` includes headers.
    """

    __slots__ = (
        "flow_id",
        "seq",
        "size",
        "sent_time",
        "is_ack",
        "ack",
        "retx_of",
        "enqueue_time",
        "delivered_at_send",
        "delivered_time_at_send",
        "is_app_limited",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int,
        size: int,
        sent_time: float,
        is_ack: bool = False,
        ack: Optional[AckInfo] = None,
        retx_of: Optional[int] = None,
    ):
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.sent_time = sent_time
        self.is_ack = is_ack
        self.ack = ack
        self.retx_of = retx_of
        #: Set by the queue when the packet is accepted, used to compute
        #: per-packet queueing delay in traces.
        self.enqueue_time = sent_time
        #: Delivery-rate sampling state (Bruenn/Cheng "delivery rate
        #: estimation"), filled by the sender for data packets.
        self.delivered_at_send = 0
        self.delivered_time_at_send = sent_time
        self.is_app_limited = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ack" if self.is_ack else "data"
        return f"Packet(flow={self.flow_id}, seq={self.seq}, {kind})"


#: Conventional wire sizes, bytes.  The Ethernet MTU bounds both; QUIC
#: datagrams are smaller than TCP segments because of the UDP+QUIC header
#: overhead and conservative defaults in most stacks.
TCP_MSS = 1448
QUIC_DEFAULT_MSS = 1350
HEADER_BYTES = 52
ACK_SIZE = 60
