"""qlog-style structured event export.

The QUIC ecosystem debugs transport behaviour with qlog traces rendered
by qvis — the toolchain Marx et al. used for the speciation study the
paper builds on.  This module serializes a finished flow into a
qlog-compatible JSON document (draft-ietf-quic-qlog main schema, trimmed
to the recovery events this simulator produces):

* ``recovery:metrics_updated`` — congestion window / pacing samples,
* ``recovery:packet_lost`` — loss declarations,
* ``transport:packet_received`` — deliveries at the receiver.

The output loads in qvis for visual inspection and round-trips through
:func:`load_qlog` for programmatic use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

from repro.netsim.trace import FlowTrace

QLOG_VERSION = "0.3"


def _event(time_s: float, name: str, data: dict) -> dict:
    return {"time": round(time_s * 1000, 6), "name": name, "data": data}


def trace_to_qlog(
    trace: FlowTrace,
    title: str = "",
    vantage_point: str = "server",
) -> dict:
    """Build a qlog document (as a dict) from one flow's trace."""
    events: List[dict] = []
    for time, cwnd in trace.cwnd_samples:
        events.append(
            _event(time, "recovery:metrics_updated", {"congestion_window": int(cwnd)})
        )
    for time, rate in trace.rate_samples:
        events.append(
            _event(
                time,
                "recovery:metrics_updated",
                {"pacing_rate": int(rate * 8)},  # qlog uses bits/s
            )
        )
    for loss in trace.losses:
        events.append(
            _event(
                loss.time,
                "recovery:packet_lost",
                {"header": {"packet_number": loss.seq}},
            )
        )
    for record in trace.records:
        events.append(
            _event(
                record.arrival_time,
                "transport:packet_received",
                {
                    "header": {"packet_number": record.seq},
                    "raw": {"length": record.payload_bytes},
                    "is_retransmission": record.is_retransmission,
                },
            )
        )
    events.sort(key=lambda e: e["time"])
    return {
        "qlog_version": QLOG_VERSION,
        "title": title or trace.label or f"flow-{trace.flow_id}",
        "traces": [
            {
                "vantage_point": {"type": vantage_point},
                "common_fields": {"time_format": "relative", "reference_time": 0},
                "events": events,
            }
        ],
    }


def write_qlog(trace: FlowTrace, path: str, title: str = "") -> None:
    """Serialize one flow's qlog document to ``path``."""
    with open(path, "w") as f:
        json.dump(trace_to_qlog(trace, title=title), f)


@dataclass
class QlogSummary:
    """Cheap aggregate view of a loaded qlog document."""

    title: str
    events: int
    packets_received: int
    packets_lost: int
    cwnd_updates: int

    @property
    def loss_rate(self) -> float:
        total = self.packets_received + self.packets_lost
        return self.packets_lost / total if total else 0.0


def load_qlog(path: str) -> QlogSummary:
    """Load a qlog file and summarize its recovery events."""
    with open(path) as f:
        doc = json.load(f)
    if "traces" not in doc or not doc["traces"]:
        raise ValueError("not a qlog document: missing traces")
    events = doc["traces"][0].get("events", [])
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.get("name", "?")] = counts.get(event.get("name", "?"), 0) + 1
    cwnd_updates = sum(
        1
        for event in events
        if event.get("name") == "recovery:metrics_updated"
        and "congestion_window" in event.get("data", {})
    )
    return QlogSummary(
        title=doc.get("title", ""),
        events=len(events),
        packets_received=counts.get("transport:packet_received", 0),
        packets_lost=counts.get("recovery:packet_lost", 0),
        cwnd_updates=cwnd_updates,
    )
