"""Background cross-traffic sources.

The controlled-testbed experiments in the paper deliberately avoid
background traffic; the "in the wild" experiments (§4.2) run over the
Internet, where flows share the path with uncontrolled traffic.  The
:class:`OnOffSource` models that: an unresponsive UDP sender alternating
exponentially-distributed ON bursts at a configurable rate with OFF
silences, the classic Internet cross-traffic model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet


@dataclass(frozen=True)
class CrossTrafficConfig:
    """On/off burst parameters."""

    #: Sending rate during ON periods, bits per second.
    rate_bps: float = 2e6
    #: Mean ON duration, seconds (exponentially distributed).
    mean_on_s: float = 0.5
    #: Mean OFF duration, seconds (exponentially distributed).
    mean_off_s: float = 2.0
    packet_size: int = 1200

    def validate(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate must be positive")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("on/off durations must be positive")
        if self.packet_size <= 0:
            raise ValueError("packet size must be positive")


class OnOffSource:
    """Unresponsive on/off UDP traffic injected at the bottleneck."""

    def __init__(
        self,
        loop: EventLoop,
        flow_id: int,
        transmit: Callable[[Packet], None],
        config: CrossTrafficConfig,
        rng: random.Random,
    ):
        config.validate()
        self._loop = loop
        self.flow_id = flow_id
        self._transmit = transmit
        self.config = config
        self._rng = rng
        self._on = False
        self._seq = 0
        self.packets_sent = 0
        self._stopped = False

    def start(self) -> None:
        self._schedule_toggle()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_toggle(self) -> None:
        if self._stopped:
            return
        if self._on:
            duration = self._rng.expovariate(1.0 / self.config.mean_on_s)
        else:
            duration = self._rng.expovariate(1.0 / self.config.mean_off_s)

        def toggle() -> None:
            self._on = not self._on
            if self._on:
                self._send_next()
            self._schedule_toggle()

        self._loop.schedule(duration, toggle)

    def _send_next(self) -> None:
        if not self._on or self._stopped:
            return
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            size=self.config.packet_size,
            sent_time=self._loop.now,
        )
        self._seq += 1
        self.packets_sent += 1
        self._transmit(packet)
        interval = self.config.packet_size * 8 / self.config.rate_bps
        self._loop.schedule(interval, self._send_next)
