"""Propagation paths with netem-style impairments.

A :class:`Path` moves packets between two points after a propagation
delay.  On top of the fixed delay it can apply the impairments the paper's
toolchain (``tc netem`` / Mahimahi) offers: random jitter, i.i.d. random
loss and reordering.  The controlled-testbed experiments use plain delays;
the "in the wild" experiments (§4.2) use jitter + loss + cross traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet


@dataclass(frozen=True)
class NetemConfig:
    """Impairment knobs, mirroring ``tc netem`` semantics.

    ``jitter_s`` is the half-width of a uniform perturbation added to the
    propagation delay.  ``loss_rate`` drops packets i.i.d.  ``reorder_rate``
    sends the affected packet with an extra ``reorder_extra_s`` delay, which
    lets it be overtaken by later packets.
    """

    jitter_s: float = 0.0
    loss_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_extra_s: float = 0.0

    def validate(self) -> None:
        if self.jitter_s < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if not 0.0 <= self.reorder_rate < 1.0:
            raise ValueError("reorder rate must be in [0, 1)")
        if self.reorder_rate > 0 and self.reorder_extra_s <= 0:
            raise ValueError("reordering requires a positive extra delay")


#: A path with no impairments; the default for testbed experiments.
PERFECT = NetemConfig()


class Path:
    """One-way propagation segment.

    Delivery order is preserved for equal effective delays because the
    event loop breaks ties by scheduling order; jitter and reordering can
    invert delivery order exactly as netem does.
    """

    def __init__(
        self,
        loop: EventLoop,
        delay_s: float,
        deliver: Callable[[Packet], None],
        netem: NetemConfig = PERFECT,
        rng: random.Random | None = None,
    ):
        if delay_s < 0:
            raise ValueError("propagation delay must be non-negative")
        netem.validate()
        self._loop = loop
        self.delay_s = delay_s
        self._deliver = deliver
        self.netem = netem
        self._rng = rng or random.Random(0)
        #: Diagnostics.
        self.delivered = 0
        self.lost = 0

    def send(self, packet: Packet) -> None:
        netem = self.netem
        if netem.loss_rate > 0.0 and self._rng.random() < netem.loss_rate:
            self.lost += 1
            return
        delay = self.delay_s
        if netem.jitter_s > 0.0:
            delay += self._rng.uniform(-netem.jitter_s, netem.jitter_s)
            delay = max(delay, 0.0)
        if netem.reorder_rate > 0.0 and self._rng.random() < netem.reorder_rate:
            delay += netem.reorder_extra_s

        def arrive() -> None:
            self.delivered += 1
            self._deliver(packet)

        self._loop.schedule(delay, arrive)
