"""Packet-trace capture.

The paper computes throughput and delay *offline from packet traces*
(tcpdump on the endpoints) rather than from in-band counters, and so do we:
every flow gets a :class:`FlowTrace` that records one :class:`TraceRecord`
per delivered data packet plus loss/retransmission events, and the analysis
in :mod:`repro.core.timeseries` consumes only this trace.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, asdict
from typing import Iterable, List


@dataclass(frozen=True)
class TraceRecord:
    """One delivered data packet, as seen by the receiver.

    ``one_way_delay`` covers queueing + propagation from sender to
    receiver; the analysis reconstructs an RTT estimate by adding the
    (known, constant) reverse-path base delay, which is what a
    sender-side tcpdump RTT computation would measure up to ACK decimation
    noise.
    """

    arrival_time: float
    sent_time: float
    seq: int
    payload_bytes: int
    one_way_delay: float
    is_retransmission: bool


@dataclass(frozen=True)
class LossRecord:
    """A packet drop observed at the bottleneck for this flow."""

    time: float
    seq: int


class FlowTrace:
    """Accumulates per-flow records during a simulation run."""

    def __init__(self, flow_id: int, label: str = ""):
        self.flow_id = flow_id
        self.label = label
        self.records: List[TraceRecord] = []
        self.losses: List[LossRecord] = []
        #: Sender-side congestion-window samples ``(time, cwnd_bytes)``,
        #: used by the fix-verification time-series plots (paper Fig. 15).
        self.cwnd_samples: List[tuple] = []
        #: Sender-side pacing-rate samples ``(time, bytes_per_s)``.
        self.rate_samples: List[tuple] = []

    # -- recording -----------------------------------------------------
    def on_delivery(
        self,
        arrival_time: float,
        sent_time: float,
        seq: int,
        payload_bytes: int,
        is_retransmission: bool,
    ) -> None:
        self.records.append(
            TraceRecord(
                arrival_time=arrival_time,
                sent_time=sent_time,
                seq=seq,
                payload_bytes=payload_bytes,
                one_way_delay=arrival_time - sent_time,
                is_retransmission=is_retransmission,
            )
        )

    def on_loss(self, time: float, seq: int) -> None:
        self.losses.append(LossRecord(time=time, seq=seq))

    def on_cwnd(self, time: float, cwnd_bytes: int) -> None:
        self.cwnd_samples.append((time, cwnd_bytes))

    def on_rate(self, time: float, rate_bytes_per_s: float) -> None:
        self.rate_samples.append((time, rate_bytes_per_s))

    # -- summaries -----------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(r.payload_bytes for r in self.records)

    @property
    def duration(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].arrival_time - self.records[0].arrival_time

    def mean_throughput_bps(self) -> float:
        """Average delivered rate over the trace, bits per second."""
        duration = self.duration
        if duration <= 0:
            return 0.0
        return self.total_bytes * 8 / duration

    def mean_one_way_delay(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.one_way_delay for r in self.records) / len(self.records)

    # -- export ----------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write the delivery records as CSV (tcpdump-post-processing style)."""
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(
                ["arrival_time", "sent_time", "seq", "payload_bytes",
                 "one_way_delay", "is_retransmission"]
            )
            for r in self.records:
                writer.writerow(
                    [r.arrival_time, r.sent_time, r.seq, r.payload_bytes,
                     r.one_way_delay, int(r.is_retransmission)]
                )

    def to_json(self, path: str) -> None:
        """Write the full trace, including loss and cwnd series, as JSON."""
        payload = {
            "flow_id": self.flow_id,
            "label": self.label,
            "records": [asdict(r) for r in self.records],
            "losses": [asdict(l) for l in self.losses],
            "cwnd_samples": self.cwnd_samples,
            "rate_samples": self.rate_samples,
        }
        with open(path, "w") as f:
            json.dump(payload, f)

    @classmethod
    def from_json(cls, path: str) -> "FlowTrace":
        with open(path) as f:
            payload = json.load(f)
        trace = cls(payload["flow_id"], payload.get("label", ""))
        trace.records = [TraceRecord(**r) for r in payload["records"]]
        trace.losses = [LossRecord(**l) for l in payload["losses"]]
        trace.cwnd_samples = [tuple(s) for s in payload["cwnd_samples"]]
        trace.rate_samples = [tuple(s) for s in payload["rate_samples"]]
        return trace


def merge_traces(traces: Iterable[FlowTrace]) -> List[TraceRecord]:
    """All records of several traces in arrival order (bottleneck view)."""
    merged: List[TraceRecord] = []
    for trace in traces:
        merged.extend(trace.records)
    merged.sort(key=lambda r: r.arrival_time)
    return merged
