"""The discrete-event engine.

A single :class:`EventLoop` drives one simulated experiment.  Events are
``(time, sequence, callback)`` triples kept in a binary heap; the sequence
number breaks ties so that events scheduled earlier run first, which makes
every simulation fully deterministic for a given seed.

The engine is deliberately minimal: all protocol behaviour lives in the
components (links, paths, endpoints) that schedule callbacks on the loop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Event:
    """A scheduled callback.  Returned by :meth:`EventLoop.schedule` so the
    caller can cancel it later (e.g. retransmission timers)."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class EventLoop:
    """A deterministic discrete-event scheduler.

    Time is a float number of seconds.  The loop never advances past
    ``horizon`` (set by :meth:`run`), so components may schedule periodic
    events without worrying about termination.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f}, now is {self._now:.9f}"
            )
        event = Event(time, next(self._seq), fn)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: float) -> None:
        """Run events in time order until simulated time ``until``.

        The clock is left at ``until`` even if the queue drains early, so a
        subsequent ``run`` continues from there.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            queue = self._queue
            while queue and queue[0].time <= until:
                event = heapq.heappop(queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.fn()
            self._now = max(self._now, until)
        finally:
            self._running = False

    def run_until_idle(self, max_time: float = float("inf")) -> None:
        """Run until no events remain or ``max_time`` is reached."""
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            queue = self._queue
            while queue and queue[0].time <= max_time:
                event = heapq.heappop(queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.fn()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events, for diagnostics."""
        return len(self._queue)


class Clock:
    """Read-only view of an :class:`EventLoop`'s time.

    Handed to components that must observe time but must not schedule,
    e.g. trace sinks.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop: EventLoop):
        self._loop = loop

    @property
    def now(self) -> float:
        return self._loop.now


def make_timer(loop: EventLoop) -> "Timer":
    """Convenience factory mirroring kernel-style rearmable timers."""
    return Timer(loop)


class Timer:
    """A rearmable one-shot timer built on :class:`EventLoop`.

    Mirrors how retransmission (RTO) and probe timers behave in real
    stacks: re-arming cancels the previous deadline.
    """

    __slots__ = ("_loop", "_event", "_callback")

    def __init__(self, loop: EventLoop, callback: Optional[Callable[[], None]] = None):
        self._loop = loop
        self._event: Optional[Event] = None
        self._callback = callback

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self) -> Optional[float]:
        if self.armed:
            return self._event.time  # type: ignore[union-attr]
        return None

    def arm(self, delay: float, callback: Optional[Callable[[], None]] = None) -> None:
        """(Re-)arm the timer ``delay`` seconds from now."""
        self.cancel()
        fn = callback or self._callback
        if fn is None:
            raise SimulationError("timer armed without a callback")

        def fire() -> None:
            self._event = None
            fn()

        self._event = self._loop.schedule(delay, fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
