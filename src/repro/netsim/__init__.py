"""Discrete-event, packet-level network simulator.

This package is the testbed substrate for the reproduction: it plays the
role of the two-machine Ethernet testbed shaped with ``tc`` and Mahimahi in
the paper.  It provides

* an event engine (:mod:`repro.netsim.engine`),
* a constant-rate bottleneck link with a drop-tail buffer
  (:mod:`repro.netsim.link`),
* propagation paths with netem-style impairments
  (:mod:`repro.netsim.path`),
* reliable bulk-transfer endpoints that host a congestion controller
  (:mod:`repro.netsim.endpoint`),
* cross-traffic sources (:mod:`repro.netsim.crosstraffic`), and
* packet-trace capture for offline analysis (:mod:`repro.netsim.trace`).
"""

from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet, AckInfo
from repro.netsim.link import BottleneckLink, DropTailQueue
from repro.netsim.path import Path, NetemConfig
from repro.netsim.trace import FlowTrace, TraceRecord
from repro.netsim.endpoint import (
    Sender,
    Receiver,
    SenderConfig,
    ReceiverConfig,
    SpuriousUndoConfig,
)
from repro.netsim.network import (
    Network,
    FlowSpec,
    FlowResult,
    LinkConfig,
    run_flows,
)
from repro.netsim.crosstraffic import OnOffSource, CrossTrafficConfig
from repro.netsim.qlog import trace_to_qlog, write_qlog, load_qlog
from repro.netsim.pcap import write_pcap, read_pcap_summary

__all__ = [
    "EventLoop",
    "Packet",
    "AckInfo",
    "BottleneckLink",
    "DropTailQueue",
    "Path",
    "NetemConfig",
    "FlowTrace",
    "TraceRecord",
    "Sender",
    "Receiver",
    "SenderConfig",
    "ReceiverConfig",
    "SpuriousUndoConfig",
    "Network",
    "FlowSpec",
    "FlowResult",
    "LinkConfig",
    "run_flows",
    "OnOffSource",
    "CrossTrafficConfig",
    "trace_to_qlog",
    "write_qlog",
    "load_qlog",
    "write_pcap",
    "read_pcap_summary",
]
