"""Bottleneck link with a drop-tail buffer.

This models the shaped bottleneck the paper creates with ``tc`` and
Mahimahi: a constant-rate serializer preceded by a fixed-size FIFO queue
with tail drop.  The queue size is usually given in multiples of the
bandwidth-delay product, mirroring the paper's buffer axis
(0.5, 1, 3, 5 x BDP).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet


def bdp_bytes(bandwidth_bps: float, rtt_s: float) -> int:
    """Bandwidth-delay product in bytes for a link rate and base RTT."""
    return int(bandwidth_bps * rtt_s / 8)


class DropTailQueue:
    """A byte-bounded FIFO with tail drop.

    ``capacity_bytes`` bounds the amount of *queued* data, exclusive of the
    packet currently being serialized, which matches how token-bucket
    shapers (tc tbf / Mahimahi droptail) account their queue.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        #: Counters for diagnostics and tests.
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def offer(self, packet: Packet) -> bool:
        """Try to enqueue; returns False (tail drop) when full."""
        if self._bytes + packet.size > self.capacity_bytes:
            self.dropped += 1
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet


class BottleneckLink:
    """Constant-rate serializer fed by a drop-tail queue.

    Packets are delivered to ``on_deliver`` when their serialization
    completes; propagation delay is the business of the attached
    :class:`~repro.netsim.path.Path`, not the link.

    ``on_drop`` (if set) observes tail-dropped packets, which lets traces
    record loss events exactly the way a tcpdump on the bottleneck would
    infer them.
    """

    def __init__(
        self,
        loop: EventLoop,
        bandwidth_bps: float,
        queue: DropTailQueue,
        on_deliver: Callable[[Packet], None],
        on_drop: Optional[Callable[[Packet], None]] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self._loop = loop
        self.bandwidth_bps = bandwidth_bps
        self.queue = queue
        self._on_deliver = on_deliver
        self._on_drop = on_drop
        self._busy = False
        #: Total payload-carrying bytes serialized, for utilization checks.
        self.bytes_sent = 0

    def serialization_delay(self, size_bytes: int) -> float:
        return size_bytes * 8 / self.bandwidth_bps

    def send(self, packet: Packet) -> None:
        """Entry point: a packet arrives at the bottleneck."""
        now = self._loop.now
        packet.enqueue_time = now
        if self._busy:
            if not self.queue.offer(packet) and self._on_drop is not None:
                self._on_drop(packet)
            return
        self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        delay = self.serialization_delay(packet.size)
        self._loop.schedule(delay, lambda: self._complete(packet))

    def _complete(self, packet: Packet) -> None:
        self.bytes_sent += packet.size
        self._on_deliver(packet)
        nxt = self.queue.pop()
        if nxt is not None:
            self._transmit(nxt)
        else:
            self._busy = False

    @property
    def busy(self) -> bool:
        return self._busy

    def queueing_delay_estimate(self) -> float:
        """Current queue drain time in seconds (used by tests/diagnostics)."""
        return self.queue.bytes_queued * 8 / self.bandwidth_bps
