"""Export flow traces as real pcap files.

The paper's methodology is built on packet captures, so the reproduction
can hand its traces to the same tooling researchers already use
(wireshark, tcptrace, tshark).  Each delivery record becomes a minimal
synthetic UDP/IPv4 datagram whose payload carries the flow id, stream
sequence and send timestamp; losses are not in the capture (a tcpdump
at the receiver would not see them either).

Format: classic pcap (magic 0xa1b2c3d4), microsecond timestamps,
LINKTYPE_ETHERNET.  Written with ``struct`` only — no dependencies.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.netsim.trace import FlowTrace

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

_ETH_HEADER = struct.pack(
    "!6s6sH", b"\x02\x00\x00\x00\x00\x02", b"\x02\x00\x00\x00\x00\x01", 0x0800
)


def _ipv4_header(total_length: int, src: bytes, dst: bytes) -> bytes:
    header = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,  # version 4, IHL 5
        0,
        total_length,
        0,
        0,
        64,  # TTL
        17,  # UDP
        0,  # checksum filled below
        src,
        dst,
    )
    checksum = _inet_checksum(header)
    return header[:10] + struct.pack("!H", checksum) + header[12:]


def _inet_checksum(data: bytes) -> int:
    total = 0
    for i in range(0, len(data), 2):
        word = (data[i] << 8) + (data[i + 1] if i + 1 < len(data) else 0)
        total += word
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _udp_header(length: int, src_port: int, dst_port: int) -> bytes:
    return struct.pack("!HHHH", src_port, dst_port, length, 0)


def write_pcap(
    trace: FlowTrace,
    path: str,
    src_ip: Tuple[int, int, int, int] = (10, 0, 0, 1),
    dst_ip: Tuple[int, int, int, int] = (10, 0, 0, 2),
    base_port: int = 4433,
) -> int:
    """Write the trace's deliveries as a pcap file; returns packet count.

    Timestamps are the receiver-side arrival times.  The captured length
    is truncated to the headers + metadata payload, with the original
    packet size recorded in the pcap record header (``orig_len``), which
    is how short-snaplen tcpdump captures look.
    """
    src = bytes(src_ip)
    dst = bytes(dst_ip)
    port = base_port + trace.flow_id
    count = 0
    with open(path, "wb") as f:
        f.write(
            struct.pack(
                "!IHHiIII",
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # timezone offset
                0,  # sigfigs
                65535,  # snaplen
                LINKTYPE_ETHERNET,
            )
        )
        for record in trace.records:
            payload = struct.pack(
                "!IIdB",
                trace.flow_id,
                record.seq,
                record.sent_time,
                1 if record.is_retransmission else 0,
            )
            udp = _udp_header(8 + len(payload), port, port)
            ip = _ipv4_header(20 + 8 + len(payload), src, dst)
            frame = _ETH_HEADER + ip + udp + payload
            ts = record.arrival_time
            seconds = int(ts)
            micros = int(round((ts - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            f.write(
                struct.pack(
                    "!IIII", seconds, micros, len(frame), max(record.payload_bytes, len(frame))
                )
            )
            f.write(frame)
            count += 1
    return count


def read_pcap_summary(path: str) -> dict:
    """Parse a pcap written by :func:`write_pcap` back into a summary."""
    with open(path, "rb") as f:
        header = f.read(24)
        if len(header) < 24:
            raise ValueError("not a pcap file: truncated global header")
        magic = struct.unpack("!I", header[:4])[0]
        if magic != PCAP_MAGIC:
            raise ValueError(f"not a (big-endian classic) pcap file: magic {magic:#x}")
        packets = 0
        first_ts: Optional[float] = None
        last_ts: Optional[float] = None
        orig_bytes = 0
        retransmissions = 0
        while True:
            rec_header = f.read(16)
            if len(rec_header) < 16:
                break
            seconds, micros, caplen, orig_len = struct.unpack("!IIII", rec_header)
            frame = f.read(caplen)
            if len(frame) < caplen:
                raise ValueError("truncated packet record")
            ts = seconds + micros / 1e6
            first_ts = ts if first_ts is None else first_ts
            last_ts = ts
            packets += 1
            orig_bytes += orig_len
            # flow_id(4) seq(4) sent_time(8) retx(1) at the tail.
            payload = frame[14 + 20 + 8:]
            if len(payload) >= 17 and payload[16]:
                retransmissions += 1
    duration = (last_ts - first_ts) if packets and last_ts is not None else 0.0
    return {
        "packets": packets,
        "bytes": orig_bytes,
        "duration_s": duration,
        "retransmissions": retransmissions,
        "throughput_bps": orig_bytes * 8 / duration if duration > 0 else 0.0,
    }
