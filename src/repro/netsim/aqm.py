"""Active queue management disciplines (RED, CoDel, PIE, FQ-CoDel).

The paper measures over plain drop-tail buffers on purpose — deviations
should come from the implementation, not the network.  These disciplines
extend the testbed beyond the paper (its §6 calls for wider network
conditions): RED (random early detection, Floyd & Jacobson), CoDel
(controlled delay, Nichols & Jacobson), PIE (proportional-integral
controller enhanced, RFC 8033) and FQ-CoDel (flow-queued CoDel,
RFC 8290), all plugging into
:class:`~repro.netsim.link.BottleneckLink` through the same
offer/pop/bytes_queued interface as the drop-tail queue.

Every discipline registers itself in :data:`DISCIPLINES`, the single
source of truth consumed by :func:`make_queue` and by
``LinkConfig.validate`` — a new discipline registers once and is
immediately constructible and spec-valid everywhere.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from typing import Callable, Dict, Optional, Tuple

from repro.netsim.link import DropTailQueue
from repro.netsim.packet import Packet


class REDQueue:
    """Random Early Detection with the classic gentle-RED drop curve.

    Drop probability rises linearly from 0 at ``min_thresh`` to
    ``max_p`` at ``max_thresh`` (computed over an EWMA of the queue size),
    then linearly to 1 at ``2*max_thresh``; hard drop beyond capacity.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_thresh_fraction: float = 0.25,
        max_thresh_fraction: float = 0.75,
        max_p: float = 0.1,
        weight: float = 0.002,
        rng: Optional[random.Random] = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < min_thresh_fraction < max_thresh_fraction <= 1:
            raise ValueError("thresholds must satisfy 0 < min < max <= 1")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        self.capacity_bytes = capacity_bytes
        self.min_thresh = min_thresh_fraction * capacity_bytes
        self.max_thresh = max_thresh_fraction * capacity_bytes
        self.max_p = max_p
        self.weight = weight
        self._rng = rng or random.Random(0)
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self._avg = 0.0
        self.enqueued = 0
        self.dropped = 0
        self.early_drops = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def _drop_probability(self) -> float:
        avg = self._avg
        if avg < self.min_thresh:
            return 0.0
        if avg < self.max_thresh:
            return self.max_p * (avg - self.min_thresh) / (
                self.max_thresh - self.min_thresh
            )
        # Gentle region up to 2*max_thresh.
        gentle_top = min(2 * self.max_thresh, self.capacity_bytes)
        if avg < gentle_top:
            return self.max_p + (1 - self.max_p) * (avg - self.max_thresh) / max(
                gentle_top - self.max_thresh, 1e-9
            )
        return 1.0

    def offer(self, packet: Packet) -> bool:
        self._avg = (1 - self.weight) * self._avg + self.weight * self._bytes
        if self._bytes + packet.size > self.capacity_bytes:
            self.dropped += 1
            return False
        if self._rng.random() < self._drop_probability():
            self.dropped += 1
            self.early_drops += 1
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet


class CoDelQueue:
    """Controlled-Delay AQM (simplified ACM Queue pseudocode version).

    Packets carry their enqueue time; at dequeue, if the sojourn time has
    stayed above ``target`` for at least ``interval``, CoDel enters a
    dropping state and drops at intervals shrinking with the square root
    of the drop count.  Requires a clock callable so the sojourn time can
    be measured.
    """

    TARGET = 0.005
    INTERVAL = 0.100

    def __init__(
        self,
        capacity_bytes: int,
        clock: Callable[[], float],
        target_s: float = TARGET,
        interval_s: float = INTERVAL,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("target and interval must be positive")
        self.capacity_bytes = capacity_bytes
        self.target = target_s
        self.interval = interval_s
        self._clock = clock
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0
        self.early_drops = 0
        # Dropping-state machinery.
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def offer(self, packet: Packet) -> bool:
        if self._bytes + packet.size > self.capacity_bytes:
            self.dropped += 1
            return False
        packet.enqueue_time = self._clock()
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def _should_drop(self, packet: Packet, now: float) -> bool:
        sojourn = now - packet.enqueue_time
        if sojourn < self.target or self._bytes < 2 * 1500:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def pop(self) -> Optional[Packet]:
        now = self._clock()
        packet = self._dequeue()
        if packet is None:
            self._dropping = False
            return None
        drop = self._should_drop(packet, now)
        if self._dropping:
            if not drop:
                self._dropping = False
            else:
                while now >= self._drop_next and self._dropping:
                    self.dropped += 1
                    self.early_drops += 1
                    self._drop_count += 1
                    packet = self._dequeue()
                    if packet is None or not self._should_drop(packet, now):
                        self._dropping = False
                        break
                    self._drop_next += self.interval / (self._drop_count ** 0.5)
        elif drop:
            self._dropping = True
            self.dropped += 1
            self.early_drops += 1
            survivor = self._dequeue()
            self._drop_count = max(self._drop_count - 2, 1)
            self._drop_next = now + self.interval / (self._drop_count ** 0.5)
            return survivor
        return packet

    def _dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet


class PIEQueue:
    """Proportional-Integral controller Enhanced AQM (RFC 8033, simplified).

    On a fixed ``t_update`` cadence the controller estimates the current
    queueing delay from the queue backlog and the measured drain rate,
    then moves the drop probability with a PI step:
    ``p += alpha * (delay - target) + beta * (delay - delay_old)``.
    Arriving packets are random-dropped with probability ``p`` (RFC 8033
    §4.2 safeguards: no early drops while the delay is clearly below
    target and ``p`` small, nor while the backlog is under two packets).

    Simplifications vs the RFC: no burst allowance and no derandomised
    drops — both exist to smooth sub-second artifacts that the
    deterministic event loop does not produce.
    """

    TARGET = 0.015
    T_UPDATE = 0.015

    def __init__(
        self,
        capacity_bytes: int,
        clock: Callable[[], float],
        target_s: float = TARGET,
        t_update_s: float = T_UPDATE,
        alpha: float = 0.125,
        beta: float = 1.25,
        rng: Optional[random.Random] = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if target_s <= 0 or t_update_s <= 0:
            raise ValueError("target and t_update must be positive")
        self.capacity_bytes = capacity_bytes
        self.target = target_s
        self.t_update = t_update_s
        self.alpha = alpha
        self.beta = beta
        self._clock = clock
        self._rng = rng or random.Random(0)
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0
        self.early_drops = 0
        #: Current drop probability (diagnostics, tests).
        self.drop_probability = 0.0
        self._delay_old = 0.0
        self._last_update = 0.0
        self._dequeued_since_update = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def _update_probability(self, now: float) -> None:
        elapsed = now - self._last_update
        if elapsed < self.t_update:
            return
        # Little's-law delay estimate: backlog over the measured drain
        # rate of the last interval (RFC 8033 §4.3, departure-rate mode).
        drain_rate = self._dequeued_since_update / elapsed
        if drain_rate > 0:
            delay = self._bytes / drain_rate
        else:
            delay = 0.0 if self._bytes == 0 else self._delay_old
        p = self.drop_probability
        step = self.alpha * (delay - self.target) + self.beta * (
            delay - self._delay_old
        )
        # RFC 8033 §4.2: scale the step down while p is small so the
        # controller creeps out of the no-drop regime instead of jumping.
        if p < 0.01:
            step *= 0.125
        elif p < 0.1:
            step *= 0.5
        self.drop_probability = min(max(p + step, 0.0), 1.0)
        if self._bytes == 0:
            # Idle queue: decay toward zero so a past overload does not
            # tax the next burst.
            self.drop_probability *= 0.98
        self._delay_old = delay
        self._last_update = now
        self._dequeued_since_update = 0

    def offer(self, packet: Packet) -> bool:
        now = self._clock()
        self._update_probability(now)
        if self._bytes + packet.size > self.capacity_bytes:
            self.dropped += 1
            return False
        safe = (
            self._delay_old < self.target / 2 and self.drop_probability < 0.2
        ) or self._bytes < 2 * 1500
        if not safe and self._rng.random() < self.drop_probability:
            self.dropped += 1
            self.early_drops += 1
            return False
        packet.enqueue_time = now
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self._dequeued_since_update += packet.size
        return packet


class FQCoDelQueue:
    """Flow-queued CoDel (RFC 8290, simplified).

    Packets are partitioned into per-flow sub-queues by ``flow_id``;
    a deficit round-robin scheduler (quantum = one MTU) serves the
    sub-queues, giving new flows one quantum of priority before they
    join the old-flows rotation.  Each sub-queue runs its own CoDel
    sojourn-time drop logic, so one bufferbloating flow is shed without
    touching well-behaved competitors — exactly the isolation that
    matters once topologies carry heterogeneous flows.

    Simplifications vs the RFC: flows hash perfectly (``flow_id`` is
    already unique per flow here, so no set-associative collisions) and
    overload drops fall on the fattest sub-queue without ECN.
    """

    QUANTUM = 1514

    def __init__(
        self,
        capacity_bytes: int,
        clock: Callable[[], float],
        quantum_bytes: int = QUANTUM,
        target_s: float = CoDelQueue.TARGET,
        interval_s: float = CoDelQueue.INTERVAL,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if quantum_bytes <= 0:
            raise ValueError("quantum must be positive")
        self.capacity_bytes = capacity_bytes
        self.quantum = quantum_bytes
        self.target = target_s
        self.interval = interval_s
        self._clock = clock
        #: flow key -> per-flow CoDel sub-queue, in creation order.
        self._flows: "OrderedDict[int, CoDelQueue]" = OrderedDict()
        self._deficits: Dict[int, int] = {}
        self._new_flows: deque[int] = deque()
        self._old_flows: deque[int] = deque()
        self._bytes = 0
        self._count = 0
        self.enqueued = 0
        self.dropped = 0
        self.early_drops = 0

    def __len__(self) -> int:
        return self._count

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def _subqueue(self, key: int) -> CoDelQueue:
        sub = self._flows.get(key)
        if sub is None:
            sub = CoDelQueue(
                self.capacity_bytes,
                clock=self._clock,
                target_s=self.target,
                interval_s=self.interval,
            )
            self._flows[key] = sub
            self._deficits[key] = self.quantum
            self._new_flows.append(key)
        return sub

    def _drop_from_fattest(self) -> bool:
        fattest = None
        for key, sub in self._flows.items():
            if len(sub) and (
                fattest is None
                or sub.bytes_queued > self._flows[fattest].bytes_queued
            ):
                fattest = key
        if fattest is None:
            return False
        victim = self._flows[fattest]._dequeue()
        if victim is None:  # pragma: no cover - guarded by len() above
            return False
        self._bytes -= victim.size
        self._count -= 1
        self.dropped += 1
        return True

    def offer(self, packet: Packet) -> bool:
        if self._bytes + packet.size > self.capacity_bytes:
            # RFC 8290 §4.1.2: overload sheds from the fattest flow so a
            # hog cannot starve thin flows of buffer space.  The arriving
            # packet is still accepted if that freed enough room.
            if not self._drop_from_fattest() or (
                self._bytes + packet.size > self.capacity_bytes
            ):
                self.dropped += 1
                return False
        sub = self._subqueue(packet.flow_id)
        if not sub.offer(packet):  # pragma: no cover - parent bounds first
            self.dropped += 1
            return False
        if packet.flow_id not in self._new_flows and (
            packet.flow_id not in self._old_flows
        ):
            # The flow drained and left the rotation earlier; it re-enters
            # as a new flow with a fresh quantum, per the RFC.
            self._deficits[packet.flow_id] = self.quantum
            self._new_flows.append(packet.flow_id)
        self._bytes += packet.size
        self._count += 1
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        while self._count:
            if self._new_flows:
                schedule, key = self._new_flows, self._new_flows[0]
            elif self._old_flows:
                schedule, key = self._old_flows, self._old_flows[0]
            else:  # pragma: no cover - _count implies a scheduled flow
                return None
            if self._deficits[key] <= 0:
                self._deficits[key] += self.quantum
                schedule.popleft()
                self._old_flows.append(key)
                continue
            sub = self._flows[key]
            before = sub.bytes_queued
            dropped_before = sub.dropped
            packet = sub.pop()
            delta_dropped = sub.dropped - dropped_before
            self.dropped += delta_dropped
            self.early_drops += delta_dropped
            if packet is None:
                self._count -= delta_dropped
                self._bytes -= before - sub.bytes_queued
                # Empty sub-queue: a new flow moves to the old rotation
                # (keeping its deficit); an old flow leaves the schedule.
                schedule.popleft()
                if schedule is self._new_flows:
                    self._old_flows.append(key)
                continue
            self._count -= 1 + delta_dropped
            self._bytes -= before - sub.bytes_queued
            self._deficits[key] -= packet.size
            return packet
        return None


#: The discipline registry: name -> factory(capacity_bytes, clock, rng).
#: ``LinkConfig.validate`` and :func:`make_queue` both consume this, so
#: registering here is the *only* step a new discipline needs.
DISCIPLINES: Dict[str, Callable] = {}


def register_discipline(name: str, factory: Callable) -> None:
    """Register a queue factory ``(capacity_bytes, clock, rng) -> queue``."""
    if name in DISCIPLINES:
        raise ValueError(f"queue discipline {name!r} is already registered")
    DISCIPLINES[name] = factory


def disciplines() -> Tuple[str, ...]:
    """Every registered discipline name, sorted (for messages and docs)."""
    return tuple(sorted(DISCIPLINES))


register_discipline("droptail", lambda capacity, clock, rng: DropTailQueue(capacity))
register_discipline("red", lambda capacity, clock, rng: REDQueue(capacity, rng=rng))
register_discipline("codel", lambda capacity, clock, rng: CoDelQueue(capacity, clock=clock))
register_discipline("pie", lambda capacity, clock, rng: PIEQueue(capacity, clock=clock, rng=rng))
register_discipline("fq_codel", lambda capacity, clock, rng: FQCoDelQueue(capacity, clock=clock))


def make_queue(
    discipline: str,
    capacity_bytes: int,
    clock: Callable[[], float],
    rng: Optional[random.Random] = None,
):
    """Factory used by the network wiring; see :data:`DISCIPLINES`."""
    try:
        factory = DISCIPLINES[discipline]
    except KeyError:
        raise ValueError(
            f"unknown queue discipline {discipline!r} "
            f"(known: {', '.join(disciplines())})"
        ) from None
    return factory(capacity_bytes, clock, rng)
