"""Active queue management disciplines (RED, CoDel).

The paper measures over plain drop-tail buffers on purpose — deviations
should come from the implementation, not the network.  These disciplines
extend the testbed beyond the paper (its §6 calls for wider network
conditions): RED (random early detection, Floyd & Jacobson) and CoDel
(controlled delay, Nichols & Jacobson), both plugging into
:class:`~repro.netsim.link.BottleneckLink` through the same
offer/pop/bytes_queued interface as the drop-tail queue.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Optional

from repro.netsim.packet import Packet


class REDQueue:
    """Random Early Detection with the classic gentle-RED drop curve.

    Drop probability rises linearly from 0 at ``min_thresh`` to
    ``max_p`` at ``max_thresh`` (computed over an EWMA of the queue size),
    then linearly to 1 at ``2*max_thresh``; hard drop beyond capacity.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_thresh_fraction: float = 0.25,
        max_thresh_fraction: float = 0.75,
        max_p: float = 0.1,
        weight: float = 0.002,
        rng: Optional[random.Random] = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < min_thresh_fraction < max_thresh_fraction <= 1:
            raise ValueError("thresholds must satisfy 0 < min < max <= 1")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        self.capacity_bytes = capacity_bytes
        self.min_thresh = min_thresh_fraction * capacity_bytes
        self.max_thresh = max_thresh_fraction * capacity_bytes
        self.max_p = max_p
        self.weight = weight
        self._rng = rng or random.Random(0)
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self._avg = 0.0
        self.enqueued = 0
        self.dropped = 0
        self.early_drops = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def _drop_probability(self) -> float:
        avg = self._avg
        if avg < self.min_thresh:
            return 0.0
        if avg < self.max_thresh:
            return self.max_p * (avg - self.min_thresh) / (
                self.max_thresh - self.min_thresh
            )
        # Gentle region up to 2*max_thresh.
        gentle_top = min(2 * self.max_thresh, self.capacity_bytes)
        if avg < gentle_top:
            return self.max_p + (1 - self.max_p) * (avg - self.max_thresh) / max(
                gentle_top - self.max_thresh, 1e-9
            )
        return 1.0

    def offer(self, packet: Packet) -> bool:
        self._avg = (1 - self.weight) * self._avg + self.weight * self._bytes
        if self._bytes + packet.size > self.capacity_bytes:
            self.dropped += 1
            return False
        if self._rng.random() < self._drop_probability():
            self.dropped += 1
            self.early_drops += 1
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet


class CoDelQueue:
    """Controlled-Delay AQM (simplified ACM Queue pseudocode version).

    Packets carry their enqueue time; at dequeue, if the sojourn time has
    stayed above ``target`` for at least ``interval``, CoDel enters a
    dropping state and drops at intervals shrinking with the square root
    of the drop count.  Requires a clock callable so the sojourn time can
    be measured.
    """

    TARGET = 0.005
    INTERVAL = 0.100

    def __init__(
        self,
        capacity_bytes: int,
        clock: Callable[[], float],
        target_s: float = TARGET,
        interval_s: float = INTERVAL,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("target and interval must be positive")
        self.capacity_bytes = capacity_bytes
        self.target = target_s
        self.interval = interval_s
        self._clock = clock
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0
        self.early_drops = 0
        # Dropping-state machinery.
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    def offer(self, packet: Packet) -> bool:
        if self._bytes + packet.size > self.capacity_bytes:
            self.dropped += 1
            return False
        packet.enqueue_time = self._clock()
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def _should_drop(self, packet: Packet, now: float) -> bool:
        sojourn = now - packet.enqueue_time
        if sojourn < self.target or self._bytes < 2 * 1500:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def pop(self) -> Optional[Packet]:
        now = self._clock()
        packet = self._dequeue()
        if packet is None:
            self._dropping = False
            return None
        drop = self._should_drop(packet, now)
        if self._dropping:
            if not drop:
                self._dropping = False
            else:
                while now >= self._drop_next and self._dropping:
                    self.dropped += 1
                    self.early_drops += 1
                    self._drop_count += 1
                    packet = self._dequeue()
                    if packet is None or not self._should_drop(packet, now):
                        self._dropping = False
                        break
                    self._drop_next += self.interval / (self._drop_count ** 0.5)
        elif drop:
            self._dropping = True
            self.dropped += 1
            self.early_drops += 1
            survivor = self._dequeue()
            self._drop_count = max(self._drop_count - 2, 1)
            self._drop_next = now + self.interval / (self._drop_count ** 0.5)
            return survivor
        return packet

    def _dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet


def make_queue(
    discipline: str,
    capacity_bytes: int,
    clock: Callable[[], float],
    rng: Optional[random.Random] = None,
):
    """Factory used by the network wiring: 'droptail' | 'red' | 'codel'."""
    from repro.netsim.link import DropTailQueue

    if discipline == "droptail":
        return DropTailQueue(capacity_bytes)
    if discipline == "red":
        return REDQueue(capacity_bytes, rng=rng)
    if discipline == "codel":
        return CoDelQueue(capacity_bytes, clock=clock)
    raise ValueError(f"unknown queue discipline {discipline!r}")
