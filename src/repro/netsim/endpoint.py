"""Transport endpoints: a reliable bulk sender and its receiver.

The sender hosts a :class:`~repro.cca.base.CongestionController` and
implements everything a CCA needs from its surrounding stack:

* reliable delivery with retransmissions,
* loss detection in either kernel-TCP style (SACK + 3-dup threshold + RTO)
  or QUIC style (RFC 9002: packet threshold 3, time threshold
  9/8 * max(srtt, latest_rtt), probe timeout),
* RTT estimation and delivery-rate sampling (for BBR),
* pacing with optional send-timer quantization (the "stack-level artifact"
  knob used to model xquic/neqo, §5 of the paper),
* Eifel-style spurious-loss detection (original copy of a declared-lost
  packet is later acknowledged) plus quiche's isolated-episode undo
  heuristic, both feeding
  :meth:`~repro.cca.base.CongestionController.on_spurious_congestion`.

The receiver implements the ACK policy (ACK frequency and delayed-ACK
timer) and echoes per-packet send timestamps so the sender can detect
spurious loss declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cca.base import AckEvent, CongestionController
from repro.cca.rtt import RttEstimator
from repro.netsim.engine import EventLoop, Timer
from repro.netsim.packet import ACK_SIZE, AckInfo, Packet
from repro.netsim.trace import FlowTrace

#: RFC 9002 / SACK reordering threshold, packets.
PACKET_THRESHOLD = 3


@dataclass
class SpuriousUndoConfig:
    """quiche-style congestion-event undo (RFC8312bis §4.9 as deployed).

    quiche rolls back a multiplicative decrease when the triggering loss is
    classified as spurious.  Besides the textbook signal (the "lost"
    packet's original copy is acknowledged later — Eifel detection), the
    deployed behaviour effectively undoes back-offs for isolated loss
    episodes; we model that as: if at most ``max_episode_losses`` packets
    were declared lost within ``window_rtts`` round trips of the
    congestion event, the event is deemed spurious.
    """

    window_rtts: float = 1.0
    max_episode_losses: int = 3


@dataclass
class SenderConfig:
    """Stack-level sender behaviour (one per QUIC stack / kernel TCP)."""

    mss: int = 1448
    #: "tcp" = SACK + dup threshold + RTO; "quic" = RFC 9002.
    loss_style: str = "quic"
    initial_rtt: float = 0.1
    #: Event-loop send-timer granularity in seconds; 0 = ideal timers.
    #: Non-zero values quantize every transmission opportunity, modelling
    #: coarse userspace timers (xquic, neqo stack artifacts).
    send_timer_granularity: float = 0.0
    #: Always-on pacing even for window-based CCAs (some QUIC stacks pace
    #: CUBIC/Reno at 2x the estimated bandwidth; kernel TCP does not).
    pace_window_ccas: bool = False
    #: Scale factor on the cwnd enforced by the stack (1.0 = faithful).
    cwnd_scale: float = 1.0
    #: Spurious-undo heuristic; None disables it (everyone but quiche).
    spurious_undo: Optional[SpuriousUndoConfig] = None
    #: Minimum interval between cwnd trace samples, seconds.
    cwnd_sample_interval: float = 0.01
    #: Total payload to transfer; None = unlimited bulk flow.  Finite
    #: flows stop sending fresh data once this much has been handed to
    #: the transport and report a completion time when it is all acked.
    total_bytes: Optional[int] = None

    def validate(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.loss_style not in ("tcp", "quic"):
            raise ValueError(f"unknown loss style {self.loss_style!r}")
        if self.send_timer_granularity < 0:
            raise ValueError("timer granularity must be non-negative")
        if self.cwnd_scale <= 0:
            raise ValueError("cwnd scale must be positive")
        if self.total_bytes is not None and self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive when set")


class _SentPacket:
    __slots__ = (
        "seq",
        "size",
        "sent_time",
        "acked",
        "lost",
        "retx_of",
        "delivered_at_send",
        "delivered_time_at_send",
    )

    def __init__(self, seq: int, size: int, sent_time: float):
        self.seq = seq
        self.size = size
        self.sent_time = sent_time
        self.acked = False
        self.lost = False
        self.retx_of: Optional[int] = None
        self.delivered_at_send = 0
        self.delivered_time_at_send = sent_time


class Sender:
    """Reliable bulk-transfer sender hosting a congestion controller."""

    def __init__(
        self,
        loop: EventLoop,
        flow_id: int,
        cca: CongestionController,
        transmit: Callable[[Packet], None],
        config: Optional[SenderConfig] = None,
        trace: Optional[FlowTrace] = None,
    ):
        config = config or SenderConfig()
        config.validate()
        self._loop = loop
        self.flow_id = flow_id
        self.cca = cca
        self._transmit = transmit
        self.config = config
        self.trace = trace

        self.rtt = RttEstimator(initial_rtt=config.initial_rtt)
        self._next_seq = 0
        self._sent: Dict[int, _SentPacket] = {}
        self._lowest_unacked = 0
        self._largest_acked = -1
        self.bytes_in_flight = 0
        self.delivered_bytes = 0
        self._delivered_time = 0.0

        # Round accounting (BBR-style).
        self.round_count = 0
        self._round_end_delivered = 0

        # Recovery / congestion-event de-duplication.
        self._recovery_until_seq = -1
        self._in_recovery = False
        self._congestion_events = 0

        # Retransmission queue: original seqs awaiting retransmission.
        self._retx_queue: List[int] = []

        # Spurious-loss bookkeeping: seq -> original sent_time.
        self._declared_lost: Dict[int, float] = {}
        self._episode_losses = 0
        self._episode_check: Optional[Timer] = None
        self._undo_pending = False

        # Timers.
        self._rto_timer = Timer(loop, self._on_rto_timeout)
        self._loss_timer = Timer(loop, self._on_loss_timer)
        self._consecutive_timeouts = 0
        self._send_wakeup: Optional[object] = None
        self._next_send_time = 0.0
        self._last_cwnd_sample = -1.0
        self._started = False
        self._stopped = False

        # Counters for tests/diagnostics.
        self.packets_sent = 0
        self.retransmissions = 0
        self.spurious_events = 0

        # Finite-flow bookkeeping.
        self._fresh_bytes_sent = 0
        self._start_time: Optional[float] = None
        #: Set once all of ``total_bytes`` has been acknowledged.
        self.completion_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._start_time = self._loop.now
        self._try_send()

    @property
    def complete(self) -> bool:
        return self.completion_time is not None

    def _has_fresh_data(self) -> bool:
        total = self.config.total_bytes
        return total is None or self._fresh_bytes_sent < total

    @property
    def effective_cwnd(self) -> int:
        return int(self.cca.cwnd * self.config.cwnd_scale)

    def _pacing_rate(self) -> Optional[float]:
        rate = self.cca.pacing_rate()
        if rate is not None:
            return rate
        if self.config.pace_window_ccas:
            # Pace window CCAs at 2 * cwnd/srtt like several QUIC stacks.
            return 2 * self.effective_cwnd / self.rtt.smoothed
        return None

    def _quantize(self, t: float) -> float:
        g = self.config.send_timer_granularity
        if g <= 0:
            return t
        ticks = int(t / g)
        quantized = ticks * g
        if quantized < t - 1e-12:
            quantized += g
        return quantized

    def _try_send(self) -> None:
        if self._stopped:
            return
        now = self._loop.now
        mss = self.config.mss
        while True:
            if not self._retx_queue and not self._has_fresh_data():
                return  # finite flow: everything handed to the transport.
            if self.bytes_in_flight + mss > self.effective_cwnd:
                return  # cwnd-limited; ACKs will re-trigger us.
            send_at = self._quantize(max(self._next_send_time, now))
            if send_at > now + 1e-12:
                self._schedule_wakeup(send_at)
                return
            self._send_packet(now)
            rate = self._pacing_rate()
            if rate is not None and rate > 0:
                self._next_send_time = max(self._next_send_time, now) + mss / rate

    def _schedule_wakeup(self, at: float) -> None:
        if self._send_wakeup is not None:
            return
        def wake() -> None:
            self._send_wakeup = None
            self._try_send()
        self._send_wakeup = self._loop.schedule_at(at, wake)

    def _send_packet(self, now: float) -> None:
        retx_of: Optional[int] = None
        while self._retx_queue:
            candidate = self._retx_queue.pop(0)
            info = self._sent.get(candidate)
            if info is not None and info.lost and not info.acked:
                # A lost retransmission still carries the *original*
                # stream sequence; pointing at the carrier would orphan
                # the stream data if the carrier is lost again.
                retx_of = info.retx_of if info.retx_of is not None else candidate
                break
        if retx_of is None:
            if not self._has_fresh_data():
                return  # only stale retransmission entries were queued
            self._fresh_bytes_sent += self.config.mss
        seq = self._next_seq
        self._next_seq += 1
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            size=self.config.mss,
            sent_time=now,
            retx_of=retx_of,
        )
        info = _SentPacket(seq, self.config.mss, now)
        info.retx_of = retx_of
        info.delivered_at_send = self.delivered_bytes
        info.delivered_time_at_send = self._delivered_time or now
        self._sent[seq] = info
        self.bytes_in_flight += self.config.mss
        self.packets_sent += 1
        if retx_of is not None:
            self.retransmissions += 1
        self.cca.on_packet_sent(now, self.bytes_in_flight, self.config.mss)
        self._arm_rto()
        self._sample_cwnd(now)
        self._transmit(packet)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        assert packet.is_ack and packet.ack is not None
        ack = packet.ack
        now = self._loop.now
        newly_acked_bytes = 0
        largest_newly: Optional[_SentPacket] = None

        for seq in ack.newly_acked:
            info = self._sent.get(seq)
            if info is None or info.acked:
                continue
            info.acked = True
            if not info.lost:
                self.bytes_in_flight -= info.size
            newly_acked_bytes += info.size
            self.delivered_bytes += info.size
            if largest_newly is None or seq > largest_newly.seq:
                largest_newly = info
            # Spurious detection: the original copy of a packet we had
            # declared lost has been delivered after all.
            original = info.retx_of if info.retx_of is not None else seq
            if seq in self._declared_lost:
                del self._declared_lost[seq]
                if info.retx_of is None:
                    self._on_spurious_loss(now)
            self._declared_lost.pop(original, None)

        if largest_newly is None:
            return
        self._delivered_time = now
        if largest_newly.seq > self._largest_acked:
            self._largest_acked = largest_newly.seq
        self._advance_lowest_unacked()

        # Recovery ends once data sent after the congestion event is acked.
        if self._in_recovery and self._largest_acked >= self._recovery_until_seq:
            self._in_recovery = False
            self.cca.on_recovery_exit(now)

        # Round accounting.
        if largest_newly.delivered_at_send >= self._round_end_delivered:
            self.round_count += 1
            self._round_end_delivered = self.delivered_bytes

        # RTT sample from the largest newly acked packet.
        rtt_sample: Optional[float] = None
        if largest_newly.seq == self._largest_acked:
            sample = now - largest_newly.sent_time
            if self.config.loss_style == "quic":
                sample = max(sample - ack.ack_delay, 1e-6)
            if sample > 0:
                rtt_sample = sample
                self.rtt.update(sample)

        # Delivery-rate sample.
        delivery_rate: Optional[float] = None
        interval = now - largest_newly.delivered_time_at_send
        if interval > 0:
            delivery_rate = (
                self.delivered_bytes - largest_newly.delivered_at_send
            ) / interval

        self._detect_losses(now)

        event = AckEvent(
            now=now,
            bytes_acked=newly_acked_bytes,
            rtt_sample=rtt_sample,
            delivery_rate=delivery_rate,
            is_app_limited=False,
            bytes_in_flight=self.bytes_in_flight,
            round_count=self.round_count,
        )
        self.cca.on_ack(event)
        self._consecutive_timeouts = 0

        # Finite-flow completion: all data handed over and none pending.
        if self.completion_time is None and not self._has_fresh_data():
            # Spurious declarations can leave already-acked entries in
            # the retransmission queue; purge before deciding.
            self._retx_queue = [
                s
                for s in self._retx_queue
                if (info := self._sent.get(s)) is not None
                and info.lost
                and not info.acked
            ]
        if (
            self.completion_time is None
            and not self._has_fresh_data()
            and not self._retx_queue
            and self.bytes_in_flight <= 0
            and self._lowest_unacked >= self._next_seq
        ):
            self.completion_time = now
            self._rto_timer.cancel()
            self._loss_timer.cancel()

        self._arm_rto()
        self._sample_cwnd(now)
        self._try_send()

    def _advance_lowest_unacked(self) -> None:
        sent = self._sent
        low = self._lowest_unacked
        nxt = self._next_seq
        while low < nxt:
            info = sent.get(low)
            if info is None or info.acked or info.lost:
                low += 1
            else:
                break
        self._lowest_unacked = low

    # ------------------------------------------------------------------
    # Loss detection
    # ------------------------------------------------------------------
    def _detect_losses(self, now: float) -> None:
        """Declare losses by packet threshold and time threshold.

        The packet threshold is the classic 3-dup/SACK reordering degree.
        The time threshold covers small windows where 3 later deliveries
        may never happen: QUIC's 9/8 * max(srtt, latest_rtt) (RFC 9002
        §6.1.2), which kernel TCP matches in spirit via RACK-TLP (the
        default since 4.18, so also on the paper's 5.13 testbed).  A loss
        timer re-runs detection when the earliest outstanding packet
        crosses the threshold without further ACKs arriving.
        """
        largest = self._largest_acked
        if largest < 0:
            return
        # Both modes use the QUIC-style 9/8 threshold: kernel RACK-TLP's
        # adaptive window behaves similarly at these time scales, and an
        # asymmetric threshold systematically biases kernel-vs-QUIC BBR
        # competition (verified during calibration).
        threshold = self.rtt.loss_time_threshold()
        threshold_time = now - threshold
        lost_any = False
        earliest_pending: Optional[float] = None
        for seq in range(self._lowest_unacked, largest):
            info = self._sent.get(seq)
            if info is None or info.acked or info.lost:
                continue
            lost = largest - seq >= PACKET_THRESHOLD
            if not lost:
                if info.sent_time <= threshold_time:
                    lost = True
                elif earliest_pending is None:
                    earliest_pending = info.sent_time + threshold
            if lost:
                self._declare_lost(info, now)
                lost_any = True
        if earliest_pending is not None:
            self._loss_timer.arm(max(earliest_pending - now, 1e-6))
        else:
            self._loss_timer.cancel()
        if lost_any:
            self._advance_lowest_unacked()
            self._try_send()

    def _on_loss_timer(self) -> None:
        self._detect_losses(self._loop.now)

    def _declare_lost(self, info: _SentPacket, now: float, notify: bool = True) -> None:
        info.lost = True
        self.bytes_in_flight -= info.size
        self._retx_queue.append(info.seq)
        self._declared_lost[info.seq] = info.sent_time
        if self.trace is not None:
            self.trace.on_loss(now, info.seq)
        self._episode_losses += 1
        if notify and info.seq > self._recovery_until_seq:
            self._begin_congestion_event(now)

    def _begin_congestion_event(self, now: float) -> None:
        self._recovery_until_seq = self._next_seq - 1
        self._in_recovery = True
        self._congestion_events += 1
        self._episode_losses = 1
        self.cca.on_congestion_event(now, self.bytes_in_flight)
        self._sample_cwnd(now, force=True)
        undo = self.config.spurious_undo
        if undo is not None:
            self._schedule_episode_check(now, undo)

    def _schedule_episode_check(self, now: float, undo: SpuriousUndoConfig) -> None:
        window = undo.window_rtts * self.rtt.smoothed
        if self._episode_check is None:
            self._episode_check = Timer(self._loop)
        def check() -> None:
            if self._episode_losses <= undo.max_episode_losses:
                self._on_spurious_loss(self._loop.now)
        self._episode_check.arm(window, check)

    def _on_spurious_loss(self, now: float) -> None:
        self.spurious_events += 1
        self.cca.on_spurious_congestion(now)
        self._sample_cwnd(now, force=True)

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self.bytes_in_flight <= 0:
            self._rto_timer.cancel()
            return
        rto = self.rtt.rto() * (2 ** min(self._consecutive_timeouts, 6))
        self._rto_timer.arm(rto)

    def _on_rto_timeout(self) -> None:
        now = self._loop.now
        self._consecutive_timeouts += 1
        # Everything outstanding is presumed lost (kernel
        # ``tcp_enter_loss`` marks all non-SACKed segments lost).  Anything
        # less can deadlock: phantom in-flight bytes above the collapsed
        # cwnd would block retransmission forever.
        any_lost = False
        for seq in range(self._lowest_unacked, self._next_seq):
            info = self._sent.get(seq)
            if info is not None and not info.acked and not info.lost:
                # The CCA is notified below (RTO collapse or, for QUIC's
                # first probe timeout, not at all); the losses are silent.
                self._declare_lost(info, now, notify=False)
                any_lost = True
        if any_lost:
            self._recovery_until_seq = self._next_seq - 1
            self._advance_lowest_unacked()
        collapse = (
            self.config.loss_style == "tcp" or self._consecutive_timeouts >= 2
        )
        if collapse:
            self.cca.on_rto(now)
            self._sample_cwnd(now, force=True)
        self._arm_rto()
        self._try_send()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _sample_cwnd(self, now: float, force: bool = False) -> None:
        if self.trace is None:
            return
        if not force and now - self._last_cwnd_sample < self.config.cwnd_sample_interval:
            return
        self._last_cwnd_sample = now
        self.trace.on_cwnd(now, self.effective_cwnd)
        rate = self._pacing_rate()
        if rate is not None:
            self.trace.on_rate(now, rate)

    def stop(self) -> None:
        """Stop sending and cancel timers so the event loop can drain."""
        self._stopped = True
        self._rto_timer.cancel()
        self._loss_timer.cancel()
        if self._episode_check is not None:
            self._episode_check.cancel()
        if self._send_wakeup is not None:
            self._send_wakeup.cancel()  # type: ignore[attr-defined]
            self._send_wakeup = None


@dataclass
class ReceiverConfig:
    """ACK generation policy."""

    #: Emit an ACK every N ack-eliciting packets (QUIC default 2,
    #: kernel delayed-ACK effectively 2).
    ack_frequency: int = 2
    #: Maximum time a pending ACK may be delayed (QUIC max_ack_delay
    #: 25 ms; kernel delayed-ACK timer 40 ms).
    max_ack_delay: float = 0.025
    #: ACK immediately on out-of-order arrivals (both TCP and QUIC do).
    immediate_on_reorder: bool = True

    def validate(self) -> None:
        if self.ack_frequency < 1:
            raise ValueError("ack frequency must be >= 1")
        if self.max_ack_delay < 0:
            raise ValueError("max ack delay must be non-negative")


class Receiver:
    """Receives data packets, records the trace and generates ACKs."""

    def __init__(
        self,
        loop: EventLoop,
        flow_id: int,
        send_ack: Callable[[Packet], None],
        config: Optional[ReceiverConfig] = None,
        trace: Optional[FlowTrace] = None,
    ):
        config = config or ReceiverConfig()
        config.validate()
        self._loop = loop
        self.flow_id = flow_id
        self._send_ack = send_ack
        self.config = config
        self.trace = trace

        self._received: set[int] = set()
        self._cum_ack = 0
        self._largest = -1
        self._largest_sent_time = 0.0
        self._largest_arrival_time = 0.0
        self._pending: List[int] = []
        self._pending_since: Optional[float] = None
        self._ack_timer = Timer(loop, self._flush_ack)
        self._delivered_bytes = 0

    def on_packet(self, packet: Packet) -> None:
        now = self._loop.now
        stream_seq = packet.retx_of if packet.retx_of is not None else packet.seq
        duplicate = stream_seq in self._received
        if not duplicate:
            self._received.add(stream_seq)
            self._delivered_bytes += packet.size
            while self._cum_ack in self._received:
                self._cum_ack += 1
            if self.trace is not None:
                self.trace.on_delivery(
                    arrival_time=now,
                    sent_time=packet.sent_time,
                    seq=stream_seq,
                    payload_bytes=packet.size,
                    is_retransmission=packet.retx_of is not None,
                )
        out_of_order = packet.seq != self._largest + 1
        if packet.seq > self._largest:
            self._largest = packet.seq
            self._largest_sent_time = packet.sent_time
            self._largest_arrival_time = now
        # ACK packet numbers (QUIC) even for duplicate stream data, so the
        # sender can detect spurious retransmissions.
        self._pending.append(packet.seq)
        if self._pending_since is None:
            self._pending_since = now

        immediate = len(self._pending) >= self.config.ack_frequency or (
            self.config.immediate_on_reorder and out_of_order
        )
        if immediate:
            self._flush_ack()
        elif not self._ack_timer.armed:
            self._ack_timer.arm(self.config.max_ack_delay)

    def _flush_ack(self) -> None:
        if not self._pending:
            return
        now = self._loop.now
        self._ack_timer.cancel()
        # RFC 9000 ack_delay: time the *largest acknowledged* packet has
        # been held at the receiver, not the age of the ACK batch.
        ack_delay = max(now - self._largest_arrival_time, 0.0)
        info = AckInfo(
            cum_ack=self._cum_ack,
            largest_acked=self._largest,
            newly_acked=self._pending,
            largest_sent_time=self._largest_sent_time,
            ack_delay=ack_delay,
            delivered_bytes=self._delivered_bytes,
        )
        self._pending = []
        self._pending_since = None
        ack = Packet(
            flow_id=self.flow_id,
            seq=self._largest,
            size=ACK_SIZE,
            sent_time=now,
            is_ack=True,
            ack=info,
        )
        self._send_ack(ack)
