"""repro — a conformance-testing framework for QUIC congestion control.

Reproduction of Mishra & Leong, "Containing the Cambrian Explosion in
QUIC Congestion Control" (IMC 2023).  The package measures how closely a
QUIC stack's congestion-control implementation matches its Linux-kernel
reference using Performance Envelopes, and reports the paper's metric
set: Conformance, Conformance-T, Δ-throughput and Δ-delay.

Layout
------
``repro.netsim``    discrete-event network simulator (the testbed)
``repro.cca``       NewReno / CUBIC+HyStart / BBRv1 implementations
``repro.stacks``    emulated QUIC stacks with their documented deviations
``repro.core``      Performance-Envelope analytics (the paper's metrics)
``repro.harness``   experiment orchestration, fairness, reporting
``repro.analysis``  fix verification, parameter sweeps, transitivity
``repro.exec``      parallel experiment execution (worker pool, retries,
                    timeouts, run telemetry; bit-identical to serial)
``repro.store``     durable results warehouse (SQLite runs/trials/metrics,
                    query + export, run diffing, regression baselines)
``repro.service``   long-running campaign service (HTTP API, journaled
                    priority scheduler, live progress, Prometheus metrics)

Quick start
-----------
>>> from repro import measure_conformance, scenarios
>>> m = measure_conformance("quiche", "cubic", scenarios.shallow_buffer())
>>> round(m.conformance, 2) <= round(m.conformance_t, 2)
True
"""

from repro.harness import scenarios
from repro.harness.config import (
    ExperimentConfig,
    NetworkCondition,
    paper_experiment_config,
    quick_experiment_config,
)
from repro.harness.conformance import (
    ConformanceMeasurement,
    conformance_heatmap,
    measure_conformance,
)
from repro.harness.fairness import (
    FairnessMatrix,
    bandwidth_share,
    inter_cca_matrix,
    intra_cca_matrix,
)
from repro.harness.internet import measure_conformance_internet
from repro.harness.runner import Impl
from repro.core.envelope import PerformanceEnvelope, build_envelope
from repro.core.conformance import (
    conformance,
    conformance_post_translation,
    evaluate_conformance,
)
from repro.stacks import registry as stacks_registry

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "NetworkCondition",
    "paper_experiment_config",
    "quick_experiment_config",
    "ConformanceMeasurement",
    "conformance_heatmap",
    "measure_conformance",
    "measure_conformance_internet",
    "FairnessMatrix",
    "bandwidth_share",
    "inter_cca_matrix",
    "intra_cca_matrix",
    "Impl",
    "PerformanceEnvelope",
    "build_envelope",
    "conformance",
    "conformance_post_translation",
    "evaluate_conformance",
    "stacks_registry",
    "scenarios",
    "__version__",
]
