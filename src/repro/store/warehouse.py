"""`ResultStore`: the durable, multi-process-safe experiment warehouse.

One SQLite file (WAL mode) holds everything a longitudinal campaign
produces: content-addressed trial payloads, per-run scalar metrics,
named baselines and executor telemetry (see :mod:`repro.store.schema`
for the layout).  Every process opens its own :class:`ResultStore` on
the same path; WAL plus a busy timeout and a bounded retry loop make
concurrent writers from a ``repro.exec`` worker pool safe.

Fidelity guarantees:

* Trial arrays are stored as raw bytes + dtype + shape and reconstructed
  with ``np.frombuffer``, so ``get_trial`` returns a bit-identical copy
  of what ``put_trial`` was given.
* Metric values are SQLite REALs (IEEE float64), so a queried
  ``conf`` equals the in-memory ``result.conformance`` exactly.
* Trials are keyed by the same ``trial_identity`` cache keys the serial
  harness and ``repro.exec`` derive, so identical configurations dedupe
  across runs — a re-measured release stores only what changed.
"""

from __future__ import annotations

import json
import sqlite3
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.faults import inject
from repro.faults.retry import RetryPolicy
from repro.store.schema import STORE_SCHEMA_VERSION, SchemaError, migrate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.config import NetworkCondition
    from repro.harness.conformance import ConformanceMeasurement


class StoreError(RuntimeError):
    """A warehouse operation failed (unknown run, bad payload...)."""


#: Default locked-database retry behaviour: unlimited attempts bounded
#: by a total deadline (matching the connection's busy timeout), short
#: exponential backoff with deterministic jitter so a worker pool
#: hammering one file de-synchronises its commit retries.
_LOCK_RETRY = RetryPolicy(
    max_attempts=None,
    backoff_s=0.01,
    backoff_cap_s=0.1,
    deadline_s=30.0,
    jitter=0.25,
)

#: Metric names recorded for every conformance measurement, in the order
#: reports print them.
MEASUREMENT_METRICS = (
    "conf",
    "conf_t",
    "conf_old",
    "delta_tput_mbps",
    "delta_delay_ms",
    "k_test",
    "k_ref",
)


@dataclass(frozen=True)
class RunInfo:
    """One recorded campaign."""

    id: int
    name: str
    created_at: float
    note: str = ""
    config: Optional[dict] = None


@dataclass(frozen=True)
class MetricRow:
    """One scalar metric of one measurement, fully labelled."""

    run: str
    stack: str
    cca: str
    variant: str
    bandwidth_mbps: Optional[float]
    rtt_ms: Optional[float]
    buffer_bdp: Optional[float]
    condition: str
    metric: str
    value: Optional[float]

    def subject(self) -> str:
        suffix = "" if self.variant == "default" else f"+{self.variant}"
        return f"{self.stack}/{self.cca}{suffix}"


#: Header order for CSV/JSON exports of :class:`MetricRow` lists.
QUERY_HEADERS = [
    "run",
    "stack",
    "cca",
    "variant",
    "bandwidth_mbps",
    "rtt_ms",
    "buffer_bdp",
    "condition",
    "metric",
    "value",
]

RunRef = Union[int, str, RunInfo]


class _FaultyConnection:
    """Connection wrapper routing statements through the fault seam.

    Installed only while a fault plan is active — the hot path pays
    nothing otherwise.  Each ``execute``/``executemany`` first fires the
    ``store.execute`` injection point with the statement verb as
    context, so chaos plans raise *real* ``sqlite3.OperationalError`` /
    disk-full ``OSError`` from exactly where SQLite would, and the
    production retry/degradation paths are what gets exercised.
    """

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    @staticmethod
    def _verb(sql: str) -> str:
        stripped = sql.lstrip()
        return stripped.split(None, 1)[0].lower() if stripped else ""

    def execute(self, sql, *args):
        inject.fault_point("store.execute", sql=self._verb(sql))
        return self._conn.execute(sql, *args)

    def executemany(self, sql, *args):
        inject.fault_point("store.execute", sql=self._verb(sql))
        return self._conn.executemany(sql, *args)

    def __enter__(self):
        return self._conn.__enter__()

    def __exit__(self, *exc):
        return self._conn.__exit__(*exc)

    def __getattr__(self, name):
        return getattr(self._conn, name)


class ResultStore:
    """SQLite-backed experiment warehouse (WAL mode, multi-process safe).

    Open one instance per process/thread; instances sharing a path see
    each other's committed writes immediately.  Usable as a context
    manager.
    """

    def __init__(
        self,
        path: Union[str, Path],
        timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        strict_payloads: bool = False,
    ):
        self.path = Path(path)
        self.strict_payloads = bool(strict_payloads)
        if retry is None:
            retry = _LOCK_RETRY
        self._retry_policy = retry
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=timeout_s)
        conn.row_factory = sqlite3.Row
        # Belt and braces with the connect() timeout: busy_timeout makes
        # SQLite itself wait out page-level contention before raising, so
        # the RetryPolicy above only sees COMMIT-time lock races.
        conn.execute(f"PRAGMA busy_timeout={int(timeout_s * 1000)}")
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        if inject.active() is not None:
            self._conn = _FaultyConnection(conn)
        else:
            self._conn = conn
        self._retry(lambda: migrate(self._conn))

    # ------------------------------------------------------------ plumbing

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _locked(exc: sqlite3.OperationalError) -> bool:
        text = str(exc).lower()
        return "locked" in text or "busy" in text

    def _retry(self, fn):
        """Run ``fn`` under the store's :class:`RetryPolicy` while locked.

        SQLite's busy timeout covers most contention, but a writer can
        still lose the race for the WAL write lock at COMMIT time under a
        spawn pool hammering one file; retrying the whole transaction is
        the documented recovery.  Exhausting the policy's deadline
        surfaces as a typed :class:`StoreError` instead of a raw
        ``OperationalError`` spinning forever.
        """

        def locked(exc: BaseException) -> bool:
            return isinstance(exc, sqlite3.OperationalError) and self._locked(exc)

        try:
            return self._retry_policy.call(fn, retryable=locked)
        except sqlite3.OperationalError as exc:
            if self._locked(exc):
                raise StoreError(
                    f"database stayed locked past the retry deadline "
                    f"({self._retry_policy.deadline_s}s): {exc}"
                ) from exc
            raise

    def _write(self, fn):
        """One retried write transaction around ``fn(conn)``."""

        def attempt():
            with self._conn:
                return fn(self._conn)

        return self._retry(attempt)

    def write_transaction(self, fn):
        """Public seam for sibling subsystems that keep their own tables
        in the warehouse file (``repro.fabric.queue``): run ``fn(conn)``
        inside one retried write transaction, with the same locked-retry
        discipline and fault seams as the store's own writes."""
        return self._write(fn)

    def read_transaction(self, fn):
        """Run ``fn(conn)`` read-only under the store's retry policy."""
        return self._retry(lambda: fn(self._conn))

    # ---------------------------------------------------------------- runs

    def ensure_run(
        self,
        name: str,
        note: str = "",
        config: Optional[Mapping] = None,
    ) -> RunInfo:
        """Get-or-create the run called ``name``.

        Re-recording into an existing run upserts measurements in place,
        which is what longitudinal re-measurement wants: one run per
        (campaign, release), always holding the latest numbers.
        """

        def insert(conn):
            conn.execute(
                "INSERT OR IGNORE INTO runs (name, created_at, note, config) "
                "VALUES (?, ?, ?, ?)",
                (name, time.time(), note, json.dumps(dict(config or {}))),
            )

        self._write(insert)
        return self.run(name)

    def run(self, ref: RunRef) -> RunInfo:
        """Resolve a run by id, name, or pass a RunInfo through."""
        if isinstance(ref, RunInfo):
            return ref
        if isinstance(ref, int):
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (ref,)
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE name = ?", (ref,)
            ).fetchone()
        if row is None:
            raise StoreError(f"unknown run: {ref!r}")
        return self._run_info(row)

    def has_run(self, name: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM runs WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    def runs(self) -> List[RunInfo]:
        rows = self._conn.execute("SELECT * FROM runs ORDER BY id").fetchall()
        return [self._run_info(row) for row in rows]

    @staticmethod
    def _run_info(row: sqlite3.Row) -> RunInfo:
        try:
            config = json.loads(row["config"])
        except (TypeError, ValueError):
            config = None
        return RunInfo(
            id=row["id"],
            name=row["name"],
            created_at=row["created_at"],
            note=row["note"],
            config=config,
        )

    # -------------------------------------------------------------- trials

    def put_trial(
        self,
        key: str,
        value: np.ndarray,
        seed: Optional[int] = None,
        label: str = "",
        run: Optional[RunRef] = None,
    ) -> bool:
        """Store one trial payload; returns True if the key was new.

        Payloads are content-addressed: a key already present is left
        untouched (the content hash guarantees it is the same array), so
        concurrent writers and repeated campaigns dedupe for free.
        """
        array = np.ascontiguousarray(np.asarray(value))
        run_id = self.run(run).id if run is not None else None

        def insert(conn) -> bool:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO trials "
                "(key, seed, label, dtype, shape, payload, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    seed,
                    label,
                    array.dtype.str,
                    json.dumps(list(array.shape)),
                    sqlite3.Binary(array.tobytes()),
                    time.time(),
                ),
            )
            if run_id is not None:
                conn.execute(
                    "INSERT OR IGNORE INTO run_trials (run_id, trial_key) "
                    "VALUES (?, ?)",
                    (run_id, key),
                )
            return cursor.rowcount > 0

        return bool(self._write(insert))

    def put_trials(
        self,
        items: Iterable[Tuple[str, np.ndarray]],
        run: Optional[RunRef] = None,
    ) -> int:
        """Batch insert; one transaction, returns how many keys were new."""
        run_id = self.run(run).id if run is not None else None
        prepared = []
        for key, value in items:
            array = np.ascontiguousarray(np.asarray(value))
            prepared.append(
                (
                    key,
                    None,
                    "",
                    array.dtype.str,
                    json.dumps(list(array.shape)),
                    sqlite3.Binary(array.tobytes()),
                    time.time(),
                )
            )

        def insert(conn) -> int:
            before = conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0]
            conn.executemany(
                "INSERT OR IGNORE INTO trials "
                "(key, seed, label, dtype, shape, payload, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                prepared,
            )
            if run_id is not None:
                conn.executemany(
                    "INSERT OR IGNORE INTO run_trials (run_id, trial_key) "
                    "VALUES (?, ?)",
                    [(run_id, row[0]) for row in prepared],
                )
            after = conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0]
            return after - before

        return int(self._write(insert))

    def get_trial(
        self, key: str, strict: Optional[bool] = None
    ) -> Optional[np.ndarray]:
        """The stored payload for ``key``, bit-identical, or None.

        A payload that no longer decodes (torn write, bit rot) is
        *quarantined* by default: the bad row is deleted, a
        ``trial_quarantined`` event is journalled, and None is returned
        — so callers recompute and the content-addressed re-insert heals
        the store.  ``strict=True`` (or ``strict_payloads`` on the
        store) raises the typed :class:`StoreError` instead.
        """
        if strict is None:
            strict = self.strict_payloads
        row = self._conn.execute(
            "SELECT dtype, shape, payload FROM trials WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            shape = tuple(json.loads(row["shape"]))
            array = np.frombuffer(row["payload"], dtype=np.dtype(row["dtype"]))
            return array.reshape(shape).copy()
        except (ValueError, TypeError) as exc:
            if strict:
                raise StoreError(f"corrupt trial payload for key {key}: {exc}")
            self._quarantine_trial(key, exc)
            return None

    def _quarantine_trial(self, key: str, exc: BaseException) -> None:
        """Remove one undecodable trial row and journal why.

        Deletion (not tombstoning) is what enables self-healing: trial
        inserts are ``INSERT OR IGNORE``, so a recomputed payload can
        only land once the corrupt row is gone.
        """
        warnings.warn(
            f"repro.store: quarantined corrupt trial payload {key!r} ({exc})"
        )
        try:
            self._write(
                lambda conn: conn.execute(
                    "DELETE FROM trials WHERE key = ?", (key,)
                )
            )
            self.record_event(
                "trial_quarantined", payload={"key": key, "reason": str(exc)}
            )
        except (StoreError, sqlite3.Error):
            # Quarantine is best-effort: a read-only or locked-out store
            # still serves the healthy remainder.
            pass

    def has_trial(self, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM trials WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def trial_keys(self, run: Optional[RunRef] = None) -> List[str]:
        if run is None:
            rows = self._conn.execute("SELECT key FROM trials ORDER BY key")
        else:
            rows = self._conn.execute(
                "SELECT trial_key AS key FROM run_trials WHERE run_id = ? "
                "ORDER BY trial_key",
                (self.run(run).id,),
            )
        return [row["key"] for row in rows.fetchall()]

    def link_trial(self, run: RunRef, key: str) -> None:
        run_id = self.run(run).id
        self._write(
            lambda conn: conn.execute(
                "INSERT OR IGNORE INTO run_trials (run_id, trial_key) "
                "VALUES (?, ?)",
                (run_id, key),
            )
        )

    # --------------------------------------------------- measurements/metrics

    def record_metrics(
        self,
        run: RunRef,
        stack: str,
        cca: str,
        metrics: Mapping[str, Optional[float]],
        variant: str = "default",
        condition: Optional["NetworkCondition"] = None,
    ) -> int:
        """Upsert one measurement row plus its scalar metrics.

        The measurement identity is (run, stack, cca, variant, physical
        condition); recording the same identity again replaces its
        metric values — the warehouse keeps the latest numbers per run.
        Returns the measurement id.
        """
        if condition is not None:
            bandwidth = float(condition.bandwidth_mbps)
            rtt = float(condition.rtt_ms)
            buffer_bdp = float(condition.buffer_bdp)
            describe = condition.describe()
        else:
            bandwidth = rtt = buffer_bdp = None
            describe = ""
        return self.record_metrics_raw(
            run,
            stack=stack,
            cca=cca,
            variant=variant,
            bandwidth_mbps=bandwidth,
            rtt_ms=rtt,
            buffer_bdp=buffer_bdp,
            condition=describe,
            metrics=metrics,
        )

    def record_metrics_raw(
        self,
        run: RunRef,
        stack: str,
        cca: str,
        metrics: Mapping[str, Optional[float]],
        variant: str = "default",
        bandwidth_mbps: Optional[float] = None,
        rtt_ms: Optional[float] = None,
        buffer_bdp: Optional[float] = None,
        condition: str = "",
    ) -> int:
        """Upsert a measurement from already-flattened condition values.

        The replay half of :meth:`record_metrics`: ingest paths (fabric
        result bundles, exports) carry the recorded scalars, not live
        ``NetworkCondition`` objects, and must round-trip them exactly.
        """
        run_id = self.run(run).id
        bandwidth = bandwidth_mbps
        rtt = rtt_ms
        describe = condition

        def upsert(conn) -> int:
            # Select-first rather than ON CONFLICT: SQLite's UNIQUE treats
            # NULLs as distinct, so condition-less measurements would
            # otherwise accumulate duplicate rows.
            found = conn.execute(
                "SELECT id FROM measurements WHERE run_id = ? AND stack = ? "
                "AND cca = ? AND variant = ? AND bandwidth_mbps IS ? "
                "AND rtt_ms IS ? AND buffer_bdp IS ?",
                (run_id, stack, cca, variant, bandwidth, rtt, buffer_bdp),
            ).fetchone()
            if found is None:
                cursor = conn.execute(
                    "INSERT INTO measurements "
                    "(run_id, stack, cca, variant, bandwidth_mbps, rtt_ms, "
                    " buffer_bdp, condition) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (run_id, stack, cca, variant, bandwidth, rtt, buffer_bdp, describe),
                )
                measurement_id = int(cursor.lastrowid)
            else:
                measurement_id = int(found["id"])
            conn.executemany(
                "INSERT INTO metrics (measurement_id, name, value) "
                "VALUES (?, ?, ?) "
                "ON CONFLICT (measurement_id, name) DO UPDATE "
                "SET value = excluded.value",
                [
                    (measurement_id, name, None if value is None else float(value))
                    for name, value in metrics.items()
                ],
            )
            return measurement_id

        return int(self._write(upsert))

    def record_measurement(
        self, run: RunRef, measurement: "ConformanceMeasurement"
    ) -> int:
        """Record a harness conformance measurement at full precision."""
        result = measurement.result
        return self.record_metrics(
            run,
            stack=measurement.impl.stack,
            cca=measurement.impl.cca,
            variant=measurement.impl.variant,
            condition=measurement.condition,
            metrics={
                "conf": result.conformance,
                "conf_t": result.conformance_t,
                "conf_old": result.conformance_legacy,
                "delta_tput_mbps": result.delta_throughput_mbps,
                "delta_delay_ms": result.delta_delay_ms,
                "k_test": float(result.test_envelope.k),
                "k_ref": float(result.reference_envelope.k),
            },
        )

    # ---------------------------------------------------------------- query

    def query(
        self,
        run: Optional[RunRef] = None,
        stack: Optional[str] = None,
        cca: Optional[str] = None,
        variant: Optional[str] = None,
        condition: Optional[str] = None,
        metric: Optional[str] = None,
    ) -> List[MetricRow]:
        """Filtered metric rows, deterministically ordered.

        ``condition`` matches the recorded ``describe()`` string (e.g.
        ``20mbps-10ms-1bdp``).  All filters are conjunctive; None means
        "any".
        """
        sql = (
            "SELECT runs.name AS run, m.stack, m.cca, m.variant, "
            "m.bandwidth_mbps, m.rtt_ms, m.buffer_bdp, m.condition, "
            "metrics.name AS metric, metrics.value "
            "FROM metrics "
            "JOIN measurements m ON m.id = metrics.measurement_id "
            "JOIN runs ON runs.id = m.run_id"
        )
        clauses, params = [], []
        if run is not None:
            clauses.append("m.run_id = ?")
            params.append(self.run(run).id)
        for column, value in (
            ("m.stack", stack),
            ("m.cca", cca),
            ("m.variant", variant),
            ("m.condition", condition),
            ("metrics.name", metric),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += (
            " ORDER BY runs.name, m.stack, m.cca, m.variant, "
            "m.bandwidth_mbps, m.rtt_ms, m.buffer_bdp, metrics.name"
        )
        return [
            MetricRow(
                run=row["run"],
                stack=row["stack"],
                cca=row["cca"],
                variant=row["variant"],
                bandwidth_mbps=row["bandwidth_mbps"],
                rtt_ms=row["rtt_ms"],
                buffer_bdp=row["buffer_bdp"],
                condition=row["condition"],
                metric=row["metric"],
                value=row["value"],
            )
            for row in self._conn.execute(sql, params).fetchall()
        ]

    def metric_table(
        self, run: RunRef, metric: str = "conf"
    ) -> Dict[Tuple[str, str, str, str], float]:
        """One run's values of ``metric``, keyed by
        (stack, cca, variant, condition)."""
        return {
            (row.stack, row.cca, row.variant, row.condition): row.value
            for row in self.query(run=run, metric=metric)
            if row.value is not None
        }

    @staticmethod
    def rows_as_lists(rows: Sequence[MetricRow]) -> List[List]:
        return [
            [
                r.run, r.stack, r.cca, r.variant, r.bandwidth_mbps,
                r.rtt_ms, r.buffer_bdp, r.condition, r.metric, r.value,
            ]
            for r in rows
        ]

    @staticmethod
    def export_csv(rows: Sequence[MetricRow]) -> str:
        from repro.harness.reporting import to_csv

        return to_csv(QUERY_HEADERS, ResultStore.rows_as_lists(rows))

    @staticmethod
    def export_json(rows: Sequence[MetricRow]) -> str:
        return json.dumps(
            [dict(zip(QUERY_HEADERS, row)) for row in ResultStore.rows_as_lists(rows)],
            indent=2,
            sort_keys=True,
        )

    # ------------------------------------------------------------- baselines

    def set_baseline(self, name: str, run: RunRef) -> None:
        """Point the named baseline at ``run`` (create or move)."""
        run_id = self.run(run).id
        self._write(
            lambda conn: conn.execute(
                "INSERT INTO baselines (name, run_id, created_at) "
                "VALUES (?, ?, ?) "
                "ON CONFLICT (name) DO UPDATE SET run_id = excluded.run_id, "
                "created_at = excluded.created_at",
                (name, run_id, time.time()),
            )
        )

    def baseline_run(self, name: str) -> Optional[RunInfo]:
        row = self._conn.execute(
            "SELECT run_id FROM baselines WHERE name = ?", (name,)
        ).fetchone()
        return None if row is None else self.run(int(row["run_id"]))

    def baselines(self) -> Dict[str, str]:
        """baseline name -> run name."""
        rows = self._conn.execute(
            "SELECT baselines.name AS name, runs.name AS run FROM baselines "
            "JOIN runs ON runs.id = baselines.run_id ORDER BY baselines.name"
        ).fetchall()
        return {row["name"]: row["run"] for row in rows}

    # ---------------------------------------------------------------- events

    def record_event(
        self,
        event: str,
        campaign: str = "",
        payload: Optional[Mapping] = None,
        run: Optional[RunRef] = None,
    ) -> None:
        run_id = self.run(run).id if run is not None else None
        self._write(
            lambda conn: conn.execute(
                "INSERT INTO events (run_id, campaign, event, payload, time) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    run_id,
                    campaign,
                    event,
                    json.dumps(dict(payload or {}), sort_keys=True, default=str),
                    time.time(),
                ),
            )
        )

    def events(self, campaign: Optional[str] = None) -> List[dict]:
        sql = "SELECT campaign, event, payload, time FROM events"
        params: Tuple = ()
        if campaign is not None:
            sql += " WHERE campaign = ?"
            params = (campaign,)
        sql += " ORDER BY id"
        out = []
        for row in self._conn.execute(sql, params).fetchall():
            try:
                payload = json.loads(row["payload"])
            except (TypeError, ValueError):
                payload = {}
            out.append(
                {
                    "campaign": row["campaign"],
                    "event": row["event"],
                    "time": row["time"],
                    **payload,
                }
            )
        return out

    # ------------------------------------------------------------------- gc

    def gc(self, dry_run: bool = False) -> Dict[str, int]:
        """Purge trial payloads no run links to, then vacuum the file.

        Orphaned trials accumulate when campaigns run without a ``run``
        grouping (e.g. bare ``Executor`` sinks) or after runs are
        deleted.  ``dry_run=True`` only reports what *would* go.  Returns
        a report dict: total/unlinked trial counts, bytes held by the
        unlinked payloads, how many rows were purged, and the database
        size before/after (vacuuming reclaims the freed pages).
        """
        size_before = self.path.stat().st_size if self.path.exists() else 0
        row = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) FROM trials "
            "WHERE key NOT IN (SELECT trial_key FROM run_trials)"
        ).fetchone()
        unlinked, unlinked_bytes = int(row[0]), int(row[1])
        total = int(self._conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0])
        purged = 0
        if not dry_run and unlinked:
            purged = int(
                self._write(
                    lambda conn: conn.execute(
                        "DELETE FROM trials WHERE key NOT IN "
                        "(SELECT trial_key FROM run_trials)"
                    ).rowcount
                )
            )
        if not dry_run:
            # VACUUM must run outside a transaction; _retry covers a
            # concurrent writer holding the lock.
            self._retry(lambda: self._conn.execute("VACUUM"))
        size_after = self.path.stat().st_size if self.path.exists() else 0
        return {
            "trials_total": total,
            "unlinked": unlinked,
            "unlinked_bytes": unlinked_bytes,
            "purged": purged,
            "size_before": size_before,
            "size_after": size_after,
            "dry_run": int(dry_run),
        }

    # --------------------------------------------------------------- summary

    def counts(self) -> Dict[str, int]:
        """Row counts per table, for status lines and tests."""
        out = {}
        for table in ("runs", "trials", "run_trials", "measurements", "metrics", "baselines", "events"):
            out[table] = int(
                self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            )
        out["schema_version"] = STORE_SCHEMA_VERSION
        return out

    def integrity_ok(self) -> bool:
        row = self._conn.execute("PRAGMA integrity_check").fetchone()
        return row is not None and row[0] == "ok"


__all__ = [
    "ResultStore",
    "RunInfo",
    "MetricRow",
    "StoreError",
    "SchemaError",
    "QUERY_HEADERS",
    "MEASUREMENT_METRICS",
]
