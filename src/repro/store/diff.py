"""Release-over-release comparison of stored runs.

The paper's §6 workflow — re-measure every stack against every new
kernel milestone — reduces to one question per implementation: *did the
number move, and did the verdict flip?*  :func:`diff_runs` answers both
for any pair of stored runs; :func:`diff_against_baseline` anchors the
comparison at a named baseline (``release-1.2``, ``paper-protocol``...)
so CI can fail on regressions without hard-coding run names.

Verdict semantics match :class:`repro.harness.regression.RegressionRow`:
an implementation is conformant when its ``conf`` metric is >= the
threshold (0.5 by default), and a *flip* is a subject whose verdict
differs between the two runs — exactly the condition
``regression_matrix``'s ``verdict_flips`` computes in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.store.warehouse import ResultStore, RunRef, StoreError

#: Conformance >= threshold == "conformant", the paper's working cutoff.
DEFAULT_VERDICT_THRESHOLD = 0.5

#: (stack, cca, variant, condition) — one measured subject.
SubjectKey = Tuple[str, str, str, str]


def _subject_label(key: SubjectKey) -> str:
    stack, cca, variant, condition = key
    suffix = "" if variant == "default" else f"+{variant}"
    at = f" @ {condition}" if condition else ""
    return f"{stack}/{cca}{suffix}{at}"


@dataclass(frozen=True)
class MetricDelta:
    """One subject's metric value in both runs."""

    subject: SubjectKey
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    def label(self) -> str:
        return _subject_label(self.subject)


@dataclass(frozen=True)
class VerdictFlip:
    """A subject whose conformant/non-conformant verdict changed."""

    subject: SubjectKey
    before: float
    after: float
    threshold: float

    @property
    def before_verdict(self) -> bool:
        return self.before >= self.threshold

    @property
    def after_verdict(self) -> bool:
        return self.after >= self.threshold

    def label(self) -> str:
        return _subject_label(self.subject)


@dataclass
class RunDiff:
    """Everything that changed between two stored runs."""

    run_a: str
    run_b: str
    metric: str
    threshold: float
    #: Subjects only measured in run_b / only in run_a.
    added: List[SubjectKey] = field(default_factory=list)
    removed: List[SubjectKey] = field(default_factory=list)
    #: Shared subjects whose verdict metric moved by more than ``atol``.
    changed: List[MetricDelta] = field(default_factory=list)
    #: Shared subjects whose conformance verdict flipped.
    flips: List[VerdictFlip] = field(default_factory=list)
    #: Shared subjects, for rate computations.
    compared: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing moved: same subjects, same verdicts, same values."""
        return not (self.added or self.removed or self.changed or self.flips)

    def flip_subjects(self) -> List[str]:
        return [flip.label() for flip in self.flips]


def diff_runs(
    store: ResultStore,
    run_a: RunRef,
    run_b: RunRef,
    metric: str = "conf",
    threshold: float = DEFAULT_VERDICT_THRESHOLD,
    atol: float = 0.0,
) -> RunDiff:
    """Compare ``metric`` across two runs, flagging moves and flips.

    Subjects are matched by (stack, cca, variant, condition); ``atol``
    suppresses change records for numeric noise below the tolerance
    (flips are never suppressed).
    """
    info_a = store.run(run_a)
    info_b = store.run(run_b)
    table_a = store.metric_table(info_a, metric)
    table_b = store.metric_table(info_b, metric)

    diff = RunDiff(
        run_a=info_a.name, run_b=info_b.name, metric=metric, threshold=threshold
    )
    diff.added = sorted(set(table_b) - set(table_a))
    diff.removed = sorted(set(table_a) - set(table_b))
    shared = sorted(set(table_a) & set(table_b))
    diff.compared = len(shared)
    for subject in shared:
        before, after = table_a[subject], table_b[subject]
        if abs(after - before) > atol:
            diff.changed.append(
                MetricDelta(subject=subject, metric=metric, before=before, after=after)
            )
        if (before >= threshold) != (after >= threshold):
            diff.flips.append(
                VerdictFlip(
                    subject=subject, before=before, after=after, threshold=threshold
                )
            )
    return diff


def diff_against_baseline(
    store: ResultStore,
    run: RunRef,
    baseline: str,
    metric: str = "conf",
    threshold: float = DEFAULT_VERDICT_THRESHOLD,
    atol: float = 0.0,
) -> RunDiff:
    """Diff ``run`` against the run the named baseline points at."""
    anchor = store.baseline_run(baseline)
    if anchor is None:
        raise StoreError(f"unknown baseline: {baseline!r}")
    return diff_runs(
        store, anchor, run, metric=metric, threshold=threshold, atol=atol
    )


__all__ = [
    "DEFAULT_VERDICT_THRESHOLD",
    "SubjectKey",
    "MetricDelta",
    "VerdictFlip",
    "RunDiff",
    "diff_runs",
    "diff_against_baseline",
]
