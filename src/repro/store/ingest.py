"""Ingestion paths into the warehouse.

Four sources cover everything the repo produces today:

* :func:`ingest_manifest` — the append-only JSONL run manifests that
  ``repro.exec`` writes (PR 1).  Each ``campaign_start``/``job``/
  ``campaign_end`` line becomes a queryable ``events`` row, grouped
  under one store run per campaign occurrence.  Truncated final lines
  (a crashed campaign) are skipped, not fatal — the readable prefix is
  ingested.
* :func:`ingest_cache_dir` — a ``QUICBENCH_CACHE_DIR``-style directory
  of content-addressed ``.npy`` payloads; each file becomes a ``trials``
  row under its cache key, deduped against whatever the store already
  holds.
* :func:`ingest_measurements` — live harness results
  (:class:`~repro.harness.conformance.ConformanceMeasurement` objects or
  a :class:`~repro.harness.matrix.MatrixResult`), recorded at full
  precision.
* :func:`ingest_sideline` — the JSONL spill file the executor's store
  sink writes while its circuit breaker is open (see
  :class:`repro.exec.telemetry.StoreSink`): events and base64 trial
  payloads recorded during degraded operation are replayed into the
  warehouse, bit-identical, once it is healthy again.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

import numpy as np

from repro.store.warehouse import ResultStore, RunRef


@dataclass
class IngestReport:
    """What one ingestion pass added (counters only, no payloads)."""

    runs: int = 0
    events: int = 0
    trials: int = 0
    trials_deduped: int = 0
    measurements: int = 0
    skipped_lines: int = 0

    def summary(self) -> str:
        parts = []
        if self.runs:
            parts.append(f"{self.runs} runs")
        if self.events:
            parts.append(f"{self.events} events")
        if self.trials or self.trials_deduped:
            parts.append(
                f"{self.trials} trials (+{self.trials_deduped} already present)"
            )
        if self.measurements:
            parts.append(f"{self.measurements} measurements")
        if self.skipped_lines:
            parts.append(f"{self.skipped_lines} unreadable lines skipped")
        return "ingested: " + (", ".join(parts) if parts else "nothing")


def _unique_run_name(store: ResultStore, base: str) -> str:
    if not store.has_run(base):
        return base
    n = 2
    while store.has_run(f"{base}#{n}"):
        n += 1
    return f"{base}#{n}"


def ingest_manifest(
    store: ResultStore,
    path: Union[str, Path],
    run_prefix: Optional[str] = None,
) -> IngestReport:
    """Load a ``repro.exec`` JSONL manifest into the events journal.

    One store run is created per ``campaign_start`` occurrence, named
    ``<prefix>:<campaign>`` (prefix defaults to the manifest file stem);
    repeated campaigns get ``#2``, ``#3``... suffixes so re-ingesting a
    growing manifest never collides.  Lines that fail to parse — e.g.
    the torn final record of a crashed writer — are counted and skipped.
    """
    path = Path(path)
    prefix = run_prefix if run_prefix is not None else path.stem
    report = IngestReport()
    current_run = None
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                report.skipped_lines += 1
                continue
            event = record.get("event", "")
            campaign = record.get("campaign", "")
            if event == "campaign_start":
                name = _unique_run_name(store, f"{prefix}:{campaign or 'campaign'}")
                current_run = store.ensure_run(
                    name, note=f"ingested from {path.name}"
                )
                report.runs += 1
            payload = {
                k: v for k, v in record.items() if k not in ("event", "campaign")
            }
            store.record_event(
                event or "unknown", campaign=campaign, payload=payload,
                run=current_run,
            )
            report.events += 1
            if event == "campaign_end":
                current_run = None
    return report


def ingest_cache_dir(
    store: ResultStore,
    directory: Union[str, Path],
    run: Optional[RunRef] = None,
) -> IngestReport:
    """Load every ``<key>.npy`` payload of a disk cache into ``trials``."""
    directory = Path(directory)
    report = IngestReport()
    for path in sorted(directory.glob("*.npy")):
        if ".tmp" in path.name:  # in-flight atomic-write leftovers
            continue
        try:
            value = np.load(path)
        except (OSError, ValueError):
            report.skipped_lines += 1
            continue
        if store.put_trial(path.stem, value, run=run):
            report.trials += 1
        else:
            report.trials_deduped += 1
    return report


def ingest_sideline(
    store: ResultStore,
    path: Union[str, Path],
) -> IngestReport:
    """Replay a :class:`StoreSink` sideline spill file into the store.

    Each line is either an event record or a base64-encoded trial
    payload captured while the store was unreachable.  Trials are
    content-addressed, so replaying a sideline over a store that has
    since recovered (or replaying it twice) dedupes instead of
    duplicating.  Unreadable lines are counted and skipped.
    """
    path = Path(path)
    report = IngestReport()
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind = record["kind"]
                if kind == "trial":
                    data = base64.b64decode(record["data"])
                    value = np.frombuffer(
                        data, dtype=np.dtype(record["dtype"])
                    ).reshape(tuple(record["shape"]))
                elif kind != "event":
                    raise ValueError(f"unknown sideline record kind {kind!r}")
            except (KeyError, ValueError, TypeError):
                report.skipped_lines += 1
                continue
            if kind == "event":
                run = record.get("run")
                if run and not store.has_run(run):
                    store.ensure_run(run, note=f"replayed from {path.name}")
                    report.runs += 1
                store.record_event(
                    record.get("event", "unknown"),
                    campaign=record.get("campaign", ""),
                    payload=record.get("payload") or {},
                    run=run or None,
                )
                report.events += 1
            else:
                run = record.get("run")
                if run and not store.has_run(run):
                    store.ensure_run(run, note=f"replayed from {path.name}")
                    report.runs += 1
                if store.put_trial(record["key"], value, run=run or None):
                    report.trials += 1
                else:
                    report.trials_deduped += 1
    return report


def ingest_measurements(
    store: ResultStore,
    run: RunRef,
    measurements: Iterable,
) -> IngestReport:
    """Record live harness results under ``run``.

    Accepts any iterable of ``ConformanceMeasurement`` objects — or a
    ``MatrixResult``, whose ``measurements`` list is used directly.
    """
    items = getattr(measurements, "measurements", measurements)
    report = IngestReport()
    run_info = store.ensure_run(run) if isinstance(run, str) else store.run(run)
    for measurement in items:
        store.record_measurement(run_info, measurement)
        report.measurements += 1
    return report


__all__ = [
    "IngestReport",
    "ingest_manifest",
    "ingest_cache_dir",
    "ingest_measurements",
    "ingest_sideline",
]
