"""repro.store — the durable experiment-results warehouse.

The paper's workflow is longitudinal: every QUIC stack is re-measured
against every kernel milestone, release after release (§6).  That needs
results stored once and queried many times, not recomputed.  This
package provides:

* :class:`ResultStore` (``repro.store.warehouse``) — a SQLite-backed
  (WAL-mode, multi-process-safe) warehouse with content-addressed trial
  payloads, per-run metric tables, named baselines and an executor
  telemetry journal, behind a schema-versioned migration ladder
  (``repro.store.schema``).
* :class:`StoreCache` (``repro.store.cache``) — a drop-in
  :class:`~repro.harness.cache.ResultCache` whose third tier is the
  warehouse, so campaigns transparently reuse and persist trials.
* Ingestion (``repro.store.ingest``) — JSONL run manifests, disk cache
  directories, live harness results, and sideline spill files written
  while the store was unreachable.
* Diffing (``repro.store.diff``) — run-vs-run and run-vs-baseline
  comparison flagging metric moves and conformance-verdict flips.

Quick start::

    from repro.store import ResultStore, diff_runs

    store = ResultStore("results.db")
    rows = store.query(stack="quiche", metric="conf")
    print(ResultStore.export_csv(rows))
    diff = diff_runs(store, "release-1.1", "release-1.2")
    for flip in diff.flips:
        print("verdict flipped:", flip.label())
"""

from repro.store.cache import StoreCache
from repro.store.diff import (
    DEFAULT_VERDICT_THRESHOLD,
    MetricDelta,
    RunDiff,
    VerdictFlip,
    diff_against_baseline,
    diff_runs,
)
from repro.store.ingest import (
    IngestReport,
    ingest_cache_dir,
    ingest_manifest,
    ingest_measurements,
    ingest_sideline,
)
from repro.store.schema import STORE_SCHEMA_VERSION, SchemaError
from repro.store.sharded import (
    ShardedResultStore,
    ShardLostError,
    open_store,
    shard_index,
)
from repro.store.warehouse import (
    MEASUREMENT_METRICS,
    MetricRow,
    QUERY_HEADERS,
    ResultStore,
    RunInfo,
    StoreError,
)

__all__ = [
    "ResultStore",
    "ShardedResultStore",
    "ShardLostError",
    "open_store",
    "shard_index",
    "RunInfo",
    "MetricRow",
    "StoreError",
    "SchemaError",
    "StoreCache",
    "QUERY_HEADERS",
    "MEASUREMENT_METRICS",
    "STORE_SCHEMA_VERSION",
    "IngestReport",
    "ingest_manifest",
    "ingest_cache_dir",
    "ingest_measurements",
    "ingest_sideline",
    "RunDiff",
    "MetricDelta",
    "VerdictFlip",
    "diff_runs",
    "diff_against_baseline",
    "DEFAULT_VERDICT_THRESHOLD",
]
