"""A :class:`ResultCache` whose third tier is the warehouse.

``StoreCache`` extends the harness's two-level (memory, disk) cache with
read-through/write-through access to a :class:`ResultStore`: a campaign
run with ``--store`` both *reuses* every trial any previous run already
computed and *persists* every trial it computes, without any harness
code changing — the cache keys are the warehouse's content-addressed
trial identities already.

The write path goes through the parent process only (workers of a
``repro.exec`` pool carry plain worker-local caches; computed values are
shipped back and inserted here), so a multi-worker campaign funnels its
store writes through one connection while stray concurrent writers are
still safe thanks to the store's WAL + retry discipline.
"""

from __future__ import annotations

import sqlite3
import warnings
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.harness.cache import ResultCache
from repro.store.warehouse import ResultStore, StoreError


class StoreCache(ResultCache):
    """Three-tier cache: memory LRU -> disk .npy -> results warehouse."""

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        directory: Optional[Union[str, Path]] = None,
        enabled: bool = True,
        max_entries: Optional[int] = None,
    ):
        super().__init__(
            directory=directory, enabled=enabled, max_entries=max_entries
        )
        if isinstance(store, (str, Path)):
            from repro.store.sharded import open_store

            self._owns_store = True
            self.store = open_store(store)
        else:
            # A ResultStore or anything store-shaped (the sharded
            # facade routes trials transparently).
            self._owns_store = False
            self.store = store
        #: Counters for telemetry: how many lookups the warehouse served
        #: and how many payloads were persisted through this cache.
        self.store_hits = 0
        self.store_puts = 0
        #: Store operations that failed and were absorbed: the campaign
        #: degrades to the memory/disk tiers instead of dying mid-run.
        self.store_errors = 0

    def _degrade(self, op: str, exc: BaseException) -> None:
        self.store_errors += 1
        warnings.warn(
            f"repro.store: warehouse {op} failed, degrading to "
            f"memory/disk cache tiers ({type(exc).__name__}: {exc})"
        )

    def get(self, key: str) -> Optional[np.ndarray]:
        value = super().get(key)
        if value is not None or not self.enabled:
            return value
        try:
            stored = self.store.get_trial(key)
        except (StoreError, sqlite3.Error, OSError) as exc:
            self._degrade("read", exc)
            return None
        if stored is None:
            return None
        # Promote into the faster tiers and convert the miss that
        # ``super().get`` counted into a hit: the campaign did not have
        # to simulate anything.
        self._remember(key, stored)
        self.misses -= 1
        self.hits += 1
        self.store_hits += 1
        return stored

    def put(self, key: str, value: np.ndarray) -> np.ndarray:
        value = super().put(key, value)
        if self.enabled:
            try:
                if self.store.put_trial(key, value):
                    self.store_puts += 1
            except (StoreError, sqlite3.Error, OSError) as exc:
                self._degrade("write", exc)
        return value

    def counters(self) -> dict:
        out = super().counters()
        out["store_hits"] = self.store_hits
        out["store_puts"] = self.store_puts
        out["store_errors"] = self.store_errors
        return out

    def close(self) -> None:
        if self._owns_store:
            self.store.close()


__all__ = ["StoreCache"]
