"""Warehouse schema: DDL, versioning, and the migration ladder.

The store's on-disk layout is versioned through SQLite's ``user_version``
pragma.  :data:`MIGRATIONS` is a ladder of functions — entry ``i``
migrates a database at version ``i`` to version ``i + 1`` — and opening a
store applies every rung between the file's version and
:data:`STORE_SCHEMA_VERSION`.  A brand-new (or pre-warehouse, version-0)
file is bootstrapped by the first rung; a file written by a *newer*
repro is refused rather than silently misread.

Adding a table or column later means appending one migration function
and bumping :data:`STORE_SCHEMA_VERSION` — never editing an existing
rung, since shipped databases may sit at any intermediate version.

Tables
------

``runs``
    One row per recorded campaign (a heatmap, a matrix sweep, one kernel
    milestone of a regression run...).  Uniquely named.
``trials``
    Content-addressed trial payloads: the sampled point cloud of one
    2-flow trial keyed by the same ``trial_identity`` cache key the
    executor and the serial harness derive, so identical configurations
    dedupe across runs.  Arrays are stored as raw bytes plus dtype and
    shape, which round-trips bit-exactly.
``run_trials``
    Many-to-many link: which runs touched which trials.
``measurements`` / ``metrics``
    One ``measurements`` row per (run, subject, network condition), with
    its scalar metric set (conf, conf_t, delta_tput_mbps, ...) in
    ``metrics``.  Values are stored at full float64 precision — SQLite
    REALs are IEEE doubles, so queried metrics are bit-identical to the
    in-memory results that produced them.
``baselines``
    Named pointers to runs (e.g. ``release-1.2``), the anchors the diff
    engine compares new runs against.
``events``
    Executor telemetry journal: campaign_start / job / campaign_end
    records mirroring the JSONL manifest, but queryable.
``fabric_tasks`` / ``fabric_tenants`` (v2)
    The fabric's durable leased work queue: one ``fabric_tasks`` row per
    submitted campaign (spec JSON, tenant, priority, lease bookkeeping,
    attempt counter, result summary) and one ``fabric_tenants`` row per
    tenant (deficit-round-robin weight and deficit, quotas).  All SQL
    against these tables lives in :mod:`repro.fabric.queue` — the
    ``queue-sql-confinement`` lint rule enforces that.
``fabric_workers`` (v3)
    The fleet registry: one row per worker process that has ever talked
    to the queue (code version, lifecycle state, start/last-seen
    timestamps, lifetime lease counter).  Heartbeat ages computed from
    ``last_seen`` drive supervisor liveness decisions, and the
    ``draining`` state is the durable drain directive workers observe on
    their next heartbeat.  Confined to :mod:`repro.fabric.queue` by the
    same lint rule as the queue tables.
``shard_links`` (v3)
    The sharded warehouse's run→trial link table: like ``run_trials``
    but without the foreign key into ``trials``, because in a
    :class:`repro.store.sharded.ShardedResultStore` the meta shard
    links payloads that live in other shard files.  Unused (empty) in
    single-file stores.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, List

#: Version written to ``PRAGMA user_version`` by the newest code.
STORE_SCHEMA_VERSION = 3


class SchemaError(RuntimeError):
    """The database schema cannot be used (too new, or corrupt)."""


_BOOTSTRAP_DDL = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL UNIQUE,
    created_at  REAL NOT NULL,
    note        TEXT NOT NULL DEFAULT '',
    config      TEXT NOT NULL DEFAULT '{}'
);

CREATE TABLE IF NOT EXISTS trials (
    key         TEXT PRIMARY KEY,
    seed        INTEGER,
    label       TEXT NOT NULL DEFAULT '',
    dtype       TEXT NOT NULL,
    shape       TEXT NOT NULL,
    payload     BLOB NOT NULL,
    created_at  REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS run_trials (
    run_id      INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    trial_key   TEXT NOT NULL REFERENCES trials(key) ON DELETE CASCADE,
    PRIMARY KEY (run_id, trial_key)
);

CREATE TABLE IF NOT EXISTS measurements (
    id              INTEGER PRIMARY KEY,
    run_id          INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    stack           TEXT NOT NULL,
    cca             TEXT NOT NULL,
    variant         TEXT NOT NULL DEFAULT 'default',
    bandwidth_mbps  REAL,
    rtt_ms          REAL,
    buffer_bdp      REAL,
    condition       TEXT NOT NULL DEFAULT '',
    UNIQUE (run_id, stack, cca, variant, bandwidth_mbps, rtt_ms, buffer_bdp)
);

CREATE TABLE IF NOT EXISTS metrics (
    measurement_id  INTEGER NOT NULL REFERENCES measurements(id)
                    ON DELETE CASCADE,
    name            TEXT NOT NULL,
    value           REAL,
    PRIMARY KEY (measurement_id, name)
);

CREATE TABLE IF NOT EXISTS baselines (
    name        TEXT PRIMARY KEY,
    run_id      INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    created_at  REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS events (
    id          INTEGER PRIMARY KEY,
    run_id      INTEGER REFERENCES runs(id) ON DELETE CASCADE,
    campaign    TEXT NOT NULL DEFAULT '',
    event       TEXT NOT NULL,
    payload     TEXT NOT NULL DEFAULT '{}',
    time        REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_measurements_subject
    ON measurements (stack, cca, variant);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name);
CREATE INDEX IF NOT EXISTS idx_events_campaign ON events (campaign);
"""


def _migrate_0_to_1(conn: sqlite3.Connection) -> None:
    """Bootstrap: create the full v1 layout in an empty/v0 database."""
    conn.executescript(_BOOTSTRAP_DDL)


_FABRIC_DDL = """
CREATE TABLE IF NOT EXISTS fabric_tasks (
    id               INTEGER PRIMARY KEY,
    campaign         TEXT NOT NULL UNIQUE,
    tenant           TEXT NOT NULL DEFAULT 'default',
    spec             TEXT NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    state            TEXT NOT NULL DEFAULT 'pending',
    attempts         INTEGER NOT NULL DEFAULT 0,
    lease_id         TEXT,
    lease_owner      TEXT,
    lease_expires_at REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL,
    result           TEXT NOT NULL DEFAULT '{}',
    error            TEXT
);

CREATE TABLE IF NOT EXISTS fabric_tenants (
    name        TEXT PRIMARY KEY,
    weight      INTEGER NOT NULL DEFAULT 1,
    deficit     REAL NOT NULL DEFAULT 0,
    max_pending INTEGER,
    max_active  INTEGER,
    created_at  REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_fabric_tasks_state
    ON fabric_tasks (state, tenant, priority);
"""


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """v2: the fabric's durable leased work queue + tenant table."""
    conn.executescript(_FABRIC_DDL)


_FLEET_DDL = """
CREATE TABLE IF NOT EXISTS fabric_workers (
    name         TEXT PRIMARY KEY,
    version      TEXT NOT NULL DEFAULT '',
    state        TEXT NOT NULL DEFAULT 'active',
    started_at   REAL NOT NULL,
    last_seen    REAL NOT NULL,
    leases_total INTEGER NOT NULL DEFAULT 0
);

CREATE INDEX IF NOT EXISTS idx_fabric_workers_state
    ON fabric_workers (state, last_seen);

CREATE TABLE IF NOT EXISTS shard_links (
    run_id      INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    trial_key   TEXT NOT NULL,
    PRIMARY KEY (run_id, trial_key)
);
"""


def _migrate_2_to_3(conn: sqlite3.Connection) -> None:
    """v3: the fleet's durable worker registry (liveness + drain) and
    the sharded warehouse's cross-shard run→trial link table.

    ``shard_links`` is ``run_trials`` minus the foreign key into
    ``trials``: in a sharded layout the meta shard records links for
    payloads that live in *other* shard files, so the key cannot
    reference a local ``trials`` row.  Keeping the complete link set in
    the meta shard is what makes degraded-mode reads honest — a lost
    shard's runs still know exactly which trials they are missing.
    """
    conn.executescript(_FLEET_DDL)


#: ``MIGRATIONS[i]`` upgrades a version-``i`` database to ``i + 1``.
MIGRATIONS: List[Callable[[sqlite3.Connection], None]] = [
    _migrate_0_to_1,
    _migrate_1_to_2,
    _migrate_2_to_3,
]


def schema_version(conn: sqlite3.Connection) -> int:
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(conn: sqlite3.Connection) -> int:
    """Bring ``conn`` to :data:`STORE_SCHEMA_VERSION`; return the version
    the file was at before.  Refuses databases from a newer repro."""
    found = schema_version(conn)
    if found > STORE_SCHEMA_VERSION:
        raise SchemaError(
            f"store schema version {found} is newer than this code "
            f"supports ({STORE_SCHEMA_VERSION}); upgrade repro"
        )
    for version in range(found, STORE_SCHEMA_VERSION):
        with conn:
            MIGRATIONS[version](conn)
            conn.execute(f"PRAGMA user_version = {version + 1}")
    return found


__all__ = ["STORE_SCHEMA_VERSION", "MIGRATIONS", "SchemaError", "migrate", "schema_version"]
