"""Sharded warehouses: N ``ResultStore`` shards behind one store facade.

A single warehouse file is the fabric's storage bottleneck *and* its
single point of loss: every content-addressed trial payload of every
campaign funnels through one SQLite WAL.  :class:`ShardedResultStore`
splits the payload plane across N shard files while keeping the
*control* plane — runs, run→trial links, measurements, baselines,
events, and the fabric queue tables — in shard 0 (the **meta shard**):

* Trial payloads route to ``shard-<i>.db`` by a stable hash of their
  content-addressed identity (:func:`shard_index`), so any process that
  knows the key knows the shard — no directory service, no rebalancing
  protocol.
* Every run→trial link lives in the meta shard even when the payload
  lives elsewhere.  That asymmetry is what makes **degraded mode**
  honest: when a shard file is lost, the meta shard still knows exactly
  which trials a run *should* have, so reads fail with a typed
  :class:`ShardLostError` and :meth:`run_report` flags the run as
  partial with the precise missing keys — never a silent gap.
* Writes are payload-first: ``put_trial`` lands the payload in its
  shard *before* linking it in the meta shard.  A crash between the two
  leaves an orphan payload (healed by ``gc`` or the re-run's
  ``INSERT OR IGNORE``), never a link pointing at nothing.
* Cross-shard merge/compaction (:meth:`merge_to`) streams the fabric's
  export-bundle wire format run-by-run into a destination store.
  Bundles replay idempotently, so a merge interrupted at any byte is
  simply re-run — crash consistency by content addressing, the same
  property the at-least-once work queue leans on.

``gc`` is the one operation where naive per-shard reasoning corrupts:
a non-meta shard holds payloads but no links, so ``ResultStore.gc`` run
*inside* one shard would purge every payload another shard's runs still
reference.  :meth:`ShardedResultStore.gc` therefore computes the
referenced-key set from the meta shard's links and deletes only
genuinely unlinked payloads in each shard.

:func:`open_store` is the polymorphic front door the scheduler, router,
coordinator and workers use: a path to a ``shards.json`` directory opens
sharded, anything else opens the classic single-file store.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.store.warehouse import ResultStore, RunInfo, StoreError

#: Manifest filename marking a directory as a shard root.
SHARD_MANIFEST = "shards.json"

#: Manifest format version.
SHARD_LAYOUT_VERSION = 1


class ShardLostError(StoreError):
    """A read or write needed a shard whose database file is gone.

    Carries ``shard`` (the index) and ``key`` (the trial identity that
    routed there, when the failure is key-specific) so callers can
    report *which* slice of the warehouse is dark and schedule
    recomputation for exactly the affected trials.
    """

    def __init__(self, message: str, shard: int, key: Optional[str] = None):
        super().__init__(message)
        self.shard = shard
        self.key = key


def shard_index(key: str, shards: int) -> int:
    """Stable shard routing for a content-addressed trial identity.

    SHA-256 keeps the placement independent of Python's per-process
    ``hash()`` randomisation: every worker, coordinator, and recovery
    tool derives the same shard for the same key, forever.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % int(shards)


def shard_path(root: Union[str, Path], index: int) -> Path:
    return Path(root) / f"shard-{index:03d}.db"


class ShardedResultStore:
    """A :class:`ResultStore`-shaped facade over N warehouse shards.

    Parameters
    ----------
    root:
        Directory holding ``shards.json`` plus the shard files.  When
        the manifest does not exist yet, ``shards`` must be given and
        the layout is created.
    shards:
        Shard count when *creating* a new layout.  When opening an
        existing layout it is optional and, if given, must match the
        manifest (the count is immutable — routing depends on it).
    """

    def __init__(
        self,
        root: Union[str, Path],
        shards: Optional[int] = None,
        timeout_s: float = 30.0,
        retry=None,
        strict_payloads: bool = False,
    ):
        self.path = Path(root)
        self.strict_payloads = bool(strict_payloads)
        self._timeout_s = timeout_s
        self._retry_policy = retry
        manifest = self.path / SHARD_MANIFEST
        if manifest.exists():
            spec = json.loads(manifest.read_text())
            found = int(spec.get("shards", 0))
            if found < 1:
                raise StoreError(f"corrupt shard manifest: {manifest}")
            if shards is not None and int(shards) != found:
                raise StoreError(
                    f"shard count is immutable: manifest says {found}, "
                    f"caller asked for {shards} (routing would change)"
                )
            self.shards = found
            creating = False
        else:
            if shards is None or int(shards) < 1:
                raise StoreError(
                    f"no {SHARD_MANIFEST} under {self.path} and no shard "
                    "count given — pass shards=N to create a new layout"
                )
            self.shards = int(shards)
            creating = True
            self.path.mkdir(parents=True, exist_ok=True)
            manifest.write_text(
                json.dumps(
                    {"version": SHARD_LAYOUT_VERSION, "shards": self.shards},
                    sort_keys=True,
                )
                + "\n"
            )
        #: Shard index -> open ResultStore; lost shards are absent.
        self._shards: Dict[int, ResultStore] = {}
        #: Indices whose database file is missing or unopenable.  A lost
        #: shard is *never* silently recreated — an empty file would
        #: turn data loss into silently absent trials.  Recovery is the
        #: explicit :meth:`recover_shard`.
        self.lost_shards: List[int] = []
        for index in range(self.shards):
            file = shard_path(self.path, index)
            if not creating and not file.exists():
                self.lost_shards.append(index)
                continue
            try:
                self._shards[index] = ResultStore(
                    file,
                    timeout_s=timeout_s,
                    retry=retry,
                    strict_payloads=strict_payloads,
                )
            except (StoreError, sqlite3.Error):
                self.lost_shards.append(index)
        if 0 not in self._shards:
            # Without the meta shard there are no runs, links, or queue
            # tables to degrade *to* — nothing can be answered honestly.
            raise ShardLostError(
                f"meta shard 0 of {self.path} is lost; restore the file "
                "or recover_shard(0) on a fresh layout",
                shard=0,
            )

    # ------------------------------------------------------------- plumbing

    @property
    def _meta(self) -> ResultStore:
        return self._shards[0]

    @property
    def degraded(self) -> bool:
        return bool(self.lost_shards)

    def _shard_for(self, key: str) -> Tuple[int, ResultStore]:
        index = shard_index(key, self.shards)
        store = self._shards.get(index)
        if store is None:
            raise ShardLostError(
                f"trial {key!r} routes to lost shard {index} of {self.path}",
                shard=index,
                key=key,
            )
        return index, store

    def check_shards(self) -> List[int]:
        """Re-probe shard files; returns the (updated) lost list.

        An open SQLite connection keeps writing to an unlinked inode, so
        a shard deleted *underneath* a live process is only noticed by
        re-checking the path.  Chaos drivers and ``healthz`` call this.
        """
        for index in list(self._shards):
            if not shard_path(self.path, index).exists():
                self._shards[index].close()
                del self._shards[index]
                if index not in self.lost_shards:
                    self.lost_shards.append(index)
        self.lost_shards.sort()
        if 0 in self.lost_shards:
            raise ShardLostError(
                f"meta shard 0 of {self.path} was lost while open",
                shard=0,
            )
        return list(self.lost_shards)

    def recover_shard(self, index: int) -> Dict[str, object]:
        """Recreate a lost shard as an *empty* database and report what
        must be recomputed.

        The meta shard still links every trial the lost shard held, so
        the report's ``missing`` keys are exactly the recompute set —
        re-running the affected campaigns refills the shard through the
        normal content-addressed insert path.
        """
        if index == 0:
            raise StoreError("meta shard 0 cannot be recovered in place")
        if index not in self.lost_shards:
            raise StoreError(f"shard {index} is not lost")
        self._shards[index] = ResultStore(
            shard_path(self.path, index),
            timeout_s=self._timeout_s,
            retry=self._retry_policy,
            strict_payloads=self.strict_payloads,
        )
        self.lost_shards.remove(index)
        missing = [
            key
            for key in self._linked_keys()
            if shard_index(key, self.shards) == index
        ]
        self._meta.record_event(
            "shard_recovered",
            payload={"shard": index, "missing": len(missing)},
        )
        return {"shard": index, "missing": missing}

    def shard_report(self) -> Dict[str, object]:
        """Layout + health summary for ``healthz`` and the CLI."""
        sizes = {}
        trials = {}
        for index in range(self.shards):
            file = shard_path(self.path, index)
            sizes[index] = file.stat().st_size if file.exists() else 0
            shard = self._shards.get(index)
            if shard is not None:
                trials[index] = int(
                    shard.read_transaction(
                        lambda conn: conn.execute(
                            "SELECT COUNT(*) FROM trials"
                        ).fetchone()[0]
                    )
                )
        return {
            "root": str(self.path),
            "shards": self.shards,
            "lost": list(self.lost_shards),
            "degraded": self.degraded,
            "sizes": sizes,
            "trials": trials,
        }

    def close(self) -> None:
        for shard in self._shards.values():
            shard.close()

    def __enter__(self) -> "ShardedResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------- meta-shard delegation
    #
    # Control-plane state lives wholly in shard 0, including the fabric
    # queue/registry tables — WorkQueue binds to these seams unchanged.

    def write_transaction(self, fn):
        return self._meta.write_transaction(fn)

    def read_transaction(self, fn):
        return self._meta.read_transaction(fn)

    def ensure_run(self, name, note="", config=None) -> RunInfo:
        return self._meta.ensure_run(name, note=note, config=config)

    def run(self, ref) -> RunInfo:
        return self._meta.run(ref)

    def has_run(self, name: str) -> bool:
        return self._meta.has_run(name)

    def runs(self) -> List[RunInfo]:
        return self._meta.runs()

    def record_metrics(self, *args, **kwargs):
        return self._meta.record_metrics(*args, **kwargs)

    def record_metrics_raw(self, *args, **kwargs):
        return self._meta.record_metrics_raw(*args, **kwargs)

    def record_measurement(self, *args, **kwargs):
        return self._meta.record_measurement(*args, **kwargs)

    def query(self, *args, **kwargs):
        return self._meta.query(*args, **kwargs)

    def metric_table(self, *args, **kwargs):
        return self._meta.metric_table(*args, **kwargs)

    def set_baseline(self, name, run) -> None:
        self._meta.set_baseline(name, run)

    def baseline_run(self, name):
        return self._meta.baseline_run(name)

    def baselines(self):
        return self._meta.baselines()

    def record_event(self, event, campaign="", payload=None, run=None) -> None:
        self._meta.record_event(event, campaign=campaign, payload=payload, run=run)

    def events(self, campaign=None) -> List[dict]:
        return self._meta.events(campaign=campaign)

    def link_trial(self, run, key: str) -> None:
        self._link_many(run, [key])

    def _link_many(self, run, keys: List[str]) -> None:
        """Record run→trial links in the meta shard's ``shard_links``.

        ``run_trials`` cannot hold these rows: its foreign key into
        ``trials`` assumes the payload is local, and here it usually
        lives in another shard file.
        """
        if not keys:
            return
        run_id = self._meta.run(run).id
        self._meta.write_transaction(
            lambda conn: conn.executemany(
                "INSERT OR IGNORE INTO shard_links (run_id, trial_key) "
                "VALUES (?, ?)",
                [(run_id, key) for key in keys],
            )
        )

    # ------------------------------------------------------------- trials

    def put_trial(
        self,
        key: str,
        value: np.ndarray,
        seed: Optional[int] = None,
        label: str = "",
        run=None,
    ) -> bool:
        """Route the payload to its shard, then link in the meta shard.

        Payload-first ordering: a crash after the shard write but before
        the link leaves an orphan payload that ``gc`` can collect and a
        re-run's identical insert dedupes against — the opposite order
        could leave a link promising a payload that never landed.
        """
        _, shard = self._shard_for(key)
        created = shard.put_trial(key, value, seed=seed, label=label, run=None)
        if run is not None:
            self._link_many(run, [key])
        return created

    def put_trials(self, items: Iterable[Tuple[str, np.ndarray]], run=None) -> int:
        grouped: Dict[int, List[Tuple[str, np.ndarray]]] = {}
        keys: List[str] = []
        for key, value in items:
            grouped.setdefault(shard_index(key, self.shards), []).append(
                (key, value)
            )
            keys.append(key)
        created = 0
        for index, group in sorted(grouped.items()):
            shard = self._shards.get(index)
            if shard is None:
                raise ShardLostError(
                    f"{len(group)} trial(s) route to lost shard {index} "
                    f"of {self.path}",
                    shard=index,
                    key=group[0][0],
                )
            created += shard.put_trials(group, run=None)
        if run is not None:
            self._link_many(run, keys)
        return created

    def get_trial(
        self, key: str, strict: Optional[bool] = None
    ) -> Optional[np.ndarray]:
        _, shard = self._shard_for(key)
        return shard.get_trial(key, strict=strict)

    def has_trial(self, key: str) -> bool:
        _, shard = self._shard_for(key)
        return shard.has_trial(key)

    def trial_keys(self, run=None) -> List[str]:
        """Keys for ``run`` come from the meta shard's links, so they
        are *complete even in degraded mode* — that completeness is what
        lets :meth:`run_report` name the missing trials.  With no run,
        only live shards can answer (lost payload keys are unknowable
        outside run links)."""
        if run is not None:
            run_id = self._meta.run(run).id
            rows = self._meta.read_transaction(
                lambda conn: conn.execute(
                    "SELECT trial_key FROM shard_links WHERE run_id = ? "
                    "ORDER BY trial_key",
                    (run_id,),
                ).fetchall()
            )
            return [row[0] for row in rows]
        keys: List[str] = []
        for index in sorted(self._shards):
            keys.extend(self._shards[index].trial_keys())
        return sorted(keys)

    def _linked_keys(self) -> List[str]:
        """Every trial key any run references, from the meta shard's
        ``shard_links`` plus (defensively) any classic ``run_trials``
        rows a shard was given before joining this layout."""
        linked = set(
            row[0]
            for row in self._meta.read_transaction(
                lambda conn: conn.execute(
                    "SELECT DISTINCT trial_key FROM shard_links"
                ).fetchall()
            )
        )
        for index in sorted(self._shards):
            for info in self._shards[index].runs():
                linked.update(self._shards[index].trial_keys(info))
        return sorted(linked)

    def run_report(self, run) -> Dict[str, object]:
        """Per-run completeness: which linked trials are readable.

        The honest degraded-mode answer: ``partial`` is True when any
        linked payload is unreadable, ``missing`` names the keys, and
        ``lost_shards`` the dark slices.  Callers presenting results
        from a degraded warehouse surface this instead of pretending
        the run is whole.
        """
        linked = self.trial_keys(run)
        missing: List[str] = []
        for key in linked:
            index = shard_index(key, self.shards)
            shard = self._shards.get(index)
            if shard is None or not shard.has_trial(key):
                missing.append(key)
        return {
            "run": self._meta.run(run).name,
            "trials": len(linked),
            "present": len(linked) - len(missing),
            "missing": missing,
            "partial": bool(missing),
            "lost_shards": list(self.lost_shards),
        }

    # ----------------------------------------------------------------- gc

    def gc(self, dry_run: bool = False) -> Dict[str, int]:
        """Cross-shard-aware garbage collection.

        The referenced set comes from the *meta* shard's links — running
        ``ResultStore.gc`` inside an individual non-meta shard would see
        an empty ``run_trials`` table and purge payloads other shards'
        runs still reference.  Lost shards are skipped entirely (there
        is nothing to collect and nothing must be created).
        """
        referenced = set(self._linked_keys())
        report = {
            "trials_total": 0,
            "unlinked": 0,
            "unlinked_bytes": 0,
            "purged": 0,
            "size_before": 0,
            "size_after": 0,
            "dry_run": int(dry_run),
            "shards": self.shards,
            "lost_shards": len(self.lost_shards),
        }
        for index in sorted(self._shards):
            shard = self._shards[index]
            report["size_before"] += (
                shard.path.stat().st_size if shard.path.exists() else 0
            )
            keys = shard.trial_keys()
            report["trials_total"] += len(keys)
            dead = [key for key in keys if key not in referenced]
            report["unlinked"] += len(dead)
            if dead:
                report["unlinked_bytes"] += int(
                    shard.read_transaction(
                        lambda conn: sum(
                            int(
                                conn.execute(
                                    "SELECT COALESCE(SUM(LENGTH(payload)), 0) "
                                    "FROM trials WHERE key IN (%s)"
                                    % ",".join("?" * len(chunk)),
                                    chunk,
                                ).fetchone()[0]
                            )
                            for chunk in _chunks(dead, 400)
                        )
                    )
                )
            if not dry_run and dead:
                report["purged"] += int(
                    shard.write_transaction(
                        lambda conn: conn.executemany(
                            "DELETE FROM trials WHERE key = ?",
                            [(key,) for key in dead],
                        ).rowcount
                    )
                )
            if not dry_run:
                # VACUUM must run outside a transaction; the read seam
                # applies only the retry policy, no BEGIN.
                shard.read_transaction(lambda conn: conn.execute("VACUUM"))
            report["size_after"] += (
                shard.path.stat().st_size if shard.path.exists() else 0
            )
        return report

    # ------------------------------------------------------------- summary

    def counts(self) -> Dict[str, int]:
        """Aggregate row counts: control plane from meta, trials summed
        across live shards."""
        out = self._meta.counts()
        out["trials"] = 0
        for index in sorted(self._shards):
            out["trials"] += int(
                self._shards[index].read_transaction(
                    lambda conn: conn.execute(
                        "SELECT COUNT(*) FROM trials"
                    ).fetchone()[0]
                )
            )
        out["shards"] = self.shards
        out["lost_shards"] = len(self.lost_shards)
        return out

    def integrity_ok(self) -> bool:
        """A degraded warehouse is not intact: lost shards fail the
        check (healthz goes red) even though degraded reads keep
        working."""
        if self.lost_shards:
            return False
        return all(shard.integrity_ok() for shard in self._shards.values())

    # -------------------------------------------------------------- merge

    def merge_to(
        self,
        dest: ResultStore,
        runs: Optional[Iterable[str]] = None,
        allow_partial: bool = False,
    ) -> Dict[str, int]:
        """Stream every run into ``dest`` via the export-bundle format.

        Run-by-run streaming bounds memory to one run's payloads;
        bundle replay is idempotent by content address, so a merge that
        crashes at any point is crash-consistent: re-running it lands on
        rows that already hold identical bytes.  Reads from a lost shard
        raise :class:`ShardLostError` unless ``allow_partial`` — then
        the missing trials are skipped and counted, and the report (and
        a ``merge_partial`` event in ``dest``) says exactly how many.
        """
        from repro.fabric.wire import export_bundles, ingest_bundle

        names = (
            [info.name for info in self.runs()] if runs is None else list(runs)
        )
        source = _PartialReadView(self) if allow_partial else self
        totals = {
            "runs": 0,
            "trials": 0,
            "trials_deduped": 0,
            "measurements": 0,
            "skipped": 0,
        }
        merged: set = set()
        for bundle in export_bundles(source, names):
            counters = ingest_bundle(dest, bundle)
            for field in ("trials", "trials_deduped", "measurements"):
                totals[field] += counters[field]
            merged.update(record["name"] for record in bundle["runs"])
        totals["runs"] = len(merged)
        if allow_partial:
            totals["skipped"] = getattr(source, "skipped", 0)
        event = "merge_partial" if totals["skipped"] else "merge_complete"
        dest.record_event(event, payload=dict(totals, source=str(self.path)))
        return totals


class _PartialReadView:
    """Read adapter for ``allow_partial`` merges: lost-shard reads
    become skips (``export_bundles`` drops ``None`` payloads) instead of
    raising, while every skip is counted so the merge report stays
    honest."""

    def __init__(self, store: ShardedResultStore):
        self._store = store
        self.skipped = 0

    def run(self, ref):
        return self._store.run(ref)

    def trial_keys(self, run=None):
        return self._store.trial_keys(run)

    def query(self, *args, **kwargs):
        return self._store.query(*args, **kwargs)

    def get_trial(self, key, strict=None):
        try:
            return self._store.get_trial(key, strict=strict)
        except ShardLostError:
            self.skipped += 1
            return None

    # counts() used only by diagnostics; delegate for completeness.
    def counts(self):
        return self._store.counts()


def _chunks(seq: List[str], size: int) -> Iterable[List[str]]:
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def open_store(
    path: Union[str, Path],
    shards: Optional[int] = None,
    timeout_s: float = 30.0,
    retry=None,
    strict_payloads: bool = False,
) -> Union[ResultStore, ShardedResultStore]:
    """Open a warehouse at ``path``, sharded or classic, autodetected.

    * ``path`` is a directory with ``shards.json`` → sharded.
    * ``shards`` given (> 1, or ≥ 1 with a directory path) → create or
      open a sharded layout rooted there.
    * otherwise → classic single-file :class:`ResultStore`.
    """
    p = Path(path)
    if (p / SHARD_MANIFEST).exists() or p.is_dir():
        return ShardedResultStore(
            p,
            shards=shards,
            timeout_s=timeout_s,
            retry=retry,
            strict_payloads=strict_payloads,
        )
    if shards is not None and int(shards) > 1:
        return ShardedResultStore(
            p,
            shards=shards,
            timeout_s=timeout_s,
            retry=retry,
            strict_payloads=strict_payloads,
        )
    return ResultStore(
        p, timeout_s=timeout_s, retry=retry, strict_payloads=strict_payloads
    )


__all__ = [
    "SHARD_MANIFEST",
    "SHARD_LAYOUT_VERSION",
    "ShardLostError",
    "ShardedResultStore",
    "shard_index",
    "shard_path",
    "open_store",
]
