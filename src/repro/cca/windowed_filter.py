"""Windowed min/max filters.

Direct reimplementation of the Kathleen Nichols style windowed filter used
by Linux BBR (``lib/win_minmax.c``): it tracks the best (max or min) sample
over a sliding window using three estimates, giving O(1) updates without
storing the whole window.

Like the kernel original, the filter assumes non-decreasing sample times;
its guarantee is that the reported best is never *worse* than the true
windowed best (it may keep a slightly stale best up to one window long,
exactly as the kernel filter does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class _Sample:
    time: float
    value: float


class _WindowedFilter:
    """Shared machinery; ``_better`` decides max (>=) or min (<=)."""

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._estimates: list[Optional[_Sample]] = [None, None, None]

    def _better(self, a: float, b: float) -> bool:  # pragma: no cover
        raise NotImplementedError

    def reset(self, time: float, value: float) -> None:
        self._estimates = [
            _Sample(time, value),
            _Sample(time, value),
            _Sample(time, value),
        ]

    def update(self, time: float, value: float) -> float:
        """Insert a sample at ``time``; returns the current best estimate."""
        est = self._estimates
        best = est[0]
        # New overall best, or the window has fully passed: hard reset.
        if best is None or self._better(value, best.value) or (
            time - best.time > self.window
        ):
            self.reset(time, value)
            return value

        sample = _Sample(time, value)
        if self._better(value, est[1].value):  # type: ignore[union-attr]
            est[1] = sample
            est[2] = sample
        elif self._better(value, est[2].value):  # type: ignore[union-attr]
            est[2] = sample

        # Sub-window aging (kernel minmax_subwin_update).
        dt = time - est[0].time  # type: ignore[union-attr]
        if dt > self.window:
            est[0] = est[1]
            est[1] = est[2]
            est[2] = sample
            if time - est[0].time > self.window:  # type: ignore[union-attr]
                est[0] = est[1]
                est[1] = est[2]
                est[2] = sample
        elif est[1].time == est[0].time and dt > self.window / 4:  # type: ignore[union-attr]
            est[1] = sample
            est[2] = sample
        elif est[2].time == est[1].time and dt > self.window / 2:  # type: ignore[union-attr]
            est[2] = sample
        return est[0].value  # type: ignore[union-attr]

    def get(self) -> Optional[float]:
        best = self._estimates[0]
        return None if best is None else best.value


class WindowedMaxFilter(_WindowedFilter):
    """Running maximum over a sliding window (BBR bandwidth filter).

    BBR's bandwidth filter windows over *round trips*; callers pass the
    round count as the "time" axis in that case.
    """

    def _better(self, a: float, b: float) -> bool:
        return a >= b


class WindowedMinFilter(_WindowedFilter):
    """Running minimum over a sliding window (BBR min_rtt filter)."""

    def _better(self, a: float, b: float) -> bool:
        return a <= b
