"""Congestion-control algorithms.

From-scratch implementations of the three CCAs the paper studies — NewReno,
CUBIC (RFC 8312, with HyStart per RFC 9406) and BBR v1 — plus the parameter
and feature knobs that the paper identifies as the root causes of
non-conformance in QUIC stacks (pacing-gain scaling, cwnd-gain overrides,
N-connection emulation, RFC8312bis spurious-loss rollback, HyStart
presence).

The controllers are transport-agnostic: they see only
:class:`~repro.cca.base.AckEvent` / congestion notifications from the
hosting sender and expose a congestion window and an optional pacing rate.
"""

from repro.cca.base import AckEvent, CongestionController
from repro.cca.reno import NewReno
from repro.cca.cubic import Cubic, CubicConfig
from repro.cca.bbr import BBR, BBRConfig
from repro.cca.bbr2 import BBR2, BBR3, BBR2Config, bbr3_config
from repro.cca.gcc import GccConfig, GccController
from repro.cca.windowed_filter import WindowedMaxFilter, WindowedMinFilter
from repro.cca.rtt import RttEstimator

__all__ = [
    "AckEvent",
    "CongestionController",
    "NewReno",
    "Cubic",
    "CubicConfig",
    "BBR",
    "BBRConfig",
    "BBR2",
    "BBR3",
    "BBR2Config",
    "bbr3_config",
    "GccController",
    "GccConfig",
    "WindowedMaxFilter",
    "WindowedMinFilter",
    "RttEstimator",
]
