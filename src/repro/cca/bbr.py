"""BBR v1 congestion control (Cardwell et al., as deployed in Linux).

Implements the four-state machine (STARTUP, DRAIN, PROBE_BW, PROBE_RTT),
the windowed-max bandwidth filter over 10 round trips, the windowed-min RTT
filter over 10 seconds, the PROBE_BW pacing-gain cycle, and pacing/cwnd
derivation from the (btl_bw, min_rtt) model.

The knobs the paper's non-conformant stacks turn are exposed directly:

* ``pacing_rate_scale`` — mvfst multiplies its final sending rate by 1.25
  ("120 %" in the paper's prose; Table 4 says pacing gain 1.25 -> 1).
* ``cwnd_gain`` — xquic sets 2.5 instead of the default 2 (§5, Fig. 14).

BBR v1's *model* is loss-agnostic — congestion events never change the
bandwidth/RTT estimates — but, like Linux, the window itself applies
packet conservation inside loss recovery and restores the saved window on
recovery exit.  That recovery path is what makes ``cwnd_gain`` an
effective aggressiveness knob in loss-prone scenarios; an RTO collapses
the window to the 4-packet floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cca.base import AckEvent, CongestionController
from repro.cca.windowed_filter import WindowedMaxFilter

#: Linux ``bbr_cwnd_min_target``: BBR never lets cwnd fall below 4
#: packets (outside PROBE_RTT, where exactly 4 is the target).
MIN_CWND_PACKETS = 4

#: 2/ln(2): the minimum gain that can double delivered data every round.
STARTUP_GAIN = 2.885
#: PROBE_BW gain cycle (one phase per min_rtt).
PACING_GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


@dataclass
class BBRConfig:
    """Tunables; defaults mirror Linux ``tcp_bbr.c``."""

    initial_cwnd_packets: int = 10
    cwnd_gain: float = 2.0
    #: Scale applied to the final pacing rate (mvfst deviation: 1.25).
    pacing_rate_scale: float = 1.0
    #: Bandwidth filter window, in round trips.
    bw_window_rounds: int = 10
    #: min_rtt filter window, seconds.
    min_rtt_window_s: float = 10.0
    #: PROBE_RTT duration, seconds.
    probe_rtt_duration_s: float = 0.2
    #: Startup exits when bw grew by less than this for 3 rounds.
    full_bw_threshold: float = 1.25

    def validate(self) -> None:
        if self.initial_cwnd_packets <= 0:
            raise ValueError("initial cwnd must be positive")
        if self.cwnd_gain <= 0:
            raise ValueError("cwnd gain must be positive")
        if self.pacing_rate_scale <= 0:
            raise ValueError("pacing scale must be positive")
        if self.bw_window_rounds <= 0:
            raise ValueError("bw window must be positive")


class BBR(CongestionController):
    name = "bbr"

    STARTUP = "STARTUP"
    DRAIN = "DRAIN"
    PROBE_BW = "PROBE_BW"
    PROBE_RTT = "PROBE_RTT"

    def __init__(self, mss: int, config: Optional[BBRConfig] = None):
        config = config or BBRConfig()
        config.validate()
        super().__init__(mss)
        self.config = config
        self.state = self.STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN

        self._bw_filter = WindowedMaxFilter(window=config.bw_window_rounds)
        # Kernel-style min_rtt: a single value kept until the 10 s window
        # expires, at which point the current sample replaces it
        # (``bbr_update_min_rtt``).  A sliding-window min would drift
        # upward mid-window whenever the queue holds a standing load,
        # inflating the BDP estimate and with it the whole cwnd target.
        self._min_rtt: Optional[float] = None
        self._min_rtt_timestamp = 0.0
        self._min_rtt_expired = False
        self._probe_rtt_done_time: Optional[float] = None
        self._probe_rtt_round_done = False

        self._round = 0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._filled_pipe = False

        self._cycle_index = 0
        self._cycle_start = 0.0

        self._cwnd = config.initial_cwnd_packets * mss
        self._prior_cwnd = 0
        #: Initial pacing rate before any bandwidth sample exists, derived
        #: from the initial window over the assumed initial RTT.
        self._init_pacing = self._cwnd / 0.1 * STARTUP_GAIN

    # -- model accessors ---------------------------------------------------
    @property
    def btl_bw(self) -> Optional[float]:
        """Bottleneck bandwidth estimate, bytes/s."""
        return self._bw_filter.get()

    @property
    def min_rtt(self) -> Optional[float]:
        return self._min_rtt

    def bdp(self, gain: float = 1.0) -> Optional[int]:
        bw = self.btl_bw
        rtt = self.min_rtt
        if bw is None or rtt is None:
            return None
        return int(gain * bw * rtt)

    # -- controller interface ----------------------------------------------
    @property
    def cwnd(self) -> int:
        return self._cwnd

    @property
    def in_slow_start(self) -> bool:
        return self.state == self.STARTUP

    def pacing_rate(self) -> Optional[float]:
        bw = self.btl_bw
        if bw is None:
            rate = self._init_pacing
        else:
            rate = self.pacing_gain * bw
        return rate * self.config.pacing_rate_scale

    def on_ack(self, event: AckEvent) -> None:
        now = event.now
        new_round = event.round_count > self._round
        if new_round:
            self._round = event.round_count

        if event.delivery_rate is not None and (
            not event.is_app_limited
            or event.delivery_rate > (self.btl_bw or 0.0)
        ):
            self._bw_filter.update(self._round, event.delivery_rate)

        self._min_rtt_expired = (
            now - self._min_rtt_timestamp > self.config.min_rtt_window_s
        )
        if event.rtt_sample is not None:
            # Linux ``bbr_update_min_rtt``: adopt the sample when it beats
            # the current minimum or the window expired.  Merely
            # *observing* the standing minimum inside a full queue must
            # NOT postpone PROBE_RTT, so the stamp moves only here.  The
            # expiry flag computed above still drives the PROBE_RTT entry
            # on this very ACK, as in the kernel.
            if (
                self._min_rtt is None
                or event.rtt_sample <= self._min_rtt
                or self._min_rtt_expired
            ):
                self._min_rtt = event.rtt_sample
                self._min_rtt_timestamp = now

        if new_round:
            self._check_full_pipe(event)
        self._update_state_machine(event, new_round)
        self._set_cwnd(event)

    def on_congestion_event(self, now: float, bytes_in_flight: int) -> None:
        """Packet conservation on loss (Linux ``bbr_set_cwnd`` recovery).

        BBR v1's *model* is loss-agnostic, but the Linux implementation
        still snaps cwnd down to the data in flight when entering loss
        recovery and then regrows it by acked bytes up to the
        ``cwnd_gain * BDP`` target.  This is what makes the cwnd gain an
        effective aggressiveness knob in loss-prone (shallow/competing)
        scenarios — the mechanism behind the paper's Fig. 5 sweep and the
        xquic cwnd-gain deviation (Fig. 14).
        """
        self._prior_cwnd = max(self._prior_cwnd, self._cwnd)
        self._cwnd = max(bytes_in_flight, MIN_CWND_PACKETS * self.mss)

    def on_recovery_exit(self, now: float) -> None:
        """Restore the pre-recovery window (Linux ``bbr_prior_cwnd``)."""
        if self._prior_cwnd:
            self._cwnd = max(self._cwnd, self._prior_cwnd)
            self._prior_cwnd = 0

    def on_rto(self, now: float) -> None:
        self._prior_cwnd = self._cwnd
        self._cwnd = MIN_CWND_PACKETS * self.mss

    # -- internals -----------------------------------------------------
    def _check_full_pipe(self, event: AckEvent) -> None:
        if self._filled_pipe or event.is_app_limited:
            return
        bw = self.btl_bw or 0.0
        if bw >= self._full_bw * self.config.full_bw_threshold:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self._filled_pipe = True

    def _update_state_machine(self, event: AckEvent, new_round: bool) -> None:
        now = event.now
        if self.state == self.STARTUP and self._filled_pipe:
            self.state = self.DRAIN
            self.pacing_gain = 1.0 / STARTUP_GAIN
            self.cwnd_gain = STARTUP_GAIN
        if self.state == self.DRAIN:
            target = self.bdp()
            if target is not None and event.bytes_in_flight <= target:
                self._enter_probe_bw(now)
        if self.state == self.PROBE_BW:
            self._advance_cycle_phase(event)
        self._maybe_enter_or_exit_probe_rtt(event, new_round)

    def _enter_probe_bw(self, now: float) -> None:
        self.state = self.PROBE_BW
        self.cwnd_gain = self.config.cwnd_gain
        # Linux starts the cycle at a random phase other than 0.75; we use
        # phase 2 (gain 1.0) deterministically.
        self._cycle_index = 2
        self._cycle_start = now
        self.pacing_gain = PACING_GAIN_CYCLE[self._cycle_index]

    def _advance_cycle_phase(self, event: AckEvent) -> None:
        now = event.now
        rtt = self.min_rtt or 0.1
        elapsed = now - self._cycle_start
        gain = PACING_GAIN_CYCLE[self._cycle_index]
        should_advance = elapsed > rtt
        # Stay in the 0.75 phase only until in_flight drains to the BDP.
        if gain < 1.0:
            target = self.bdp() or 0
            should_advance = elapsed > rtt or event.bytes_in_flight <= target
        # Stay in the 1.25 phase a full RTT even under losses.
        if should_advance:
            self._cycle_index = (self._cycle_index + 1) % len(PACING_GAIN_CYCLE)
            self._cycle_start = now
            self.pacing_gain = PACING_GAIN_CYCLE[self._cycle_index]

    def _maybe_enter_or_exit_probe_rtt(self, event: AckEvent, new_round: bool) -> None:
        now = event.now
        min_rtt_expired = self._min_rtt_expired
        if (
            self.state != self.PROBE_RTT
            and min_rtt_expired
            and self._filled_pipe
        ):
            self.state = self.PROBE_RTT
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            self._prior_cwnd = self._cwnd
            self._probe_rtt_done_time = None
            self._probe_rtt_round_done = False
        if self.state == self.PROBE_RTT:
            probe_cwnd = 4 * self.mss
            if (
                self._probe_rtt_done_time is None
                and event.bytes_in_flight <= probe_cwnd
            ):
                self._probe_rtt_done_time = now + self.config.probe_rtt_duration_s
                self._probe_rtt_round_done = False
            elif self._probe_rtt_done_time is not None:
                if new_round:
                    self._probe_rtt_round_done = True
                if self._probe_rtt_round_done and now >= self._probe_rtt_done_time:
                    self._min_rtt_timestamp = now
                    self._exit_probe_rtt(now)

    def _exit_probe_rtt(self, now: float) -> None:
        self._cwnd = max(self._cwnd, self._prior_cwnd)
        if self._filled_pipe:
            self._enter_probe_bw(now)
        else:
            self.state = self.STARTUP
            self.pacing_gain = STARTUP_GAIN
            self.cwnd_gain = STARTUP_GAIN

    def _set_cwnd(self, event: AckEvent) -> None:
        if self.state == self.PROBE_RTT:
            self._cwnd = min(self._cwnd, 4 * self.mss)
            return
        target = self.bdp(self.cwnd_gain)
        if target is None:
            # No model yet: grow like slow start.
            self._cwnd += event.bytes_acked
            return
        target = max(target, MIN_CWND_PACKETS * self.mss)
        if self._filled_pipe:
            self._cwnd = min(self._cwnd + event.bytes_acked, target)
        else:
            # In STARTUP, never shrink toward the (still growing) target.
            if self._cwnd < target:
                self._cwnd += event.bytes_acked

    def debug_state(self) -> dict:
        state = super().debug_state()
        state.update(
            state=self.state,
            pacing_gain=self.pacing_gain,
            cwnd_gain=self.cwnd_gain,
            btl_bw=self.btl_bw,
            min_rtt=self.min_rtt,
            filled_pipe=self._filled_pipe,
        )
        return state
