"""TCP NewReno congestion control (RFC 5681 / RFC 6582 semantics).

Slow start doubles the window per round; congestion avoidance adds one MSS
per window of acknowledged data; a congestion event multiplies the window
by 0.5 (kernel/QUIC Reno convention).  The ``beta`` and additive-increase
scaling are exposed so stack variants can deviate the way the paper's
non-conformant implementations do.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionController, min_cwnd


class NewReno(CongestionController):
    name = "reno"

    def __init__(
        self,
        mss: int,
        initial_cwnd_packets: int = 10,
        beta: float = 0.5,
        ai_scale: float = 1.0,
        ssthresh: float = float("inf"),
    ):
        super().__init__(mss)
        if not 0 < beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if ai_scale <= 0:
            raise ValueError("additive-increase scale must be positive")
        self.beta = beta
        self.ai_scale = ai_scale
        self._cwnd = float(initial_cwnd_packets * mss)
        self.ssthresh = ssthresh
        #: Bytes acked since the last cwnd bump in congestion avoidance.
        self._bytes_acked_ca = 0.0

    # -- interface ---------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self._cwnd)

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self.ssthresh

    def on_ack(self, event: AckEvent) -> None:
        if self.in_slow_start:
            self._cwnd += event.bytes_acked
            if self._cwnd >= self.ssthresh:
                # Burn off any overshoot into the CA accumulator.
                self._bytes_acked_ca = self._cwnd - self.ssthresh
                self._cwnd = float(self.ssthresh)
            return
        # Congestion avoidance: cwnd += ai_scale * mss per cwnd of data.
        self._bytes_acked_ca += event.bytes_acked
        while self._bytes_acked_ca >= self._cwnd:
            self._bytes_acked_ca -= self._cwnd
            self._cwnd += self.ai_scale * self.mss

    def on_congestion_event(self, now: float, bytes_in_flight: int) -> None:
        self.ssthresh = max(self._cwnd * self.beta, min_cwnd(self.mss))
        self._cwnd = float(self.ssthresh)
        self._bytes_acked_ca = 0.0

    def on_rto(self, now: float) -> None:
        self.ssthresh = max(self._cwnd * self.beta, min_cwnd(self.mss))
        self._cwnd = float(min_cwnd(self.mss))
        self._bytes_acked_ca = 0.0

    def debug_state(self) -> dict:
        state = super().debug_state()
        state.update(ssthresh=self.ssthresh, slow_start=self.in_slow_start)
        return state
