"""RTT estimation (RFC 6298 smoothing + running minimum).

Shared by the sender's loss-detection/RTO machinery and by controllers
that need a smoothed RTT (CUBIC's TCP-friendly region, HyStart).
"""

from __future__ import annotations

from typing import Optional

from repro.faults import inject


class RttEstimator:
    """Keeps srtt/rttvar per RFC 6298 plus the running minimum RTT."""

    #: RFC 6298 constants.
    ALPHA = 1 / 8
    BETA = 1 / 4
    K = 4

    def __init__(self, initial_rtt: float = 0.1):
        if initial_rtt <= 0:
            raise ValueError("initial RTT must be positive")
        self.initial_rtt = initial_rtt
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.latest: Optional[float] = None
        self.min_rtt: Optional[float] = None

    def update(self, sample: float) -> None:
        # Fault seam: the clock-skew class shifts RTT samples here, so
        # chaos tests can prove the running minimum is skew-robust
        # (identity when no fault plan is active).
        sample = inject.fault_value("cca.rtt.sample", sample)
        if sample <= 0:
            raise ValueError("RTT sample must be positive")
        self.latest = sample
        if self.min_rtt is None or sample < self.min_rtt:
            self.min_rtt = sample
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(
                self.srtt - sample
            )
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * sample

    @property
    def smoothed(self) -> float:
        """srtt, falling back to the configured initial RTT pre-handshake."""
        return self.srtt if self.srtt is not None else self.initial_rtt

    def rto(self, min_rto: float = 0.2, max_rto: float = 60.0) -> float:
        """RFC 6298 retransmission timeout with kernel-style clamping."""
        if self.srtt is None or self.rttvar is None:
            return max(min_rto, min(1.0, max_rto))
        rto = self.srtt + self.K * self.rttvar
        return max(min_rto, min(rto, max_rto))

    def loss_time_threshold(self) -> float:
        """QUIC time-threshold for loss declaration (RFC 9002 §6.1.2).

        Deliberately tight: 9/8 of the larger of srtt and the latest
        sample.  When queueing delay inflates faster than the smoothed
        RTT tracks it (deep buffers), this threshold fires on packets
        that are merely queued — a QUIC-standard artifact that kernel
        RACK-TLP avoids with its variance-padded window (see
        :meth:`rack_time_threshold`).
        """
        basis = max(self.smoothed, self.latest or self.smoothed)
        return 9 / 8 * basis

    def rack_time_threshold(self) -> float:
        """Kernel RACK-style reordering window: srtt plus a variance pad.

        Linux RACK uses a quarter-min-RTT reordering window on top of the
        latest RTT and backs off further on detected spurious marks; the
        variance term keeps the threshold out of the way while the queue
        is growing.  Exposed for experimentation; the default sender uses
        the QUIC threshold for both modes (see
        ``Sender._detect_losses``) because an asymmetric threshold biases
        kernel-vs-QUIC BBR competition.
        """
        basis = max(self.smoothed, self.latest or self.smoothed)
        pad = max(
            4 * (self.rttvar if self.rttvar is not None else basis / 4),
            (self.min_rtt or basis) / 4,
        )
        return basis + pad
