"""BBR v2/v3 congestion control (IETF draft-cardwell-ccwg-bbr).

Extends the v1 model (:mod:`repro.cca.bbr`) with the mechanisms that
distinguish the second and third generations:

* **Loss-aware inflight bounds.**  ``inflight_hi`` is a long-term upper
  bound on data in flight, learned from loss: when a congestion event
  fires, the bound snaps to the larger of the data actually in flight
  and ``(1 - beta)`` of the current target inflight (Linux
  ``bbr2_handle_inflight_too_high``).  ``inflight_lo`` is the
  short-term conservative bound applied while the loss signal is fresh;
  it is cleared when the next REFILL (or ProbeRTT exit) declares the
  signal stale.  Both bound the congestion window directly, which is
  the ECN-independent loss response v1 lacked.
* **ProbeBW UP/DOWN/CRUISE/REFILL cycling.**  The fixed 8-phase gain
  cycle of v1 is replaced by the v2 state machine: DOWN drains the
  queue, CRUISE holds at estimated BDP with headroom below
  ``inflight_hi``, REFILL restores in-flight to the bound (clearing
  ``inflight_lo``), and UP probes above it until loss or the bound is
  reached.
* **ProbeRTT cwnd floor.**  v2 floors ProbeRTT at half the estimated
  BDP instead of v1's fixed 4 packets, so the RTT probe no longer
  starves the flow.

BBRv3 is the same machine with the tuning the BBRv3 presentations
describe: a gentler DOWN gain (0.9 vs 0.75), a lower STARTUP cwnd gain
(2.0 vs 2.89), and the same 15 % CRUISE headroom — see
:func:`bbr3_config`.  Both versions are deterministic: where Linux
randomises the CRUISE re-probe interval, this model uses the fixed
``cruise_s`` so trials stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cca.base import AckEvent, CongestionController
from repro.cca.windowed_filter import WindowedMaxFilter

#: Same floor as v1 (Linux ``bbr_cwnd_min_target``).
MIN_CWND_PACKETS = 4


@dataclass
class BBR2Config:
    """Tunables; defaults mirror ``tcp_bbr2.c`` / the BBRv2 draft."""

    initial_cwnd_packets: int = 10
    #: cwnd gain outside STARTUP.
    cwnd_gain: float = 2.0
    #: cwnd gain during STARTUP (v2: 2.89; v3 lowers it to 2.0).
    startup_cwnd_gain: float = 2.89
    #: Pacing gain during STARTUP (v2/v3 use 2.77, not v1's 2.885).
    startup_pacing_gain: float = 2.77
    #: Scale applied to the final pacing rate (deviation knob, as v1).
    pacing_rate_scale: float = 1.0
    #: Bandwidth filter window, in round trips.
    bw_window_rounds: int = 10
    #: min_rtt filter window, seconds.
    min_rtt_window_s: float = 10.0
    #: PROBE_RTT duration, seconds.
    probe_rtt_duration_s: float = 0.2
    #: PROBE_RTT floors cwnd at this fraction of BDP (v2; v1 used 4 pkts).
    probe_rtt_cwnd_gain: float = 0.5
    #: Startup exits when bw grew by less than this for 3 rounds.
    full_bw_threshold: float = 1.25
    #: ProbeBW UP pacing gain.
    probe_up_gain: float = 1.25
    #: ProbeBW DOWN pacing gain (v2: 0.75; v3: 0.9).
    probe_down_gain: float = 0.75
    #: Fraction of the inflight target cut from ``inflight_hi`` on loss
    #: (Linux ``bbr_beta`` = 0.3).
    beta: float = 0.3
    #: Fraction of ``inflight_hi`` kept free while CRUISEing
    #: (``bbr2_inflight_with_headroom``).
    headroom: float = 0.15
    #: CRUISE dwell before the next REFILL/UP probe, seconds.  Linux
    #: randomises 2-3 s; fixed here for determinism.
    cruise_s: float = 2.0

    def validate(self) -> None:
        if self.initial_cwnd_packets <= 0:
            raise ValueError("initial cwnd must be positive")
        if self.cwnd_gain <= 0 or self.startup_cwnd_gain <= 0:
            raise ValueError("cwnd gains must be positive")
        if self.pacing_rate_scale <= 0:
            raise ValueError("pacing scale must be positive")
        if self.bw_window_rounds <= 0:
            raise ValueError("bw window must be positive")
        if not 0.0 < self.beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        if not 0.0 <= self.headroom < 1.0:
            raise ValueError("headroom must be in [0, 1)")
        if not 0.0 < self.probe_rtt_cwnd_gain <= 1.0:
            raise ValueError("probe_rtt_cwnd_gain must be in (0, 1]")
        if self.cruise_s <= 0:
            raise ValueError("cruise_s must be positive")


def bbr3_config(**overrides) -> BBR2Config:
    """BBRv3 tuning of the v2 machine (gentler DOWN, lower startup gain)."""
    base = BBR2Config(probe_down_gain=0.9, startup_cwnd_gain=2.0)
    return replace(base, **overrides) if overrides else base


class BBR2(CongestionController):
    """BBRv2: the v1 model plus loss-aware inflight bounds."""

    name = "bbr2"

    STARTUP = "STARTUP"
    DRAIN = "DRAIN"
    PROBE_BW = "PROBE_BW"
    PROBE_RTT = "PROBE_RTT"

    #: ProbeBW phases, in cycling order starting from entry.
    DOWN = "DOWN"
    CRUISE = "CRUISE"
    REFILL = "REFILL"
    UP = "UP"

    def __init__(self, mss: int, config: Optional[BBR2Config] = None):
        config = config or BBR2Config()
        config.validate()
        super().__init__(mss)
        self.config = config
        self.state = self.STARTUP
        self.phase: Optional[str] = None
        self.pacing_gain = config.startup_pacing_gain
        self.cwnd_gain = config.startup_cwnd_gain

        self._bw_filter = WindowedMaxFilter(window=config.bw_window_rounds)
        # Kernel-style min_rtt: one value held until the window expires
        # (see repro.cca.bbr for why a sliding min is wrong here).
        self._min_rtt: Optional[float] = None
        self._min_rtt_timestamp = 0.0
        self._min_rtt_expired = False
        self._probe_rtt_done_time: Optional[float] = None
        self._probe_rtt_round_done = False

        self._round = 0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._filled_pipe = False

        self._phase_start = 0.0
        self._phase_round = 0

        #: Loss-learned bounds, bytes; None means "no bound yet".
        self._inflight_hi: Optional[int] = None
        self._inflight_lo: Optional[int] = None
        self._loss_in_round = False
        self._loss_round = -1

        self._cwnd = config.initial_cwnd_packets * mss
        self._prior_cwnd = 0
        self._init_pacing = self._cwnd / 0.1 * config.startup_pacing_gain

    # -- model accessors ---------------------------------------------------
    @property
    def btl_bw(self) -> Optional[float]:
        """Bottleneck bandwidth estimate, bytes/s."""
        return self._bw_filter.get()

    @property
    def min_rtt(self) -> Optional[float]:
        return self._min_rtt

    @property
    def inflight_hi(self) -> Optional[int]:
        """Loss-learned long-term inflight bound, bytes (None = unbounded)."""
        return self._inflight_hi

    @property
    def inflight_lo(self) -> Optional[int]:
        """Short-term conservative inflight bound, bytes (None = inactive)."""
        return self._inflight_lo

    def bdp(self, gain: float = 1.0) -> Optional[int]:
        bw = self.btl_bw
        rtt = self.min_rtt
        if bw is None or rtt is None:
            return None
        return int(gain * bw * rtt)

    def _target_inflight(self) -> int:
        """BDP if the model has one, else the current window."""
        return self.bdp() or self._cwnd

    def _inflight_with_headroom(self) -> Optional[int]:
        """CRUISE ceiling: ``inflight_hi`` minus the configured headroom."""
        if self._inflight_hi is None:
            return None
        return max(
            int(self._inflight_hi * (1.0 - self.config.headroom)),
            MIN_CWND_PACKETS * self.mss,
        )

    # -- controller interface ----------------------------------------------
    @property
    def cwnd(self) -> int:
        return self._cwnd

    @property
    def in_slow_start(self) -> bool:
        return self.state == self.STARTUP

    def pacing_rate(self) -> Optional[float]:
        bw = self.btl_bw
        if bw is None:
            rate = self._init_pacing
        else:
            rate = self.pacing_gain * bw
        return rate * self.config.pacing_rate_scale

    def on_ack(self, event: AckEvent) -> None:
        now = event.now
        new_round = event.round_count > self._round
        if new_round:
            self._round = event.round_count
            self._loss_in_round = self._loss_round == event.round_count

        if event.delivery_rate is not None and (
            not event.is_app_limited
            or event.delivery_rate > (self.btl_bw or 0.0)
        ):
            self._bw_filter.update(self._round, event.delivery_rate)

        self._min_rtt_expired = (
            now - self._min_rtt_timestamp > self.config.min_rtt_window_s
        )
        if event.rtt_sample is not None:
            if (
                self._min_rtt is None
                or event.rtt_sample <= self._min_rtt
                or self._min_rtt_expired
            ):
                self._min_rtt = event.rtt_sample
                self._min_rtt_timestamp = now

        if new_round:
            self._check_full_pipe(event)
        self._update_state_machine(event, new_round)
        self._set_cwnd(event)

    def on_congestion_event(self, now: float, bytes_in_flight: int) -> None:
        """ECN-independent loss response: learn the inflight bounds.

        ``inflight_hi`` snaps to the larger of the data actually in
        flight at the loss and ``(1 - beta)`` of the target inflight
        (Linux ``bbr2_handle_inflight_too_high``); ``inflight_lo``
        applies the same cut as a short-term bound until the next
        REFILL declares the loss signal stale.  Packet conservation on
        the window itself matches v1/Linux.
        """
        floor = MIN_CWND_PACKETS * self.mss
        target = self._target_inflight()
        cut = max(int(target * (1.0 - self.config.beta)), floor)
        measured = max(bytes_in_flight, floor)
        self._inflight_hi = max(measured, cut)
        self._inflight_lo = cut
        self._loss_in_round = True
        self._loss_round = self._round + 1
        self._prior_cwnd = max(self._prior_cwnd, self._cwnd)
        self._cwnd = max(bytes_in_flight, floor)
        # Loss while probing up ends the probe: fall into DOWN now.
        if self.state == self.PROBE_BW and self.phase in (self.UP, self.REFILL):
            self._enter_phase(self.DOWN, now)

    def on_recovery_exit(self, now: float) -> None:
        if self._prior_cwnd:
            self._cwnd = max(self._cwnd, self._prior_cwnd)
            self._prior_cwnd = 0

    def on_rto(self, now: float) -> None:
        self._prior_cwnd = self._cwnd
        self._cwnd = MIN_CWND_PACKETS * self.mss

    # -- internals -----------------------------------------------------
    def _check_full_pipe(self, event: AckEvent) -> None:
        if self._filled_pipe or event.is_app_limited:
            return
        bw = self.btl_bw or 0.0
        if bw >= self._full_bw * self.config.full_bw_threshold:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self._filled_pipe = True

    def _update_state_machine(self, event: AckEvent, new_round: bool) -> None:
        now = event.now
        if self.state == self.STARTUP and (
            self._filled_pipe or self._loss_in_round
        ):
            # v2 also exits STARTUP on loss (the pipe is evidently full).
            self._filled_pipe = True
            self.state = self.DRAIN
            self.pacing_gain = 1.0 / self.config.startup_pacing_gain
            self.cwnd_gain = self.config.startup_cwnd_gain
        if self.state == self.DRAIN:
            target = self.bdp()
            if target is not None and event.bytes_in_flight <= target:
                self._enter_probe_bw(now)
        if self.state == self.PROBE_BW:
            self._advance_probe_bw(event, new_round)
        self._maybe_enter_or_exit_probe_rtt(event, new_round)

    def _enter_probe_bw(self, now: float) -> None:
        self.state = self.PROBE_BW
        self.cwnd_gain = self.config.cwnd_gain
        # Linux bbr2 enters PROBE_BW in the DOWN phase after DRAIN.
        self._enter_phase(self.DOWN, now)

    def _enter_phase(self, phase: str, now: float) -> None:
        self.phase = phase
        self._phase_start = now
        self._phase_round = self._round
        self.pacing_gain = {
            self.DOWN: self.config.probe_down_gain,
            self.CRUISE: 1.0,
            self.REFILL: 1.0,
            self.UP: self.config.probe_up_gain,
        }[phase]
        if phase == self.REFILL:
            # The loss signal that set the short-term bound is stale by
            # the time we deliberately refill the pipe.
            self._inflight_lo = None

    def _advance_probe_bw(self, event: AckEvent, new_round: bool) -> None:
        now = event.now
        rtt = self.min_rtt or 0.1
        elapsed = now - self._phase_start
        if self.phase == self.DOWN:
            # Drain until in flight reaches the target (with headroom
            # below inflight_hi when one is set), but at least one RTT.
            ceiling = self._inflight_with_headroom()
            target = self._target_inflight()
            if ceiling is not None:
                target = min(target, ceiling)
            if elapsed > rtt and event.bytes_in_flight <= target:
                self._enter_phase(self.CRUISE, now)
        elif self.phase == self.CRUISE:
            if elapsed > self.config.cruise_s:
                self._enter_phase(self.REFILL, now)
        elif self.phase == self.REFILL:
            # One full round restoring in flight to the bound, then probe.
            if self._round > self._phase_round:
                self._enter_phase(self.UP, now)
        elif self.phase == self.UP:
            bound_hit = (
                self._inflight_hi is not None
                and event.bytes_in_flight >= self._inflight_hi
            )
            if self._loss_in_round or (elapsed > rtt and bound_hit):
                self._enter_phase(self.DOWN, now)
            elif bound_hit is False and new_round and self._inflight_hi is not None:
                # Probing above a loss-learned bound without new loss:
                # raise the bound multiplicatively, as bbr2 probes hi.
                self._inflight_hi = int(self._inflight_hi * 1.25)

    def _probe_rtt_cwnd(self) -> int:
        """v2 ProbeRTT floor: half BDP, never below 4 packets."""
        floor = MIN_CWND_PACKETS * self.mss
        bdp = self.bdp(self.config.probe_rtt_cwnd_gain)
        return max(bdp or floor, floor)

    def _maybe_enter_or_exit_probe_rtt(
        self, event: AckEvent, new_round: bool
    ) -> None:
        now = event.now
        if (
            self.state != self.PROBE_RTT
            and self._min_rtt_expired
            and self._filled_pipe
        ):
            self.state = self.PROBE_RTT
            self.phase = None
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0
            self._prior_cwnd = self._cwnd
            self._probe_rtt_done_time = None
            self._probe_rtt_round_done = False
        if self.state == self.PROBE_RTT:
            probe_cwnd = self._probe_rtt_cwnd()
            if (
                self._probe_rtt_done_time is None
                and event.bytes_in_flight <= probe_cwnd
            ):
                self._probe_rtt_done_time = now + self.config.probe_rtt_duration_s
                self._probe_rtt_round_done = False
            elif self._probe_rtt_done_time is not None:
                if new_round:
                    self._probe_rtt_round_done = True
                if self._probe_rtt_round_done and now >= self._probe_rtt_done_time:
                    self._min_rtt_timestamp = now
                    self._exit_probe_rtt(now)

    def _exit_probe_rtt(self, now: float) -> None:
        self._cwnd = max(self._cwnd, self._prior_cwnd)
        self._inflight_lo = None
        if self._filled_pipe:
            self._enter_probe_bw(now)
        else:
            self.state = self.STARTUP
            self.pacing_gain = self.config.startup_pacing_gain
            self.cwnd_gain = self.config.startup_cwnd_gain

    def _cwnd_bound(self) -> Optional[int]:
        """The loss-learned cap currently in force, if any."""
        bounds = []
        if self._inflight_hi is not None:
            if self.state == self.PROBE_BW and self.phase == self.CRUISE:
                bounds.append(self._inflight_with_headroom())
            else:
                bounds.append(self._inflight_hi)
        if self._inflight_lo is not None:
            bounds.append(self._inflight_lo)
        bounds = [b for b in bounds if b is not None]
        return min(bounds) if bounds else None

    def _set_cwnd(self, event: AckEvent) -> None:
        if self.state == self.PROBE_RTT:
            self._cwnd = min(self._cwnd, self._probe_rtt_cwnd())
            return
        floor = MIN_CWND_PACKETS * self.mss
        target = self.bdp(self.cwnd_gain)
        if target is None:
            self._cwnd += event.bytes_acked
        else:
            target = max(target, floor)
            if self._filled_pipe:
                self._cwnd = min(self._cwnd + event.bytes_acked, target)
            elif self._cwnd < target:
                self._cwnd += event.bytes_acked
        bound = self._cwnd_bound()
        if bound is not None:
            self._cwnd = min(self._cwnd, max(bound, floor))

    def debug_state(self) -> dict:
        state = super().debug_state()
        state.update(
            state=self.state,
            phase=self.phase,
            pacing_gain=self.pacing_gain,
            cwnd_gain=self.cwnd_gain,
            btl_bw=self.btl_bw,
            min_rtt=self.min_rtt,
            filled_pipe=self._filled_pipe,
            inflight_hi=self._inflight_hi,
            inflight_lo=self._inflight_lo,
        )
        return state


class BBR3(BBR2):
    """BBRv3: the v2 machine with the v3 tuning (see :func:`bbr3_config`)."""

    name = "bbr3"

    def __init__(self, mss: int, config: Optional[BBR2Config] = None):
        super().__init__(mss, config or bbr3_config())


__all__ = ["BBR2", "BBR3", "BBR2Config", "bbr3_config", "MIN_CWND_PACKETS"]
