"""CUBIC congestion control (RFC 8312) with HyStart++ (RFC 9406).

This is the reference implementation the paper compares QUIC stacks
against, plus the exact deviation knobs the paper root-caused:

* ``emulated_connections`` — Chromium's CUBIC emulates N connections by
  softening the multiplicative decrease and scaling the Reno-friendly
  additive increase (Table 4: "Emulated flows reduced from 2 to 1").
* ``enable_hystart`` — xquic CUBIC ships without HyStart; its classic slow
  start overshoots deep buffers (§5, "Missing Mechanism").
* ``spurious_loss_rollback`` — quiche CUBIC implements the RFC8312bis §4.9
  undo: when a congestion event turns out to be spurious the window,
  ssthresh and W_max are restored (§5, Fig. 15).  The Linux kernel does
  *not* implement this, which is exactly why it hurts conformance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cca.base import AckEvent, CongestionController, min_cwnd


@dataclass
class CubicConfig:
    """Tunables; defaults mirror the Linux kernel."""

    initial_cwnd_packets: int = 10
    #: RFC 8312 constant C, in (segments / s^3).
    c: float = 0.4
    #: Multiplicative-decrease factor (kernel: 0.7).
    beta: float = 0.7
    fast_convergence: bool = True
    #: Reno-friendly region on/off (kernel: on).
    tcp_friendliness: bool = True
    #: HyStart++ delay-based slow-start exit (kernel: on).
    enable_hystart: bool = True
    #: Chromium-style N-connection emulation (1 = standard behaviour).
    emulated_connections: int = 1
    #: quiche-style RFC8312bis undo of spurious congestion events.
    spurious_loss_rollback: bool = False

    def validate(self) -> None:
        if self.initial_cwnd_packets <= 0:
            raise ValueError("initial cwnd must be positive")
        if self.c <= 0:
            raise ValueError("CUBIC C must be positive")
        if not 0 < self.beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if self.emulated_connections < 1:
            raise ValueError("emulated_connections must be >= 1")


class _HyStartPlusPlus:
    """HyStart++ (RFC 9406): leave slow start on a per-round RTT increase.

    Implements the standard algorithm: per-round min-RTT sampling (at
    least ``N_RTT_SAMPLE`` samples), the clamped RTT threshold, and the
    Conservative Slow Start (CSS) phase with spurious-exit detection.
    """

    N_RTT_SAMPLE = 8
    MIN_RTT_THRESH = 0.004
    MAX_RTT_THRESH = 0.016
    CSS_GROWTH_DIVISOR = 4
    CSS_ROUNDS = 5

    def __init__(self) -> None:
        self.current_round_min_rtt = float("inf")
        self.last_round_min_rtt = float("inf")
        self.rtt_sample_count = 0
        self.round = -1
        self.in_css = False
        self.css_baseline_min_rtt = float("inf")
        self.css_round_count = 0
        self.exit_slow_start = False

    def on_round_start(self, round_count: int) -> None:
        self.round = round_count
        self.last_round_min_rtt = self.current_round_min_rtt
        self.current_round_min_rtt = float("inf")
        self.rtt_sample_count = 0
        if self.in_css:
            self.css_round_count += 1
            if self.css_round_count >= self.CSS_ROUNDS:
                self.exit_slow_start = True

    def on_rtt_sample(self, rtt: float) -> None:
        self.rtt_sample_count += 1
        if rtt < self.current_round_min_rtt:
            self.current_round_min_rtt = rtt
        if self.rtt_sample_count < self.N_RTT_SAMPLE:
            return
        if self.in_css:
            # Spurious CSS entry: delay fell back below the baseline.
            if self.current_round_min_rtt < self.css_baseline_min_rtt:
                self.in_css = False
                self.css_round_count = 0
            return
        if self.last_round_min_rtt == float("inf"):
            return
        eta = min(
            max(self.MIN_RTT_THRESH, self.last_round_min_rtt / 8),
            self.MAX_RTT_THRESH,
        )
        if self.current_round_min_rtt >= self.last_round_min_rtt + eta:
            self.in_css = True
            self.css_baseline_min_rtt = self.last_round_min_rtt
            self.css_round_count = 0

    @property
    def growth_divisor(self) -> int:
        return self.CSS_GROWTH_DIVISOR if self.in_css else 1


class Cubic(CongestionController):
    name = "cubic"

    def __init__(self, mss: int, config: Optional[CubicConfig] = None):
        config = config or CubicConfig()
        config.validate()
        super().__init__(mss)
        self.config = config
        self._cwnd = float(config.initial_cwnd_packets * mss)
        self.ssthresh = float("inf")
        # CUBIC epoch state (segment units inside the cubic formula).
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start: Optional[float] = None
        self._ack_count = 0
        self._w_est = 0.0
        self._srtt = 0.1
        self._last_round = -1
        self._hystart = _HyStartPlusPlus() if config.enable_hystart else None
        # Snapshot for RFC8312bis undo.
        self._undo_state: Optional[dict] = None

    # -- derived constants ---------------------------------------------
    @property
    def _beta_n(self) -> float:
        """Effective decrease factor with N-connection emulation."""
        n = self.config.emulated_connections
        return (n - 1 + self.config.beta) / n

    @property
    def _alpha_n(self) -> float:
        """Reno-friendly additive-increase factor (RFC 8312 §4.2).

        With N emulated connections the aggregate additive increase is N
        per-connection increases computed at the softened beta — the
        aggregate-equivalent form of Chromium's per-connection emulation.
        """
        n = self.config.emulated_connections
        beta = self._beta_n
        return 3 * n * (1 - beta) / (1 + beta)

    # -- interface -------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self._cwnd)

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self.ssthresh

    def on_ack(self, event: AckEvent) -> None:
        if event.rtt_sample is not None:
            # EWMA matching the host stack's smoothing closely enough for
            # the Reno-friendly time axis.
            self._srtt += (event.rtt_sample - self._srtt) / 8
        if self.in_slow_start:
            self._slow_start_ack(event)
            return
        self._congestion_avoidance_ack(event)

    def _slow_start_ack(self, event: AckEvent) -> None:
        hystart = self._hystart
        divisor = 1
        if hystart is not None:
            if event.round_count != self._last_round:
                self._last_round = event.round_count
                hystart.on_round_start(event.round_count)
            if event.rtt_sample is not None:
                hystart.on_rtt_sample(event.rtt_sample)
            if hystart.exit_slow_start:
                self.ssthresh = self._cwnd
                return
            divisor = hystart.growth_divisor
        self._cwnd += event.bytes_acked / divisor
        if self._cwnd >= self.ssthresh:
            self._cwnd = float(self.ssthresh)

    def _congestion_avoidance_ack(self, event: AckEvent) -> None:
        now = event.now
        seg = self.mss
        cwnd_seg = self._cwnd / seg
        if self._epoch_start is None:
            self._epoch_start = now
            self._ack_count = 0
            if self._w_max <= cwnd_seg:
                self._w_max = cwnd_seg
                self._k = 0.0
            else:
                self._k = ((self._w_max - cwnd_seg) / self.config.c) ** (1 / 3)
            self._w_est = cwnd_seg
        t = now - self._epoch_start
        # Target window one RTT ahead (RFC 8312 §4.1).
        rtt = self._srtt
        w_cubic = (
            self.config.c * (t + rtt - self._k) ** 3 + self._w_max
        )
        # Kernel clamps growth to 1.5x per RTT.
        target = min(max(w_cubic, cwnd_seg), 1.5 * cwnd_seg)

        # Reno-friendly region (RFC 8312 §4.2).
        self._w_est += self._alpha_n * event.bytes_acked / self._cwnd
        if self.config.tcp_friendliness and self._w_est > target:
            target = self._w_est

        if target > cwnd_seg:
            # RFC 8312 §4.1: grow by (target - cwnd)/cwnd segments per
            # acked segment, i.e. reach the target after one full window
            # of acknowledgments.
            increment_bytes = (target - cwnd_seg) / cwnd_seg * event.bytes_acked
            self._cwnd = min(self._cwnd + increment_bytes, target * seg)

    def on_congestion_event(self, now: float, bytes_in_flight: int) -> None:
        if self.config.spurious_loss_rollback:
            self._undo_state = {
                "cwnd": self._cwnd,
                "ssthresh": self.ssthresh,
                "w_max": self._w_max,
                "k": self._k,
                "epoch_start": self._epoch_start,
                "w_est": self._w_est,
            }
        cwnd_seg = self._cwnd / self.mss
        if self.config.fast_convergence and cwnd_seg < self._w_max:
            self._w_max = cwnd_seg * (2 - self._beta_n) / 2
        else:
            self._w_max = cwnd_seg
        self._cwnd = max(self._cwnd * self._beta_n, min_cwnd(self.mss))
        self.ssthresh = self._cwnd
        self._epoch_start = None

    def on_spurious_congestion(self, now: float) -> None:
        if not self.config.spurious_loss_rollback or self._undo_state is None:
            return
        state = self._undo_state
        self._undo_state = None
        # RFC8312bis §4.9: restore cwnd, ssthresh and W_max as if the
        # congestion event never happened.
        self._cwnd = max(state["cwnd"], self._cwnd)
        self.ssthresh = max(state["ssthresh"], self.ssthresh)
        self._w_max = state["w_max"]
        self._k = state["k"]
        self._epoch_start = state["epoch_start"]
        self._w_est = state["w_est"]

    def on_rto(self, now: float) -> None:
        self.ssthresh = max(self._cwnd * self._beta_n, min_cwnd(self.mss))
        self._cwnd = float(min_cwnd(self.mss))
        self._epoch_start = None
        self._w_max = max(self._w_max, self.ssthresh / self.mss)

    def debug_state(self) -> dict:
        state = super().debug_state()
        state.update(
            ssthresh=self.ssthresh,
            w_max=self._w_max,
            slow_start=self.in_slow_start,
            hystart_css=bool(self._hystart and self._hystart.in_css),
        )
        return state
