"""GCC-style delay/rate-based real-time congestion control.

A from-scratch model of the Google Congestion Control family (GCC /
REMB, as deployed for WebRTC): a *delay-gradient* estimator feeding an
*AIMD rate controller*, mapped onto the transport-agnostic
:class:`~repro.cca.base.CongestionController` interface.

* **Arrival filter.**  Each RTT sample, less the running minimum RTT,
  is a queueing-delay proxy.  A least-squares trendline over the last
  ``gradient_window`` (time, smoothed-delay) samples estimates the
  delay *gradient* — the modern trendline variant of GCC's original
  Kalman arrival filter.
* **Overuse detector.**  The gradient is compared against an adaptive
  threshold (gamma adapts toward the observed gradient magnitude, as
  in the GCC draft, so the detector is neither starved by TCP-like
  competitors nor trigger-happy on jittery paths).  A sustained
  positive crossing signals *overuse*; a negative crossing signals
  *underuse*.
* **AIMD rate controller.**  The target rate increases multiplicatively
  (``eta``) while the detector reads normal and no decrease happened
  recently, increases additively (one packet per RTT) near the last
  known-good rate, and on overuse decreases to ``beta`` times the
  measured delivery rate, then holds until the queue drains.

The controller is rate-based: :meth:`pacing_rate` carries the target
rate and the congestion window is derived as ``rate x smoothed RTT``
plus slack, so the pacer — not the window — shapes the flow, as in a
real-time stack.  Loss feeds back the GCC way: the loss-based
controller only bites when loss is persistent (each congestion event
applies a mild multiplicative cut), so the delay signal dominates.
Everything is deterministic; there is no randomised start-up probing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.cca.base import AckEvent, CongestionController


@dataclass
class GccConfig:
    """Tunables; defaults follow the GCC draft / WebRTC implementation."""

    #: Starting target rate, bytes/s (1.0 Mbps).
    initial_rate: float = 125_000.0
    #: Rate floor, bytes/s (~64 kbps, a voice-call floor).
    min_rate: float = 8_000.0
    #: Rate ceiling, bytes/s (500 Mbps — effectively uncapped here).
    max_rate: float = 62_500_000.0
    #: Samples in the trendline regression window.
    gradient_window: int = 20
    #: EWMA smoothing factor for the queueing-delay series.
    smoothing: float = 0.9
    #: Initial overuse threshold on the delay gradient, dimensionless
    #: (seconds of queueing-delay growth per second of observation —
    #: the draft's gamma, rescaled to the slope the trendline yields).
    threshold: float = 0.015
    #: Adaptation gains for the threshold (draft k_u / k_d).
    k_up: float = 0.01
    k_down: float = 0.00018
    #: Consecutive over-threshold samples required to declare overuse.
    overuse_samples: int = 2
    #: Multiplicative increase per RTT while far from the link limit.
    eta: float = 1.08
    #: Decrease factor applied to the measured delivery rate on overuse.
    beta: float = 0.85
    #: Multiplicative cut per congestion (loss) event; GCC's loss-based
    #: controller reacts mildly, the delay signal is meant to dominate.
    loss_beta: float = 0.95
    #: cwnd slack over rate x RTT, so pacing (not the window) limits.
    cwnd_gain: float = 1.5

    def validate(self) -> None:
        if self.initial_rate <= 0 or self.min_rate <= 0:
            raise ValueError("rates must be positive")
        if self.min_rate > self.max_rate:
            raise ValueError("min_rate must not exceed max_rate")
        if self.gradient_window < 2:
            raise ValueError("gradient_window must be >= 2")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 < self.beta < 1.0 or not 0.0 < self.loss_beta <= 1.0:
            raise ValueError("decrease factors must be in (0, 1]")
        if self.eta <= 1.0:
            raise ValueError("eta must exceed 1")
        if self.overuse_samples < 1:
            raise ValueError("overuse_samples must be >= 1")


class GccController(CongestionController):
    """Delay-gradient AIMD rate controller (GCC/REMB style)."""

    name = "gcc"

    #: Detector readings.
    NORMAL = "NORMAL"
    OVERUSE = "OVERUSE"
    UNDERUSE = "UNDERUSE"

    #: Rate-controller states.
    INCREASE = "INCREASE"
    DECREASE = "DECREASE"
    HOLD = "HOLD"

    def __init__(self, mss: int, config: Optional[GccConfig] = None):
        config = config or GccConfig()
        config.validate()
        super().__init__(mss)
        self.config = config
        self._rate = config.initial_rate
        self._min_rtt: Optional[float] = None
        self._srtt: Optional[float] = None
        self._smoothed_delay: Optional[float] = None
        self._samples: Deque[Tuple[float, float]] = deque(
            maxlen=config.gradient_window
        )
        self._threshold = config.threshold
        self._signal = self.NORMAL
        self._state = self.INCREASE
        self._over_count = 0
        self._under_count = 0
        self._last_update = 0.0
        self._last_decrease_rate: Optional[float] = None
        self._delivery_rate: Optional[float] = None

    # -- model accessors ---------------------------------------------------
    @property
    def rate(self) -> float:
        """Current target sending rate, bytes/s."""
        return self._rate

    @property
    def signal(self) -> str:
        """Latest detector reading (NORMAL / OVERUSE / UNDERUSE)."""
        return self._signal

    @property
    def state(self) -> str:
        """Rate-controller state (INCREASE / DECREASE / HOLD)."""
        return self._state

    @property
    def gradient(self) -> Optional[float]:
        """Least-squares slope of the smoothed queueing-delay series."""
        return self._trendline()

    # -- controller interface ----------------------------------------------
    @property
    def cwnd(self) -> int:
        # Base the window on the *minimum* RTT: deriving it from the
        # smoothed RTT would let self-built queueing delay inflate the
        # window, which inflates the queue further — a feedback loop
        # the pacing-limited design exists to avoid.
        rtt = self._min_rtt or 0.1
        window = int(self.config.cwnd_gain * self._rate * rtt)
        return max(window, 2 * self.mss)

    def pacing_rate(self) -> Optional[float]:
        return self._rate

    def on_ack(self, event: AckEvent) -> None:
        if event.delivery_rate is not None and not event.is_app_limited:
            self._delivery_rate = event.delivery_rate
        if event.rtt_sample is None:
            return
        sample = event.rtt_sample
        if self._min_rtt is None or sample < self._min_rtt:
            self._min_rtt = sample
        self._srtt = (
            sample
            if self._srtt is None
            else 0.875 * self._srtt + 0.125 * sample
        )
        queue_delay = sample - self._min_rtt
        s = self.config.smoothing
        self._smoothed_delay = (
            queue_delay
            if self._smoothed_delay is None
            else s * self._smoothed_delay + (1 - s) * queue_delay
        )
        self._samples.append((event.now, self._smoothed_delay))
        self._detect(event.now)
        self._run_rate_controller(event.now)

    def on_congestion_event(self, now: float, bytes_in_flight: int) -> None:
        # GCC's loss-based controller: a mild multiplicative cut per
        # recovery period; the delay path handles sustained queues.
        self._rate = max(
            self._rate * self.config.loss_beta, self.config.min_rate
        )

    def on_rto(self, now: float) -> None:
        self._rate = max(self._rate * 0.5, self.config.min_rate)
        self._state = self.HOLD

    # -- internals -----------------------------------------------------
    def _trendline(self) -> Optional[float]:
        if len(self._samples) < 2:
            return None
        n = len(self._samples)
        mean_t = sum(t for t, _ in self._samples) / n
        mean_d = sum(d for _, d in self._samples) / n
        num = sum((t - mean_t) * (d - mean_d) for t, d in self._samples)
        den = sum((t - mean_t) ** 2 for t, _ in self._samples)
        if den <= 0.0:
            return None
        return num / den

    def _detect(self, now: float) -> None:
        slope = self._trendline()
        if slope is None:
            return
        # The gradient is already the draft's signal: seconds of
        # queueing-delay growth per second of observation.  Comparing
        # it directly (not projected over the sample span) keeps the
        # detector's sensitivity independent of the ACK rate.
        trend = slope
        threshold = self._threshold
        if trend > threshold:
            self._over_count += 1
            self._under_count = 0
            if self._over_count >= self.config.overuse_samples:
                self._signal = self.OVERUSE
        elif trend < -threshold:
            self._under_count += 1
            self._over_count = 0
            if self._under_count >= self.config.overuse_samples:
                self._signal = self.UNDERUSE
        else:
            self._over_count = 0
            self._under_count = 0
            self._signal = self.NORMAL
        # Adaptive gamma: track |trend| so a TCP competitor cannot park
        # the detector permanently in OVERUSE (draft section 5.4) — but
        # never adapt toward a far excursion, or a queue-filling
        # competitor would blind the detector entirely (the draft's
        # 15 ms adaptation guard, rescaled to the slope signal).
        if abs(trend) - threshold <= 0.05:
            gain = (
                self.config.k_up
                if abs(trend) > threshold
                else self.config.k_down
            )
            self._threshold += gain * (abs(trend) - threshold)
            self._threshold = min(max(self._threshold, 5e-3), 0.1)

    def _run_rate_controller(self, now: float) -> None:
        elapsed = now - self._last_update
        rtt = self._srtt or 0.1
        if self._signal == self.OVERUSE:
            self._state = self.DECREASE
        elif self._signal == self.UNDERUSE:
            # The queue is draining: hold until it is empty again.
            self._state = self.HOLD
        else:
            self._state = self.INCREASE

        if self._state == self.DECREASE:
            # Cut at most once per RTT so persistent overuse *ratchets*
            # the rate down (beta applied to the lower of the measured
            # delivery rate and the current target) instead of pinning
            # it at beta x link rate forever.
            if elapsed < rtt:
                return
            measured = min(self._delivery_rate or self._rate, self._rate)
            self._rate = max(
                self.config.beta * measured, self.config.min_rate
            )
            self._last_decrease_rate = measured
            self._last_update = now
            return
        if self._state != self.INCREASE or elapsed < rtt:
            return
        near_limit = (
            self._last_decrease_rate is not None
            and self._rate > 0.95 * self._last_decrease_rate
        )
        if near_limit:
            # Additive: one MSS per RTT, scaled by elapsed time.
            self._rate += self.mss * (elapsed / rtt)
        else:
            self._rate *= min(
                self.config.eta ** (elapsed / rtt), self.config.eta
            )
        self._rate = min(self._rate, self.config.max_rate)
        self._last_update = now

    def debug_state(self) -> dict:
        state = super().debug_state()
        state.update(
            rate=self._rate,
            signal=self._signal,
            controller_state=self._state,
            threshold=self._threshold,
            gradient=self._trendline(),
            min_rtt=self._min_rtt,
        )
        return state


__all__ = ["GccController", "GccConfig"]
