"""The congestion-controller interface.

A controller owns the congestion window (bytes) and optionally a pacing
rate (bytes/s).  The hosting sender translates transport events (ACKs,
loss detection, RTO, spurious-loss discovery) into the calls below and
enforces cwnd/pacing when transmitting.

Congestion events are de-duplicated by the sender: multiple losses within
one round trip produce a single :meth:`on_congestion_event`, matching both
kernel TCP fast-recovery semantics and QUIC recovery periods
(RFC 9002 §7.3.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AckEvent:
    """Everything a controller may want to know about an ACK."""

    #: Simulated time the ACK was processed at the sender.
    now: float
    #: Payload bytes newly acknowledged by this ACK.
    bytes_acked: int
    #: RTT sample from the largest newly acked packet, seconds (None when
    #: the ACK only covered retransmissions).
    rtt_sample: Optional[float]
    #: Delivery-rate sample, bytes per second (None until measurable).
    delivery_rate: Optional[float]
    #: True when the rate sample was taken while the flow was application
    #: limited (bulk flows here are rarely app-limited, but short pacing
    #: gaps can produce such samples).
    is_app_limited: bool
    #: Bytes still in flight *after* this ACK was applied.
    bytes_in_flight: int
    #: Round-trip counter maintained by the sender (increments when a full
    #: flight is acknowledged).
    round_count: int


class CongestionController(abc.ABC):
    """Abstract congestion controller hosted by a sender."""

    #: Human-readable algorithm name ("cubic", "bbr", "reno").
    name: str = "abstract"

    def __init__(self, mss: int):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss

    # -- state the sender enforces --------------------------------------
    @property
    @abc.abstractmethod
    def cwnd(self) -> int:
        """Congestion window in bytes."""

    def pacing_rate(self) -> Optional[float]:
        """Pacing rate in bytes/s, or None for window-limited sending.

        Kernel Reno/CUBIC do not pace (absent sch_fq); BBR always paces.
        """
        return None

    @property
    def in_slow_start(self) -> bool:
        return False

    # -- event hooks ------------------------------------------------------
    @abc.abstractmethod
    def on_ack(self, event: AckEvent) -> None:
        """Process an acknowledgment."""

    @abc.abstractmethod
    def on_congestion_event(self, now: float, bytes_in_flight: int) -> None:
        """One congestion notification per recovery period."""

    def on_recovery_exit(self, now: float) -> None:
        """All data outstanding at the congestion event has been handled.

        Kernel TCP calls this when loss recovery completes; Linux BBR uses
        it to restore the congestion window saved at recovery entry
        (``bbr_prior_cwnd``).  Window-based CCAs ignore it.
        """

    def on_spurious_congestion(self, now: float) -> None:
        """The last congestion event was found to be spurious.

        Default: ignore, like the Linux kernel for CUBIC (the paper notes
        RFC8312bis undo is *not* in the kernel).  quiche CUBIC overrides
        this to roll back the multiplicative decrease (§5, Fig. 15).
        """

    def on_rto(self, now: float) -> None:
        """Retransmission timeout: collapse to a minimal window."""

    def on_packet_sent(self, now: float, bytes_in_flight: int, size: int) -> None:
        """Observe a transmission (needed by BBR for app-limited marking)."""

    # -- diagnostics -------------------------------------------------------
    def debug_state(self) -> dict:
        """Free-form state snapshot used by tests and the CLI."""
        return {"name": self.name, "cwnd": self.cwnd}


#: Loss-recovery floor common to all controllers (RFC 5681 / RFC 9002).
MIN_CWND_PACKETS = 2


def min_cwnd(mss: int) -> int:
    """Loss-recovery cwnd floor in bytes for a given MSS."""
    return MIN_CWND_PACKETS * mss
