"""Circuit breakers: stop hammering a failing dependency, degrade instead.

A :class:`CircuitBreaker` counts consecutive failures of one protected
dependency (the results warehouse, the service journal).  At
``failure_threshold`` it *opens*: callers stop attempting the operation
and take their degradation path instead (the executor's store sink
spills to a JSONL sideline file, the scheduler keeps running campaigns
with journaling suspended).  After ``reset_after_s`` the breaker lets
one probe through (*half-open*); a success closes it, another failure
re-opens it.

Breakers register in a process-wide named registry so operational
surfaces can report degradation: the service ``/healthz`` returns
``status: degraded`` with the open breakers' causes while any breaker
is open.  Time comes from the injectable
:func:`repro.faults.retry.default_monotonic` seam, so tests drive the
open→half-open transition with a fake clock instead of sleeping.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.faults.retry import default_monotonic

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpen(RuntimeError):
    """The protected operation was skipped: the breaker is open."""

    def __init__(self, name: str, cause: Optional[str]):
        self.name = name
        self.cause = cause
        super().__init__(f"circuit breaker {name!r} is open ({cause})")


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = default_monotonic,
    ):
        self.name = name
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._cause: Optional[str] = None

    def allow(self) -> bool:
        """May the protected operation be attempted right now?

        Open breakers whose cool-down elapsed transition to half-open
        and admit the call as the probe.
        """
        with self._lock:
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_after_s:
                    self._state = HALF_OPEN
                    return True
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._cause = None

    def record_failure(self, exc: BaseException) -> None:
        with self._lock:
            self._failures += 1
            self._cause = f"{type(exc).__name__}: {exc}"
            if self._state == HALF_OPEN or self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()

    def call(self, fn: Callable):
        """Run ``fn`` through the breaker; raises :class:`BreakerOpen`."""
        if not self.allow():
            with self._lock:
                cause = self._cause
            raise BreakerOpen(self.name, cause)
        try:
            result = fn()
        except Exception as exc:
            self.record_failure(exc)
            raise
        self.record_success()
        return result

    def status(self) -> Dict[str, object]:
        """Snapshot for health endpoints and tests."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "cause": self._cause,
            }

    def is_open(self) -> bool:
        with self._lock:
            return self._state == OPEN


#: Process-wide registry feeding ``/healthz`` degradation reporting.
_REGISTRY: Dict[str, CircuitBreaker] = {}
_REGISTRY_LOCK = threading.Lock()


def get_breaker(name: str, **kwargs) -> CircuitBreaker:
    """Get-or-create the breaker called ``name`` (kwargs apply on create)."""
    with _REGISTRY_LOCK:
        breaker = _REGISTRY.get(name)
        if breaker is None:
            breaker = CircuitBreaker(name, **kwargs)
            _REGISTRY[name] = breaker
        return breaker


def degraded() -> Dict[str, str]:
    """Open breakers as ``{name: cause}`` — empty means fully healthy."""
    with _REGISTRY_LOCK:
        breakers = list(_REGISTRY.values())
    out: Dict[str, str] = {}
    for breaker in breakers:
        status = breaker.status()
        if status["state"] == OPEN:
            out[breaker.name] = str(status["cause"] or "unknown")
    return out


def reset_breakers() -> None:
    """Drop every registered breaker (test isolation)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()


__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BreakerOpen",
    "CircuitBreaker",
    "degraded",
    "get_breaker",
    "reset_breakers",
]
